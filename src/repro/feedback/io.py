"""Feedback serialization: CSV, JSON-lines, and the binary ledger.

Real deployments have feedback in flat files long before they have a
reputation service; these readers/writers make the library usable on
such data (and feed the ``repro-assess`` CLI).  Formats:

* **CSV** with header ``time,server,client,rating[,category][,authentic]``;
  ``rating`` accepts ``1/0``, ``positive/negative``, ``pos/neg``,
  ``good/bad``, ``+/-`` (case-insensitive).
* **JSONL**: one object per line with the same fields.
* **binary**: the append-only ledger file of
  :mod:`repro.feedback.binlog` (fixed-width records + id sidecars).

The single entry point is :func:`read`, which dispatches through a
format *registry* — by explicit name, by file extension, or by content
sniffing (``format="auto"``, the default)::

    result = read("events.csv")                      # extension
    result = read("dump.bin", format="binary")       # explicit
    result = read(path, errors="collect")            # lenient rows

The legacy per-format functions (``read_feedback_csv``,
``read_feedback_jsonl``) still work but are deprecated: each call
delegates to :func:`read` after emitting exactly one
:class:`DeprecationWarning`.

All readers validate eagerly and report the offending line number —
silent row-skipping turns data bugs into wrong trust decisions.  That
strictness is the default; production streams that must survive one bad
row opt into ``errors="collect"`` (bad rows returned as structured
:class:`RowError` objects on the result) or ``errors="skip"`` (bad rows
dropped with a summary warning).  In both lenient modes the good rows
still load, so a single malformed line no longer aborts the file.  For
the binary format a "bad row" is a damaged crash tail: strict raises,
the lenient modes trim it (``collect`` reports the trim as a
:class:`RowError`).
"""

from __future__ import annotations

import csv
import json
import logging
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..resilience import runtime as _res
from . import binlog
from .records import Feedback, Rating

# Module-level logger per library etiquette: never the root logger; the
# application (or repro.obs.configure_logging) decides about handlers.
_log = logging.getLogger(__name__)

__all__ = [
    "RowError",
    "ReadResult",
    "read",
    "register_reader",
    "available_formats",
    "detect_format",
    "read_feedback_csv",
    "write_feedback_csv",
    "read_feedback_jsonl",
    "write_feedback_jsonl",
    "write_feedback_binary",
    "parse_rating",
]

PathLike = Union[str, Path]

_POSITIVE_TOKENS = {"1", "positive", "pos", "good", "+", "true"}
_NEGATIVE_TOKENS = {"0", "negative", "neg", "bad", "-", "false"}
_REQUIRED_FIELDS = ("time", "server", "client", "rating")
_ERROR_MODES = ("strict", "collect", "skip")


@dataclass(frozen=True)
class RowError:
    """One unparseable row: where it was and why it failed."""

    line: int
    message: str
    raw: object = None


class ReadResult(List[Feedback]):
    """The parsed feedbacks, plus any collected row errors.

    A ``list`` subclass so every existing caller (and the strict mode)
    keeps working unchanged; lenient readers attach the rows they could
    not parse as :attr:`errors`.
    """

    def __init__(self, feedbacks: Iterable[Feedback] = (), errors: Optional[List[RowError]] = None):
        super().__init__(feedbacks)
        self.errors: List[RowError] = list(errors or ())
        #: the format the file was parsed as (set by :func:`read`)
        self.format: Optional[str] = None


class _RowSink:
    """Shared row-error handling for the two readers."""

    def __init__(self, mode: str, path: PathLike):
        if mode not in _ERROR_MODES:
            raise ValueError(
                f"errors must be one of {_ERROR_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.path = path
        self.errors: List[RowError] = []
        self.n_skipped = 0

    def bad_row(self, line: int, message: str, raw: object) -> None:
        if self.mode == "strict":
            raise ValueError(message)
        self.n_skipped += 1
        if self.mode == "collect":
            self.errors.append(RowError(line=line, message=message, raw=raw))
        _res.emit(
            "quarantined",
            quarantine="feedback.io",
            site="feedback.io.row",
            reason=message,
        )

    def finish(self, feedbacks: List[Feedback]) -> ReadResult:
        if self.n_skipped:
            _log.warning(
                "%s: skipped %d malformed row(s) (errors=%r)",
                self.path,
                self.n_skipped,
                self.mode,
            )
        return ReadResult(feedbacks, self.errors)


def parse_rating(token: object) -> Rating:
    """Parse the many spellings of a binary rating."""
    text = str(token).strip().lower()
    if text in _POSITIVE_TOKENS:
        return Rating.POSITIVE
    if text in _NEGATIVE_TOKENS:
        return Rating.NEGATIVE
    raise ValueError(
        f"unrecognized rating {token!r}; expected one of "
        f"{sorted(_POSITIVE_TOKENS | _NEGATIVE_TOKENS)}"
    )


def _row_to_feedback(row: dict, line: int) -> Feedback:
    missing = [f for f in _REQUIRED_FIELDS if row.get(f) in (None, "")]
    if missing:
        raise ValueError(f"line {line}: missing fields {missing}")
    try:
        time = float(row["time"])
    except (TypeError, ValueError):
        raise ValueError(f"line {line}: time {row['time']!r} is not a number") from None
    try:
        rating = parse_rating(row["rating"])
    except ValueError as exc:
        raise ValueError(f"line {line}: {exc}") from None
    category = row.get("category") or None
    authentic_raw = row.get("authentic")
    if authentic_raw in (None, ""):
        authentic = True
    else:
        authentic = str(authentic_raw).strip().lower() in ("1", "true", "yes")
    return Feedback(
        time=time,
        server=str(row["server"]),
        client=str(row["client"]),
        rating=rating,
        category=category,
        authentic=authentic,
    )


def _read_csv(path: PathLike, *, errors: str = "strict") -> ReadResult:
    sink = _RowSink(errors, path)
    feedbacks: List[Feedback] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file (no header)")
        missing = [f for f in _REQUIRED_FIELDS if f not in reader.fieldnames]
        if missing:
            raise ValueError(f"{path}: header missing columns {missing}")
        for line, row in enumerate(reader, start=2):
            if _res.armed:
                row = _res.inject("feedback.io.row", value=row)
            try:
                feedbacks.append(_row_to_feedback(row, line))
            except ValueError as exc:
                sink.bad_row(line, str(exc), row)
    _log.debug("read %d feedback records from %s (csv)", len(feedbacks), path)
    return sink.finish(feedbacks)


def write_feedback_csv(path: PathLike, feedbacks: Iterable[Feedback]) -> int:
    """Write feedback records as CSV; returns the number written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "server", "client", "rating", "category", "authentic"])
        for fb in feedbacks:
            writer.writerow(
                [
                    fb.time,
                    fb.server,
                    fb.client,
                    int(fb.rating),
                    fb.category or "",
                    str(fb.authentic).lower(),
                ]
            )
            count += 1
    _log.debug("wrote %d feedback records to %s (csv)", count, path)
    return count


def _read_jsonl(path: PathLike, *, errors: str = "strict") -> ReadResult:
    sink = _RowSink(errors, path)
    feedbacks: List[Feedback] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"line {line_number}: invalid JSON ({exc})"
                    ) from None
                if not isinstance(row, dict):
                    raise ValueError(f"line {line_number}: expected an object")
                if _res.armed:
                    row = _res.inject("feedback.io.row", value=row)
                feedbacks.append(_row_to_feedback(row, line_number))
            except ValueError as exc:
                sink.bad_row(line_number, str(exc), line)
    _log.debug("read %d feedback records from %s (jsonl)", len(feedbacks), path)
    return sink.finish(feedbacks)


def _read_binary(path: PathLike, *, errors: str = "strict") -> ReadResult:
    sink = _RowSink(errors, path)  # validates the errors mode
    data = binlog.load_binary_ledger(path, recover=(errors != "strict"))
    if data.damaged:
        sink.bad_row(
            int(data.records.size) + 1,
            f"damaged crash tail trimmed: {data.dropped_records} record(s), "
            f"{data.dropped_bytes} byte(s)",
            None,
        )
    records = data.records
    feedbacks = [
        Feedback(
            time=float(records["time"][i]),
            server=data.servers[int(records["server"][i])],
            client=data.clients[int(records["client"][i])],
            rating=Rating.POSITIVE if records["rating"][i] else Rating.NEGATIVE,
            category=(
                None
                if records["category"][i] == binlog.CATEGORY_NONE
                else data.categories[int(records["category"][i])]
            ),
            authentic=bool(records["authentic"][i]),
        )
        for i in range(records.size)
    ]
    _log.debug("read %d feedback records from %s (binary)", len(feedbacks), path)
    return sink.finish(feedbacks)


# --------------------------------------------------------------------- #
# the unified reader: format registry + dispatch

#: format name -> reader(path, *, errors) -> ReadResult
_READERS: Dict[str, Callable[..., ReadResult]] = {}

#: lowercased file extension -> format name
_EXTENSIONS: Dict[str, str] = {}


def register_reader(
    name: str,
    reader: Callable[..., ReadResult],
    *,
    extensions: Iterable[str] = (),
) -> None:
    """Register a feedback file format with :func:`read`.

    ``reader(path, *, errors)`` must return a :class:`ReadResult`;
    ``extensions`` (e.g. ``(".csv",)``) map file suffixes to the format
    during ``format="auto"`` detection.  Re-registering a name replaces
    the old reader.
    """
    _READERS[name] = reader
    for ext in extensions:
        _EXTENSIONS[ext.lower()] = name


register_reader("csv", _read_csv, extensions=(".csv",))
register_reader("jsonl", _read_jsonl, extensions=(".jsonl", ".ndjson", ".json"))
register_reader("binary", _read_binary, extensions=(".ledger", ".bin"))


def available_formats() -> List[str]:
    """Names of every registered feedback file format, sorted."""
    return sorted(_READERS)


def detect_format(path: PathLike) -> str:
    """Resolve the format of ``path``: by extension, then by content.

    A registered extension wins; otherwise the first bytes decide —
    the binary ledger magic, a ``{`` (JSONL), anything else is CSV.
    """
    by_ext = _EXTENSIONS.get(Path(path).suffix.lower())
    if by_ext is not None:
        return by_ext
    with open(path, "rb") as handle:
        head = handle.read(len(binlog.MAGIC))
    if head == binlog.MAGIC:
        return "binary"
    if head.lstrip()[:1] == b"{":
        return "jsonl"
    return "csv"


def read(
    path: PathLike, *, format: str = "auto", errors: str = "strict"
) -> ReadResult:
    """Load feedback records from ``path`` — the one reader entry point.

    ``format`` names a registered format (:func:`available_formats`) or
    ``"auto"`` (default) to resolve via :func:`detect_format`.
    ``errors`` selects what a malformed *row* does: ``"strict"``
    (default) raises with the offending line number, ``"collect"``
    loads every good row and returns the bad ones on the result's
    ``.errors``, ``"skip"`` drops bad rows with one summary warning.
    File-level problems (wrong header, bad magic) always raise — a
    wrong header means a wrong file, not a bad row.  The result's
    ``.format`` records which reader actually parsed the file.
    """
    resolved = detect_format(path) if format == "auto" else format
    reader = _READERS.get(resolved)
    if reader is None:
        known = ", ".join(available_formats())
        raise ValueError(f"unknown feedback format {resolved!r}; registered: {known}")
    result = reader(path, errors=errors)
    result.format = resolved
    return result


# --------------------------------------------------------------------- #
# deprecated per-format entry points (delegate to read())

def read_feedback_csv(path: PathLike, *, errors: str = "strict") -> ReadResult:
    """Deprecated: use ``read(path, format="csv", errors=...)``."""
    warnings.warn(
        'read_feedback_csv() is deprecated; use read(path, format="csv")',
        DeprecationWarning,
        stacklevel=2,
    )
    return read(path, format="csv", errors=errors)


def read_feedback_jsonl(path: PathLike, *, errors: str = "strict") -> ReadResult:
    """Deprecated: use ``read(path, format="jsonl", errors=...)``."""
    warnings.warn(
        'read_feedback_jsonl() is deprecated; use read(path, format="jsonl")',
        DeprecationWarning,
        stacklevel=2,
    )
    return read(path, format="jsonl", errors=errors)


def write_feedback_binary(path: PathLike, feedbacks: Iterable[Feedback]) -> int:
    """Write feedback records as a fresh binary ledger; returns the count."""
    count = binlog.write_binary_ledger(path, feedbacks)
    _log.debug("wrote %d feedback records to %s (binary)", count, path)
    return count


def write_feedback_jsonl(path: PathLike, feedbacks: Iterable[Feedback]) -> int:
    """Write feedback records as JSON-lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for fb in feedbacks:
            handle.write(
                json.dumps(
                    {
                        "time": fb.time,
                        "server": fb.server,
                        "client": fb.client,
                        "rating": int(fb.rating),
                        "category": fb.category,
                        "authentic": fb.authentic,
                    }
                )
                + "\n"
            )
            count += 1
    _log.debug("wrote %d feedback records to %s (jsonl)", count, path)
    return count
