"""The append-only binary ledger file format.

CSV/JSONL replay tops out far below the ingest the ROADMAP's serving
scenario needs, so the persistent ledger speaks a fixed-width binary
format that loads straight into the columnar store's arrays through
:func:`numpy.memmap` — no per-row Python objects on the read path.

Layout (little-endian throughout)::

    offset 0   magic      8 bytes  b"REPRLDG1"
    offset 8   version    u32      currently 1
    offset 12  record sz  u32      currently 24
    offset 16  reserved   16 bytes zeros
    offset 32  records    n x 24 bytes, RECORD_DTYPE

Each record references interned entity ids by index into three *sidecar*
tables stored next to the main file (``<path>.servers``,
``<path>.clients``, ``<path>.categories``): append-only UTF-8 files with
one JSON-encoded string per line, so arbitrary ids (including embedded
newlines) round-trip.  ``category`` index ``0xFFFF`` means "no
category".

Crash safety is by append ordering, not checksums: a writer always
flushes new sidecar ids *before* the records referencing them, so after
a crash the damage is confined to the file tails.  Recovery drops

* a partial trailing sidecar line (no terminating newline),
* a partial trailing record (``body_size % record_size`` bytes), and
* every record from the first one referencing an id beyond the
  recovered tables (anything after it belongs to the crashed append).

Everything before that point is intact and loads normally.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "RECORD_DTYPE",
    "CATEGORY_NONE",
    "BinaryLedgerData",
    "BinaryLedgerWriter",
    "load_binary_ledger",
    "pack_feedbacks",
    "pack_records",
    "unpack_feedbacks",
    "write_binary_ledger",
]

PathLike = Union[str, "os.PathLike[str]"]

MAGIC = b"REPRLDG1"
VERSION = 1
HEADER_SIZE = 32

#: One feedback event, fixed width so the record region memory-maps as a
#: numpy structured array.  ``reserved`` pads to 24 bytes and is written
#: as zeros.
RECORD_DTYPE = np.dtype(
    [
        ("time", "<f8"),
        ("server", "<u4"),
        ("client", "<u4"),
        ("rating", "u1"),
        ("authentic", "u1"),
        ("category", "<u2"),
        ("reserved", "<u4"),
    ]
)

#: ``category`` sentinel for feedback without a category.
CATEGORY_NONE = 0xFFFF

_SIDECARS = ("servers", "clients", "categories")


def _header_bytes() -> bytes:
    header = bytearray(HEADER_SIZE)
    header[0:8] = MAGIC
    header[8:12] = int(VERSION).to_bytes(4, "little")
    header[12:16] = int(RECORD_DTYPE.itemsize).to_bytes(4, "little")
    return bytes(header)


def _sidecar_path(path: PathLike, kind: str) -> str:
    return f"{os.fspath(path)}.{kind}"


def _load_sidecar(path: str) -> List[str]:
    """Read one id table; a partial trailing line is dropped (crash tail)."""
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        raw = handle.read()
    if not raw:
        return []
    complete = raw if raw.endswith(b"\n") else raw[: raw.rfind(b"\n") + 1]
    return [json.loads(line) for line in complete.decode("utf-8").splitlines()]


@dataclass
class BinaryLedgerData:
    """A loaded binary ledger: the record columns plus the id tables.

    ``records`` is a structured :data:`RECORD_DTYPE` array (a fresh
    in-memory copy of the memory-mapped region, so the file handle is
    not held open); ``dropped_bytes`` / ``dropped_records`` describe the
    crash tail recovery trimmed away, if any.
    """

    records: np.ndarray
    servers: List[str] = field(default_factory=list)
    clients: List[str] = field(default_factory=list)
    categories: List[str] = field(default_factory=list)
    dropped_bytes: int = 0
    dropped_records: int = 0

    @property
    def damaged(self) -> bool:
        """True when recovery had to trim a crash tail."""
        return bool(self.dropped_bytes or self.dropped_records)


def load_binary_ledger(path: PathLike, *, recover: bool = True) -> BinaryLedgerData:
    """Load a binary ledger file, applying truncated-tail recovery.

    With ``recover=True`` (default) a crash tail — trailing partial
    record, partial sidecar line, or records referencing unrecovered
    ids — is trimmed and reported on the result; with ``recover=False``
    any such damage raises :class:`ValueError` instead.  A bad header
    (wrong magic, version, or record size) always raises: that is a
    wrong *file*, not a crash tail.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size < HEADER_SIZE:
        raise ValueError(f"{path}: too small to be a binary ledger ({size} bytes)")
    with open(path, "rb") as handle:
        header = handle.read(HEADER_SIZE)
    if header[0:8] != MAGIC:
        raise ValueError(f"{path}: bad magic {header[0:8]!r}; not a binary ledger")
    version = int.from_bytes(header[8:12], "little")
    if version != VERSION:
        raise ValueError(f"{path}: unsupported ledger version {version}")
    record_size = int.from_bytes(header[12:16], "little")
    if record_size != RECORD_DTYPE.itemsize:
        raise ValueError(
            f"{path}: record size {record_size} != {RECORD_DTYPE.itemsize}"
        )

    body = size - HEADER_SIZE
    n_records = body // record_size
    dropped_bytes = body % record_size

    tables = {kind: _load_sidecar(_sidecar_path(path, kind)) for kind in _SIDECARS}

    if n_records:
        mapped = np.memmap(
            path, dtype=RECORD_DTYPE, mode="r", offset=HEADER_SIZE, shape=(n_records,)
        )
        records = np.array(mapped)  # detach from the mapping
        del mapped
    else:
        records = np.empty(0, dtype=RECORD_DTYPE)

    valid = (
        (records["server"] < len(tables["servers"]))
        & (records["client"] < len(tables["clients"]))
        & (
            (records["category"] == CATEGORY_NONE)
            | (records["category"] < len(tables["categories"]))
        )
        & (records["rating"] <= 1)
    )
    dropped_records = 0
    if records.size and not valid.all():
        first_bad = int(np.argmax(~valid))
        dropped_records = int(records.size - first_bad)
        records = records[:first_bad].copy()

    data = BinaryLedgerData(
        records=records,
        servers=tables["servers"],
        clients=tables["clients"],
        categories=tables["categories"],
        dropped_bytes=dropped_bytes,
        dropped_records=dropped_records,
    )
    if data.damaged and not recover:
        raise ValueError(
            f"{path}: damaged tail ({data.dropped_records} record(s), "
            f"{data.dropped_bytes} byte(s)); reopen with recovery enabled "
            "to trim it"
        )
    return data


class BinaryLedgerWriter:
    """Append-only writer for one binary ledger file.

    Opening a fresh path writes the header; opening an existing file
    positions at its end (the caller is expected to have loaded it via
    :func:`load_binary_ledger` first — after a crash, pass
    ``truncate_to`` with the recovered record count so the damaged tail
    is physically removed before new appends land on top of it).

    The append protocol is: :meth:`append_ids` (flushed) **before**
    :meth:`append_records` referencing the new indices — the invariant
    the recovery procedure relies on.
    """

    def __init__(self, path: PathLike, *, truncate_to: Optional[int] = None):
        self._path = os.fspath(path)
        fresh = (
            not os.path.exists(self._path) or os.path.getsize(self._path) == 0
        )
        if fresh:
            with open(self._path, "wb") as handle:
                handle.write(_header_bytes())
        elif truncate_to is not None:
            keep = HEADER_SIZE + truncate_to * RECORD_DTYPE.itemsize
            if os.path.getsize(self._path) > keep:
                with open(self._path, "r+b") as handle:
                    handle.truncate(keep)
        self._records: IO[bytes] = open(self._path, "ab")
        self._sidecars: Dict[str, IO[bytes]] = {
            kind: open(_sidecar_path(self._path, kind), "ab") for kind in _SIDECARS
        }

    @property
    def path(self) -> str:
        """The main ledger file path."""
        return self._path

    def append_ids(self, kind: str, ids: Sequence[str]) -> None:
        """Append newly interned ids to the ``kind`` sidecar and flush."""
        if kind not in _SIDECARS:
            raise ValueError(f"kind must be one of {_SIDECARS}, got {kind!r}")
        if not ids:
            return
        handle = self._sidecars[kind]
        handle.write(
            "".join(json.dumps(value) + "\n" for value in ids).encode("utf-8")
        )
        handle.flush()

    def append_records(self, records: np.ndarray) -> None:
        """Append a :data:`RECORD_DTYPE` array to the record region and flush."""
        if records.dtype != RECORD_DTYPE:
            raise ValueError(
                f"records must have dtype {RECORD_DTYPE}, got {records.dtype}"
            )
        if records.size == 0:
            return
        self._records.write(records.tobytes())
        self._records.flush()

    def flush(self) -> None:
        """Flush every underlying file handle."""
        self._records.flush()
        for handle in self._sidecars.values():
            handle.flush()

    def close(self) -> None:
        """Flush and close every underlying file handle (idempotent)."""
        if self._records.closed:
            return
        self._records.close()
        for handle in self._sidecars.values():
            handle.close()

    def __enter__(self) -> "BinaryLedgerWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def pack_records(
    times: np.ndarray,
    server_codes: np.ndarray,
    client_codes: np.ndarray,
    ratings: np.ndarray,
    authentic: Optional[np.ndarray] = None,
    category_codes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Assemble column arrays into a :data:`RECORD_DTYPE` record block."""
    n = len(times)
    records = np.zeros(n, dtype=RECORD_DTYPE)
    records["time"] = times
    records["server"] = server_codes
    records["client"] = client_codes
    records["rating"] = ratings
    records["authentic"] = (
        np.ones(n, dtype=np.uint8) if authentic is None else authentic
    )
    records["category"] = (
        np.full(n, CATEGORY_NONE, dtype=np.uint16)
        if category_codes is None
        else category_codes
    )
    return records


def pack_feedbacks(feedbacks) -> Dict[str, object]:
    """Pack feedback objects into an in-memory snapshot payload.

    The wire-format counterpart of :func:`write_binary_ledger`: the same
    :data:`RECORD_DTYPE` record block and first-appearance-order id
    tables, but assembled as a plain dict (record bytes + sidecar lists)
    instead of files — the shape ledger-snapshot shipment sends over an
    RPC when a cluster node joins or recovers.  Round-trips through
    :func:`unpack_feedbacks`.
    """
    from .records import Rating  # local import: records.py is dependency-free

    feedbacks = list(feedbacks)
    tables: Dict[str, Dict[str, int]] = {kind: {} for kind in _SIDECARS}

    def intern(kind: str, value: str) -> int:
        table = tables[kind]
        code = table.get(value)
        if code is None:
            code = len(table)
            table[value] = code
        return code

    n = len(feedbacks)
    times = np.empty(n, dtype=np.float64)
    servers = np.empty(n, dtype=np.uint32)
    clients = np.empty(n, dtype=np.uint32)
    ratings = np.empty(n, dtype=np.uint8)
    authentic = np.empty(n, dtype=np.uint8)
    categories = np.full(n, CATEGORY_NONE, dtype=np.uint16)
    for i, fb in enumerate(feedbacks):
        times[i] = fb.time
        servers[i] = intern("servers", fb.server)
        clients[i] = intern("clients", fb.client)
        ratings[i] = 1 if fb.rating is Rating.POSITIVE else 0
        authentic[i] = 1 if fb.authentic else 0
        if fb.category is not None:
            categories[i] = intern("categories", fb.category)
    records = pack_records(times, servers, clients, ratings, authentic, categories)
    return {
        "format": "binlog",
        "version": VERSION,
        "n": n,
        "records": records.tobytes(),
        "servers": list(tables["servers"]),
        "clients": list(tables["clients"]),
        "categories": list(tables["categories"]),
    }


def unpack_feedbacks(payload: Dict[str, object]) -> List["Feedback"]:
    """Rebuild the feedback objects of a :func:`pack_feedbacks` payload."""
    from .records import Feedback, Rating

    if payload.get("format") != "binlog":
        raise ValueError(f"not a binlog payload: format={payload.get('format')!r}")
    if payload.get("version") != VERSION:
        raise ValueError(f"unsupported snapshot version {payload.get('version')!r}")
    records = np.frombuffer(payload["records"], dtype=RECORD_DTYPE)
    if records.size != payload["n"]:
        raise ValueError(
            f"snapshot record count mismatch: header says {payload['n']}, "
            f"block holds {records.size}"
        )
    servers = list(payload["servers"])
    clients = list(payload["clients"])
    categories = list(payload["categories"])
    feedbacks: List[Feedback] = []
    for rec in records:
        category_code = int(rec["category"])
        feedbacks.append(
            Feedback(
                time=float(rec["time"]),
                server=servers[int(rec["server"])],
                client=clients[int(rec["client"])],
                rating=Rating.POSITIVE if int(rec["rating"]) else Rating.NEGATIVE,
                category=(
                    None
                    if category_code == CATEGORY_NONE
                    else categories[category_code]
                ),
                authentic=bool(int(rec["authentic"])),
            )
        )
    return feedbacks


def write_binary_ledger(path: PathLike, feedbacks) -> int:
    """Write feedback records as a fresh binary ledger; returns the count.

    The bulk-export counterpart of the CSV/JSONL writers: ids are
    interned in first-appearance order and the whole record block is
    written in one append.
    """
    from .records import Rating  # local import: records.py is dependency-free

    path = os.fspath(path)
    if os.path.exists(path):
        os.remove(path)
    for kind in _SIDECARS:
        sidecar = _sidecar_path(path, kind)
        if os.path.exists(sidecar):
            os.remove(sidecar)

    feedbacks = list(feedbacks)
    tables: Dict[str, Dict[str, int]] = {kind: {} for kind in _SIDECARS}

    def intern(kind: str, value: str) -> int:
        table = tables[kind]
        code = table.get(value)
        if code is None:
            code = len(table)
            table[value] = code
        return code

    n = len(feedbacks)
    times = np.empty(n, dtype=np.float64)
    servers = np.empty(n, dtype=np.uint32)
    clients = np.empty(n, dtype=np.uint32)
    ratings = np.empty(n, dtype=np.uint8)
    authentic = np.empty(n, dtype=np.uint8)
    categories = np.full(n, CATEGORY_NONE, dtype=np.uint16)
    for i, fb in enumerate(feedbacks):
        times[i] = fb.time
        servers[i] = intern("servers", fb.server)
        clients[i] = intern("clients", fb.client)
        ratings[i] = 1 if fb.rating is Rating.POSITIVE else 0
        authentic[i] = 1 if fb.authentic else 0
        if fb.category is not None:
            categories[i] = intern("categories", fb.category)

    with BinaryLedgerWriter(path) as writer:
        for kind in _SIDECARS:
            writer.append_ids(kind, list(tables[kind]))
        writer.append_records(
            pack_records(times, servers, clients, ratings, authentic, categories)
        )
    return n
