"""The ``BENCH_*.json`` machine-readable benchmark artifact format.

Every performance claim in this repository should leave behind a
schema-stable artifact a later PR (or CI) can diff against.  The shape:

.. code-block:: json

    {
      "bench": "fig9",
      "schema_version": 1,
      "meta": {"seed": 2008, "git_rev": "abc1234", "config_hash": "..."},
      "results": [
        {"name": "multi_optimized",
         "params": {"history_size": 100000},
         "stats": {"mean_s": 0.41, "min_s": 0.39, "repeats": 3}}
      ]
    }

``name`` is the measured scheme/variant, ``params`` the sweep point, and
``stats`` at least ``mean_s``/``min_s``/``repeats``.  The validator is
deliberately strict about this core so trajectory tooling can rely on
it, and silent about extra keys so future benches can extend it.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_payload",
    "validate_bench_payload",
    "write_bench_json",
    "read_bench_json",
    "compare_bench_payloads",
    "render_bench_diff",
    "load_bench_history",
    "bench_trend",
    "render_bench_trend",
]

BENCH_SCHEMA_VERSION = 1

PathLike = Union[str, Path]
_REQUIRED_STATS = ("mean_s", "min_s", "repeats")


def bench_payload(
    bench: str,
    results: List[Dict[str, object]],
    *,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble (and validate) a benchmark artifact payload."""
    payload: Dict[str, object] = {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "results": list(results),
    }
    validate_bench_payload(payload)
    return payload


def validate_bench_payload(payload: object) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid bench artifact."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    for key in ("bench", "schema_version", "meta", "results"):
        if key not in payload:
            raise ValueError(f"bench payload missing key {key!r}")
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        raise ValueError("'bench' must be a non-empty string")
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {payload['schema_version']!r}; "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(payload["meta"], dict):
        raise ValueError("'meta' must be an object")
    results = payload["results"]
    if not isinstance(results, list) or not results:
        raise ValueError("'results' must be a non-empty list")
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            raise ValueError(f"results[{i}] must be an object")
        if not isinstance(row.get("name"), str) or not row["name"]:
            raise ValueError(f"results[{i}].name must be a non-empty string")
        if not isinstance(row.get("params"), dict):
            raise ValueError(f"results[{i}].params must be an object")
        stats = row.get("stats")
        if not isinstance(stats, dict):
            raise ValueError(f"results[{i}].stats must be an object")
        for stat in _REQUIRED_STATS:
            value = stats.get(stat)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"results[{i}].stats.{stat} must be a number, got {value!r}"
                )


def write_bench_json(
    path: PathLike,
    bench: str,
    results: List[Dict[str, object]],
    *,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Validate and write a ``BENCH_<name>.json``; returns the payload."""
    payload = bench_payload(bench, results, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")
    return payload


def read_bench_json(path: PathLike) -> Dict[str, object]:
    """Load and validate a benchmark artifact."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench_payload(payload)
    return payload


# ---------------------------------------------------------------------- #
# regression gating: diff two artifacts of the same bench

#: Which stat the regression gate compares, in preference order — tail
#: latency when the artifact carries it, mean otherwise.
_GATE_STATS = ("p95_s", "mean_s")


def _row_key(row: Dict[str, object]) -> str:
    return json.dumps(
        {"name": row["name"], "params": row["params"]}, sort_keys=True, default=repr
    )


def compare_bench_payloads(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    *,
    max_regression: float = 0.20,
) -> Dict[str, object]:
    """Diff two bench artifacts; flag rows regressing past the gate.

    Rows are matched on ``(name, params)``; the compared stat is the
    first of ``p95_s`` / ``mean_s`` present in *both* rows.  A row
    *regresses* when ``candidate > baseline * (1 + max_regression)``.
    Rows present on only one side are listed but never gate.
    """
    if max_regression < 0:
        raise ValueError(f"max_regression must be non-negative, got {max_regression}")
    validate_bench_payload(baseline)
    validate_bench_payload(candidate)
    if baseline["bench"] != candidate["bench"]:
        raise ValueError(
            f"cannot diff different benches: "
            f"{baseline['bench']!r} vs {candidate['bench']!r}"
        )
    base_rows = {_row_key(row): row for row in baseline["results"]}  # type: ignore[index]
    cand_rows = {_row_key(row): row for row in candidate["results"]}  # type: ignore[index]
    rows: List[Dict[str, object]] = []
    regressions: List[Dict[str, object]] = []
    for key in base_rows:
        if key not in cand_rows:
            continue
        base_stats: Dict[str, object] = base_rows[key]["stats"]  # type: ignore[index]
        cand_stats: Dict[str, object] = cand_rows[key]["stats"]  # type: ignore[index]
        stat = next(
            (s for s in _GATE_STATS if s in base_stats and s in cand_stats), None
        )
        if stat is None:
            continue
        base_value = float(base_stats[stat])  # type: ignore[arg-type]
        cand_value = float(cand_stats[stat])  # type: ignore[arg-type]
        ratio = cand_value / base_value if base_value > 0 else float("inf")
        entry = {
            "name": base_rows[key]["name"],
            "params": base_rows[key]["params"],
            "stat": stat,
            "baseline": base_value,
            "candidate": cand_value,
            "ratio": ratio,
            "regressed": ratio > 1.0 + max_regression,
        }
        rows.append(entry)
        if entry["regressed"]:
            regressions.append(entry)
    return {
        "bench": baseline["bench"],
        "max_regression": max_regression,
        "rows": rows,
        "regressions": regressions,
        "only_in_baseline": [
            json.loads(k) for k in sorted(base_rows) if k not in cand_rows
        ],
        "only_in_candidate": [
            json.loads(k) for k in sorted(cand_rows) if k not in base_rows
        ],
        "ok": not regressions,
    }


def render_bench_diff(diff: Dict[str, object]) -> str:
    """A :func:`compare_bench_payloads` result as an aligned text table."""
    rows: List[Dict[str, object]] = diff["rows"]  # type: ignore[assignment]
    header = ["name", "params", "stat", "baseline", "candidate", "ratio", ""]
    table = [header]
    for row in rows:
        params: Dict[str, object] = row["params"]  # type: ignore[assignment]
        table.append(
            [
                str(row["name"]),
                ",".join(f"{k}={v}" for k, v in sorted(params.items())) or "-",
                str(row["stat"]),
                f"{float(row['baseline']):.6g}",  # type: ignore[arg-type]
                f"{float(row['candidate']):.6g}",  # type: ignore[arg-type]
                f"{float(row['ratio']):.3f}x",  # type: ignore[arg-type]
                "REGRESSED" if row["regressed"] else "ok",
            ]
        )
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    threshold_pct = float(diff["max_regression"]) * 100  # type: ignore[arg-type]
    lines = [
        f"bench diff: {diff['bench']}  "
        f"(gate: >{threshold_pct:.0f}% regression fails)"
    ]
    for j, line in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    for side in ("only_in_baseline", "only_in_candidate"):
        extra: List[str] = diff.get(side) or []  # type: ignore[assignment]
        if extra:
            lines.append(f"{side.replace('_', ' ')}: {len(extra)} row(s) unmatched")
    regressions: List[Dict[str, object]] = diff["regressions"]  # type: ignore[assignment]
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} row(s) regressed past "
            f"{threshold_pct:.0f}%"
        )
    else:
        lines.append("OK: no regressions past the gate")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# multi-run trend tracking: a directory of BENCH_*.json as time series


def load_bench_history(
    directory: PathLike, *, bench: Optional[str] = None
) -> List[Dict[str, object]]:
    """Every valid ``BENCH_*.json`` under ``directory``, oldest first.

    Artifacts are ordered by their ``meta.timestamp`` (file mtime when a
    payload carries none), so a directory accumulated across runs reads
    as a trajectory.  Files that fail schema validation are skipped —
    the trend report states how many — and ``bench=`` keeps only one
    bench's artifacts.  Each payload gains a ``_source`` key naming its
    file (stripped nowhere: trend output wants it).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"not a directory: {directory}")
    entries: List[Tuple[float, str, Dict[str, object]]] = []
    skipped = 0
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = read_bench_json(path)
        except (OSError, ValueError, json.JSONDecodeError):
            skipped += 1
            continue
        if bench is not None and payload["bench"] != bench:
            continue
        meta = payload.get("meta") or {}
        timestamp = meta.get("timestamp") if isinstance(meta, dict) else None
        if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
            timestamp = path.stat().st_mtime
        payload["_source"] = path.name
        entries.append((float(timestamp), path.name, payload))
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    payloads = [payload for _, _, payload in entries]
    if payloads:
        payloads[0].setdefault("_skipped", skipped)
    return payloads


def bench_trend(
    payloads: List[Dict[str, object]], *, max_regression: float = 0.20
) -> Dict[str, object]:
    """Per-(name, params) time series over a bench history, with flags.

    Each series tracks the gate stat (``p95_s`` preferred, ``mean_s``
    otherwise) across the payloads in order.  The latest point is
    compared against the *median* of all earlier points — robust to one
    noisy historical run — and flagged when it exceeds the median by
    more than ``max_regression``.

    Tolerant by design: schemas evolve, so older artifacts missing
    newly-added metric families (or carrying malformed rows) must stay
    comparable rather than abort the whole report.  Invalid payloads and
    unusable rows are skipped and *counted* (``invalid_payloads``,
    ``malformed_rows``); a series absent from the newest valid run is
    flagged **stale** (``stale=True`` with ``missing_runs``) and excluded
    from regression gating — its "latest" point is old data, and gating
    old data against older data mis-fires both ways.
    """
    if max_regression < 0:
        raise ValueError(f"max_regression must be non-negative, got {max_regression}")
    series: Dict[str, Dict[str, object]] = {}
    invalid_payloads = 0
    malformed_rows = 0
    run_index = -1
    for payload in payloads:
        try:
            validate_bench_payload(payload)
        except ValueError:
            invalid_payloads += 1
            continue
        run_index += 1
        meta = payload.get("meta") or {}
        for row in payload["results"]:  # type: ignore[union-attr]
            stats = row.get("stats") if isinstance(row, dict) else None
            if not isinstance(stats, dict):
                malformed_rows += 1
                continue
            stat = next((s for s in _GATE_STATS if s in stats), None)
            if stat is None:
                continue
            try:
                value = float(stats[stat])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                malformed_rows += 1
                continue
            key = json.dumps(
                {"bench": payload["bench"], "name": row["name"], "params": row["params"]},
                sort_keys=True,
                default=repr,
            )
            entry = series.setdefault(
                key,
                {
                    "bench": payload["bench"],
                    "name": row["name"],
                    "params": row["params"],
                    "stat": stat,
                    "points": [],
                },
            )
            entry["stat"] = stat  # the latest payload's stat labels the series
            entry["points"].append(  # type: ignore[union-attr]
                {
                    "value": value,
                    "stat": stat,
                    "timestamp": meta.get("timestamp"),
                    "git_rev": meta.get("git_rev"),
                    "source": payload.get("_source"),
                    "run_index": run_index,
                }
            )
    n_valid_runs = run_index + 1
    rows: List[Dict[str, object]] = []
    regressions: List[Dict[str, object]] = []
    stale_series: List[Dict[str, object]] = []
    for key in sorted(series):
        entry = series[key]
        points: List[Dict[str, object]] = entry["points"]  # type: ignore[assignment]
        values = [p["value"] for p in points]
        latest = values[-1]
        earlier = values[:-1]
        last_seen = int(points[-1]["run_index"])  # type: ignore[arg-type]
        entry["stale"] = last_seen < n_valid_runs - 1
        entry["missing_runs"] = n_valid_runs - 1 - last_seen
        if earlier:
            baseline = float(statistics.median(earlier))
            ratio = latest / baseline if baseline > 0 else float("inf")
            entry["baseline_median"] = baseline
            entry["ratio"] = ratio
            # a stale series has no point in the newest run — nothing
            # current to gate; it is surfaced, not failed
            entry["regressed"] = not entry["stale"] and ratio > 1.0 + max_regression
        else:
            entry["baseline_median"] = None
            entry["ratio"] = None
            entry["regressed"] = False
        entry["latest"] = latest
        rows.append(entry)
        if entry["regressed"]:
            regressions.append(entry)
        if entry["stale"]:
            stale_series.append(entry)
    return {
        "max_regression": max_regression,
        "runs": len(payloads),
        "skipped": int(payloads[0].get("_skipped", 0)) if payloads else 0,
        "invalid_payloads": invalid_payloads,
        "malformed_rows": malformed_rows,
        "series": rows,
        "regressions": regressions,
        "stale": stale_series,
        "ok": not regressions,
    }


_SPARK_LEVELS = " .:-=+*#%@"


def _sparkline(values: List[float]) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_LEVELS[1] * len(values)
    span = hi - lo
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[max(1, int(round((v - lo) / span * top)))] for v in values
    )


def render_bench_trend(trend: Dict[str, object]) -> str:
    """A :func:`bench_trend` result as an aligned text report."""
    series: List[Dict[str, object]] = trend["series"]  # type: ignore[assignment]
    threshold_pct = float(trend["max_regression"]) * 100  # type: ignore[arg-type]
    lines = [
        f"bench trend: {trend['runs']} run(s)  "
        f"(gate: latest >{threshold_pct:.0f}% above median of history fails)"
    ]
    if trend.get("skipped"):
        lines.append(f"warning: {trend['skipped']} invalid artifact(s) skipped")
    if trend.get("invalid_payloads"):
        lines.append(
            f"warning: {trend['invalid_payloads']} payload(s) failed validation "
            "and were excluded"
        )
    if trend.get("malformed_rows"):
        lines.append(
            f"warning: {trend['malformed_rows']} malformed row(s) skipped"
        )
    if not series:
        lines.append("(no series found)")
        return "\n".join(lines)
    header = ["series", "stat", "n", "trend", "median", "latest", "ratio", ""]
    table = [header]
    for entry in series:
        params: Dict[str, object] = entry["params"]  # type: ignore[assignment]
        param_text = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        name = f"{entry['bench']}/{entry['name']}"
        if param_text:
            name += "{" + param_text + "}"
        points: List[Dict[str, object]] = entry["points"]  # type: ignore[assignment]
        values = [float(p["value"]) for p in points]
        median = entry["baseline_median"]
        ratio = entry["ratio"]
        table.append(
            [
                name,
                str(entry["stat"]),
                str(len(values)),
                _sparkline(values),
                f"{float(median):.6g}" if median is not None else "-",
                f"{values[-1]:.6g}",
                f"{float(ratio):.3f}x" if ratio is not None else "-",
                "REGRESSED"
                if entry["regressed"]
                else (
                    f"STALE(-{entry.get('missing_runs', 0)})"
                    if entry.get("stale")
                    else "ok"
                ),
            ]
        )
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    for j, line in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)).rstrip()
        )
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    stale: List[Dict[str, object]] = trend.get("stale") or []  # type: ignore[assignment]
    if stale:
        lines.append(
            f"note: {len(stale)} series missing from the latest run(s) "
            "(flagged STALE, not gated)"
        )
    regressions: List[Dict[str, object]] = trend["regressions"]  # type: ignore[assignment]
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} series regressed past {threshold_pct:.0f}%"
        )
    else:
        lines.append("OK: no series regressed past the gate")
    return "\n".join(lines)
