"""The ``BENCH_*.json`` machine-readable benchmark artifact format.

Every performance claim in this repository should leave behind a
schema-stable artifact a later PR (or CI) can diff against.  The shape:

.. code-block:: json

    {
      "bench": "fig9",
      "schema_version": 1,
      "meta": {"seed": 2008, "git_rev": "abc1234", "config_hash": "..."},
      "results": [
        {"name": "multi_optimized",
         "params": {"history_size": 100000},
         "stats": {"mean_s": 0.41, "min_s": 0.39, "repeats": 3}}
      ]
    }

``name`` is the measured scheme/variant, ``params`` the sweep point, and
``stats`` at least ``mean_s``/``min_s``/``repeats``.  The validator is
deliberately strict about this core so trajectory tooling can rely on
it, and silent about extra keys so future benches can extend it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_payload",
    "validate_bench_payload",
    "write_bench_json",
    "read_bench_json",
]

BENCH_SCHEMA_VERSION = 1

PathLike = Union[str, Path]
_REQUIRED_STATS = ("mean_s", "min_s", "repeats")


def bench_payload(
    bench: str,
    results: List[Dict[str, object]],
    *,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble (and validate) a benchmark artifact payload."""
    payload: Dict[str, object] = {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "results": list(results),
    }
    validate_bench_payload(payload)
    return payload


def validate_bench_payload(payload: object) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid bench artifact."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    for key in ("bench", "schema_version", "meta", "results"):
        if key not in payload:
            raise ValueError(f"bench payload missing key {key!r}")
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        raise ValueError("'bench' must be a non-empty string")
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {payload['schema_version']!r}; "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(payload["meta"], dict):
        raise ValueError("'meta' must be an object")
    results = payload["results"]
    if not isinstance(results, list) or not results:
        raise ValueError("'results' must be a non-empty list")
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            raise ValueError(f"results[{i}] must be an object")
        if not isinstance(row.get("name"), str) or not row["name"]:
            raise ValueError(f"results[{i}].name must be a non-empty string")
        if not isinstance(row.get("params"), dict):
            raise ValueError(f"results[{i}].params must be an object")
        stats = row.get("stats")
        if not isinstance(stats, dict):
            raise ValueError(f"results[{i}].stats must be an object")
        for stat in _REQUIRED_STATS:
            value = stats.get(stat)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"results[{i}].stats.{stat} must be a number, got {value!r}"
                )


def write_bench_json(
    path: PathLike,
    bench: str,
    results: List[Dict[str, object]],
    *,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Validate and write a ``BENCH_<name>.json``; returns the payload."""
    payload = bench_payload(bench, results, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")
    return payload


def read_bench_json(path: PathLike) -> Dict[str, object]:
    """Load and validate a benchmark artifact."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench_payload(payload)
    return payload
