"""Crash flight recorder: bounded recent history, dumped on failure.

When the resilience ladder degrades to nothing, a breaker opens, an SLO
budget burns, or the process catches a fatal signal, the question is
always "what did the system look like *just before*?" — and until now
the answer died with the process.  A :class:`FlightRecorder` keeps
bounded rings of

* recent finished **spans** (fed by the obs runtime's span exit paths,
  the same records the span sink writes),
* recent structured **events** (fed by the resilience emit funnel, the
  anomaly detector, and any :class:`~repro.obs.events.EventLog` opted
  in), and
* recent **metric history** (the attached
  :class:`~repro.obs.tsdb.TimeSeriesStore` tails),

and on a trigger writes one schema-validated **post-mortem bundle**: the
trace-tree tail, the last-N events, the series tails, the latest SLO
state, and the active fault plan.  Triggers:

* a :class:`~repro.resilience.faults.ResilienceError` escaping the
  serving ladder (``AssessmentService`` dumps before raising);
* a circuit breaker opening (the resilience emit funnel forwards every
  event into the ring; ``breaker_open`` is a trigger event);
* an SLO burn detected at scrape time
  (:meth:`~repro.obs.tsdb.MetricsScraper` calls :meth:`on_slo_burn`);
* a fatal signal (:meth:`install_signal_handlers`, opt-in).

Install with :func:`flight_recording` (scoped) or by assigning
``obs.runtime.flight_recorder`` directly; dumps are throttled by
``min_dump_interval_s`` so a failure storm produces a handful of
bundles, not thousands.  ``repro obs postmortem <bundle>`` renders a
bundle back into human form.
"""

from __future__ import annotations

import json
import math
import signal
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .events import run_metadata

__all__ = [
    "POSTMORTEM_SCHEMA_VERSION",
    "FlightRecorder",
    "flight_recording",
    "read_postmortem",
    "validate_postmortem_bundle",
    "render_postmortem",
]

POSTMORTEM_SCHEMA_VERSION = 1

PathLike = Union[str, Path]

#: Structured events whose arrival triggers a bundle dump.
DEFAULT_TRIGGER_EVENTS = ("breaker_open",)


class FlightRecorder:
    """Bounded rings of recent spans/events plus post-mortem dumping.

    Parameters
    ----------
    out_dir:
        Directory bundles are written into (created on first dump) as
        ``POSTMORTEM_<seq>_<reason>.json``.
    store:
        Optional :class:`~repro.obs.tsdb.TimeSeriesStore`; its series
        tails (last ``series_tail`` samples each) join every bundle.
    max_spans / max_events:
        Ring sizes.
    trigger_events:
        Event names that trigger a dump on arrival (via
        :meth:`record_event`); default ``("breaker_open",)``.
    min_dump_interval_s:
        Dump throttle: triggers inside the window are counted
        (:attr:`n_suppressed`) but produce no bundle.
    clock:
        Injectable wall clock (tests).
    """

    def __init__(
        self,
        out_dir: PathLike,
        *,
        store=None,
        scraper=None,
        max_spans: int = 256,
        max_events: int = 512,
        series_tail: int = 64,
        trigger_events=DEFAULT_TRIGGER_EVENTS,
        min_dump_interval_s: float = 5.0,
        clock=time.time,
    ):
        if max_spans < 1 or max_events < 1 or series_tail < 1:
            raise ValueError("ring sizes must be >= 1")
        if min_dump_interval_s < 0:
            raise ValueError(
                f"min_dump_interval_s must be non-negative, got {min_dump_interval_s}"
            )
        self.out_dir = Path(out_dir)
        self.store = store
        self.scraper = scraper
        self.series_tail = series_tail
        self.trigger_events = frozenset(trigger_events)
        self.min_dump_interval_s = min_dump_interval_s
        self._clock = clock
        self._spans: deque = deque(maxlen=max_spans)
        self._events: deque = deque(maxlen=max_events)
        self._last_dump: Optional[float] = None
        self._seq = 0
        self._prev_handlers: Dict[int, object] = {}
        self.n_triggers = 0
        self.n_suppressed = 0
        #: Paths of every bundle written, in order.
        self.dumps: List[Path] = []

    # -- feeding the rings ---------------------------------------------- #

    def record_span(self, span: Dict[str, object]) -> None:
        """Append one finished span (the JSONL line shape)."""
        self._spans.append(span)

    def record_event(self, event: Dict[str, object]) -> None:
        """Append one structured event; trigger events dump a bundle."""
        self._events.append(event)
        name = event.get("event")
        if isinstance(name, str) and name in self.trigger_events:
            self.dump(reason=name, trigger_event=dict(event))

    def on_slo_burn(self, evaluation, *, now: Optional[float] = None) -> Optional[Path]:
        """An SLO budget is burning (called by the scraper); dump."""
        burning = ", ".join(r.spec.name for r in evaluation.burning)
        return self.dump(reason="slo_burn", burning=burning)

    # -- signal hook ---------------------------------------------------- #

    def install_signal_handlers(self, signals=("SIGTERM", "SIGINT")) -> List[str]:
        """Dump a bundle when a fatal signal arrives, then re-raise it.

        Returns the names actually hooked (signals the platform lacks,
        or that cannot be hooked off the main thread, are skipped).
        The previous handler is chained when callable; otherwise the
        default disposition is restored and the signal re-sent so the
        process still dies with the right status.
        """
        hooked = []
        for name in signals:
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                previous = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):  # non-main thread / unsupported
                continue
            self._prev_handlers[signum] = previous
            hooked.append(name)
        return hooked

    def uninstall_signal_handlers(self) -> None:
        """Restore the handlers replaced by :meth:`install_signal_handlers`."""
        for signum, previous in self._prev_handlers.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass
        self._prev_handlers.clear()

    def _on_signal(self, signum, frame) -> None:
        self.dump(reason="fatal_signal", signal=int(signum), force=True)
        previous = self._prev_handlers.get(signum)
        if callable(previous):
            previous(signum, frame)
            return
        # restore the default disposition and re-send: the process dies
        # with the conventional signal exit status
        signal.signal(signum, signal.SIG_DFL)
        import os

        os.kill(os.getpid(), signum)

    # -- dumping -------------------------------------------------------- #

    def dump(
        self, *, reason: str, force: bool = False, **info: object
    ) -> Optional[Path]:
        """Write a post-mortem bundle now; ``None`` when throttled."""
        self.n_triggers += 1
        now = self._clock()
        if (
            not force
            and self._last_dump is not None
            and now - self._last_dump < self.min_dump_interval_s
        ):
            self.n_suppressed += 1
            return None
        self._last_dump = now
        self._seq += 1
        bundle = self.bundle(reason=reason, **info)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        safe_reason = "".join(c if c.isalnum() or c in "-_" else "_" for c in reason)
        path = self.out_dir / f"POSTMORTEM_{self._seq:03d}_{safe_reason}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True, default=repr)
            handle.write("\n")
        self.dumps.append(path)
        return path

    def bundle(self, *, reason: str, **info: object) -> Dict[str, object]:
        """The post-mortem payload (also what :meth:`dump` writes)."""
        payload: Dict[str, object] = {
            "postmortem": POSTMORTEM_SCHEMA_VERSION,
            "reason": reason,
            "info": {k: v for k, v in info.items()},
            "meta": run_metadata(),
            "spans": [dict(s) for s in self._spans],
            "events": [dict(e) for e in self._events],
            "series": self._series_tails(),
            "slo": self._slo_state(),
            "fault_plan": self._fault_plan_state(),
        }
        return payload

    def _series_tails(self) -> Dict[str, List[List[float]]]:
        store = self.store
        if store is None and self.scraper is not None:
            store = self.scraper.store
        if store is None:
            return {}
        return {
            name: [[t, v] for t, v in samples]
            for name, samples in store.tails(self.series_tail).items()
        }

    def _slo_state(self) -> Optional[List[Dict[str, object]]]:
        evaluation = (
            self.scraper.last_slo_evaluation if self.scraper is not None else None
        )
        if evaluation is None:
            return None
        rows = []
        for result in evaluation.results:
            fraction = result.bad_fraction
            consumed = result.budget_consumed
            rows.append(
                {
                    "name": result.spec.name,
                    "kind": result.spec.kind,
                    "total": result.total,
                    "bad": result.bad,
                    "bad_fraction": None if math.isnan(fraction) else fraction,
                    "budget": result.spec.budget,
                    "budget_consumed": None if math.isnan(consumed) else consumed,
                    "burning": result.burning,
                    "burn_rates": {
                        k: (None if math.isnan(v) else v)
                        for k, v in result.burn_rates.items()
                    },
                }
            )
        return rows

    def _fault_plan_state(self) -> Optional[Dict[str, object]]:
        # lazy import: resilience.runtime imports obs modules at import
        # time, so the reverse edge must not exist at module level
        from ..resilience import runtime as _res

        if _res.plan is None:
            return None
        return {
            "seed": _res.plan.seed,
            "specs": {
                site: {
                    "mode": spec.mode,
                    "probability": spec.probability,
                    "max_fires": spec.max_fires,
                    "after": spec.after,
                    "delay_s": spec.delay_s,
                }
                for site, spec in _res.plan.specs.items()
            },
            "counts": _res.plan.counts(),
        }


@contextmanager
def flight_recording(
    out_dir: PathLike, **recorder_kwargs
) -> Iterator[FlightRecorder]:
    """Install a :class:`FlightRecorder` globally for a ``with`` block.

    The recorder lands in ``obs.runtime.flight_recorder`` (where the
    span exit paths, the resilience emit funnel, and the scraper find
    it) and the previous recorder is restored on exit.
    """
    from . import runtime as _rt

    recorder = FlightRecorder(out_dir, **recorder_kwargs)
    saved = _rt.flight_recorder
    _rt.flight_recorder = recorder
    try:
        yield recorder
    finally:
        _rt.flight_recorder = saved


# ---------------------------------------------------------------------- #
# bundle round trip: read, validate, render


def read_postmortem(path: PathLike) -> Dict[str, object]:
    """Load and schema-validate a post-mortem bundle."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON ({exc})") from None
    validate_postmortem_bundle(payload)
    return payload


def validate_postmortem_bundle(payload: Dict[str, object]) -> None:
    """Schema check; raises ``ValueError`` naming the offending path."""
    if not isinstance(payload, dict):
        raise ValueError("bundle must be a JSON object")
    if payload.get("postmortem") != POSTMORTEM_SCHEMA_VERSION:
        raise ValueError(
            f"postmortem: expected schema version {POSTMORTEM_SCHEMA_VERSION}, "
            f"got {payload.get('postmortem')!r}"
        )
    if not isinstance(payload.get("reason"), str) or not payload["reason"]:
        raise ValueError("reason: expected a non-empty string")
    if not isinstance(payload.get("meta"), dict):
        raise ValueError("meta: expected an object")
    for key in ("spans", "events"):
        value = payload.get(key)
        if not isinstance(value, list):
            raise ValueError(f"{key}: expected a list")
        for i, item in enumerate(value):
            if not isinstance(item, dict):
                raise ValueError(f"{key}[{i}]: expected an object")
    series = payload.get("series")
    if not isinstance(series, dict):
        raise ValueError("series: expected an object")
    for name, samples in series.items():
        if not isinstance(samples, list):
            raise ValueError(f"series[{name!r}]: expected a list")
        for i, sample in enumerate(samples):
            if (
                not isinstance(sample, list)
                or len(sample) != 2
                or not all(isinstance(x, (int, float)) for x in sample)
            ):
                raise ValueError(f"series[{name!r}][{i}]: expected [t, value]")
    slo = payload.get("slo")
    if slo is not None:
        if not isinstance(slo, list):
            raise ValueError("slo: expected a list or null")
        for i, row in enumerate(slo):
            if not isinstance(row, dict) or "name" not in row or "burning" not in row:
                raise ValueError(f"slo[{i}]: expected an object with name/burning")
    plan = payload.get("fault_plan")
    if plan is not None and not isinstance(plan, dict):
        raise ValueError("fault_plan: expected an object or null")


def render_postmortem(payload: Dict[str, object], *, tail: int = 20) -> str:
    """A bundle as the text report behind ``repro obs postmortem``."""
    from .export import render_trace_tree, trace_ids
    from .tsdb import render_sparkline

    lines: List[str] = []
    meta = payload.get("meta") or {}
    lines.append(f"post-mortem: {payload.get('reason')}")
    info = payload.get("info") or {}
    if info:
        lines.append(
            "  " + "  ".join(f"{k}={v}" for k, v in sorted(info.items()))
        )
    interesting = {
        k: meta[k]
        for k in ("timestamp", "git_rev", "python", "seed")
        if isinstance(meta, dict) and meta.get(k) is not None
    }
    if interesting:
        lines.append("  " + "  ".join(f"{k}={v}" for k, v in interesting.items()))

    slo = payload.get("slo")
    lines.append("")
    if slo:
        lines.append("slo state:")
        for row in slo:
            status = "BURN" if row.get("burning") else "ok"
            consumed = row.get("budget_consumed")
            consumed_text = (
                f"{float(consumed):.0%}" if isinstance(consumed, (int, float)) else "-"
            )
            burn = row.get("burn_rates") or {}
            burn_text = " ".join(
                f"{k}={'-' if v is None else format(float(v), '.2f')}"
                for k, v in sorted(burn.items())
            )
            lines.append(
                f"  [{status:>4}] {row.get('name')}  consumed {consumed_text}"
                + (f"  burn[{burn_text}]" if burn_text else "")
            )
    else:
        lines.append("slo state: (none recorded)")

    spans = payload.get("spans") or []
    lines.append("")
    if spans:
        ids = trace_ids(spans)
        lines.append(f"trace tail: {len(spans)} span(s), {len(ids)} trace(s)")
        if ids:
            # render the most recent trace's tree — the one that died
            try:
                tree = render_trace_tree(spans, ids[-1], prefix_match=False)
            except ValueError:  # pragma: no cover - ids come from spans
                tree = ""
            if tree:
                lines.extend("  " + line for line in tree.splitlines())
    else:
        lines.append("trace tail: (no spans recorded)")

    events = payload.get("events") or []
    lines.append("")
    if events:
        lines.append(f"events (last {min(tail, len(events))} of {len(events)}):")
        for event in events[-tail:]:
            name = event.get("event", "?")
            attrs = {
                k: v
                for k, v in event.items()
                if k not in ("event", "time") and v is not None
            }
            attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(f"  {name}  {attr_text}".rstrip())
    else:
        lines.append("events: (none recorded)")

    series = payload.get("series") or {}
    lines.append("")
    if series:
        lines.append(f"series tails ({len(series)}):")
        width = max(len(name) for name in series)
        for name in sorted(series):
            samples = series[name]
            values = [v for _, v in samples]
            last = f"{values[-1]:.6g}" if values else "-"
            lines.append(
                f"  {name:<{width}}  last={last:>12}  {render_sparkline(values)}"
            )
    else:
        lines.append("series tails: (none recorded)")

    plan = payload.get("fault_plan")
    lines.append("")
    if plan:
        counts = plan.get("counts") or {}
        specs = plan.get("specs") or {}
        lines.append(f"active fault plan (seed {plan.get('seed')}):")
        for site in sorted(specs):
            spec = specs[site]
            count = counts.get(site, {})
            lines.append(
                f"  {site}: mode={spec.get('mode')} "
                f"p={spec.get('probability')} "
                f"fired {count.get('fires', 0)}/{count.get('invocations', 0)}"
            )
    else:
        lines.append("active fault plan: (none)")
    return "\n".join(lines)
