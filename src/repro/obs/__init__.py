"""repro.obs — metrics, tracing, and structured events for the pipeline.

One unified observability layer for the two-phase trust pipeline:

* **Metrics** — a process-local :class:`MetricsRegistry` of counters,
  gauges, and streaming histograms (p50/p95/p99 without storing
  samples), addressed by dotted name + labels;
* **Tracing** — :func:`span`/:func:`timer` context managers that nest
  and cost one branch (no allocation) when collection is disabled;
* **Events** — an append-only :class:`EventLog` with a JSONL sink and
  seeded-run metadata (seed, config hash, git revision);
* **Exporters** — text and Prometheus renderings plus the
  ``BENCH_*.json`` benchmark-artifact format.

Collection is **off by default**; the instrumented hot paths in
``core``/``stats``/``simulation``/``p2p`` check one module-level flag
before doing anything.  Enable it globally with :func:`enable`, or for
one block with::

    from repro import obs

    with obs.activate() as session:
        assessor.assess(history)
    print(obs.render_text(session.registry))

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and label
conventions.
"""

from __future__ import annotations

import logging

from .audit import (
    AUDIT_SCHEMA_VERSION,
    AuditTrail,
    audit_session,
    disable_audit,
    enable_audit,
    explain_server,
    read_audit_jsonl,
    render_audit_summary,
    summarize_records,
    validate_audit_record,
)
from .bench import (
    BENCH_SCHEMA_VERSION,
    bench_payload,
    bench_trend,
    compare_bench_payloads,
    load_bench_history,
    read_bench_json,
    render_bench_diff,
    render_bench_trend,
    validate_bench_payload,
    write_bench_json,
)
from .context import (
    SpanLog,
    TraceContext,
    child_of,
    current,
    explicit_span,
    new_root,
    read_span_jsonl,
    span_to_dict,
    tracing_session,
    use,
    wall_clock_of,
)
from .events import (
    EventLog,
    config_fingerprint,
    git_revision,
    read_events,
    run_metadata,
)
from .export import (
    render_prometheus,
    render_text,
    render_trace_tree,
    spans_to_otlp,
    trace_ids,
)
from .flightrec import (
    POSTMORTEM_SCHEMA_VERSION,
    FlightRecorder,
    flight_recording,
    read_postmortem,
    render_postmortem,
    validate_postmortem_bundle,
)
from .fleet import (
    FLEET_SCHEMA_VERSION,
    aggregate_snapshots,
    check_ring,
    default_fleet_slos,
    evaluate_fleet_slos,
    evaluation_rows,
    fleet_payload,
    fleet_to_bench_rows,
    gauge_table,
    node_bundle,
    read_fleet_json,
    render_fleet,
    topology_snapshot,
    validate_fleet_bench_payload,
    validate_fleet_payload,
    write_fleet_json,
)
from .monitor import (
    ProgressMonitor,
    read_events_lenient,
    render_dashboard,
    rss_bytes,
    tail_dashboard,
)
from .profile import (
    PROFILE_SCHEMA_VERSION,
    PhaseProfiler,
    PhaseStat,
    folded_path_for,
    profile_payload,
    profile_session,
    read_profile_json,
    render_folded,
    validate_profile_payload,
    write_folded,
    write_profile_json,
)
from .registry import Counter, Gauge, MetricSample, MetricsRegistry, StreamingHistogram
from .scope import (
    current_node,
    node_scope,
    node_snapshot,
    nodes_in,
    split_snapshot,
)
from .report import render_artifact, render_bench, render_event_log, render_profile
from .runtime import (
    ObsSession,
    activate,
    disable,
    enable,
    get_registry,
    get_tracer,
    is_enabled,
    span,
    span_event,
    timer,
)
from .slo import (
    SloEngine,
    SloEvaluation,
    SloResult,
    SloSpec,
    default_serve_slos,
    evaluate_events,
    evaluation_to_bench_rows,
    render_slo_report,
    validate_slo_payload,
)
from .tracing import SpanRecord, Tracer
from .tsdb import (
    TSDB_SCHEMA_VERSION,
    AnomalyDetector,
    MetricsScraper,
    SeriesKey,
    TimeSeriesStore,
    render_series_table,
    render_sparkline,
    scraping_session,
)

# Library logging etiquette: the package never configures the root
# logger; a NullHandler keeps "no handler" warnings away from users who
# have not opted into logging output.
logging.getLogger(__name__).addHandler(logging.NullHandler())


def configure_logging(level: str = "INFO", logger_name: str = "repro") -> None:
    """Opt the ``repro`` logger hierarchy into stderr output at ``level``.

    Used by the CLIs' ``--log-level`` flag; attaches a stream handler
    only once, so repeated calls just adjust the level.
    """
    logger = logging.getLogger(logger_name)
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(numeric)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)


__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "AuditTrail",
    "audit_session",
    "disable_audit",
    "enable_audit",
    "explain_server",
    "read_audit_jsonl",
    "render_audit_summary",
    "summarize_records",
    "validate_audit_record",
    "BENCH_SCHEMA_VERSION",
    "bench_payload",
    "bench_trend",
    "compare_bench_payloads",
    "load_bench_history",
    "read_bench_json",
    "render_bench_diff",
    "render_bench_trend",
    "validate_bench_payload",
    "write_bench_json",
    "SpanLog",
    "TraceContext",
    "child_of",
    "current",
    "explicit_span",
    "new_root",
    "read_span_jsonl",
    "span_to_dict",
    "tracing_session",
    "use",
    "wall_clock_of",
    "EventLog",
    "config_fingerprint",
    "git_revision",
    "read_events",
    "run_metadata",
    "render_prometheus",
    "render_text",
    "render_trace_tree",
    "spans_to_otlp",
    "trace_ids",
    "ProgressMonitor",
    "read_events_lenient",
    "render_dashboard",
    "rss_bytes",
    "tail_dashboard",
    "POSTMORTEM_SCHEMA_VERSION",
    "FlightRecorder",
    "flight_recording",
    "read_postmortem",
    "render_postmortem",
    "validate_postmortem_bundle",
    "FLEET_SCHEMA_VERSION",
    "aggregate_snapshots",
    "check_ring",
    "default_fleet_slos",
    "evaluate_fleet_slos",
    "evaluation_rows",
    "fleet_payload",
    "fleet_to_bench_rows",
    "gauge_table",
    "node_bundle",
    "read_fleet_json",
    "render_fleet",
    "topology_snapshot",
    "validate_fleet_bench_payload",
    "validate_fleet_payload",
    "write_fleet_json",
    "current_node",
    "node_scope",
    "node_snapshot",
    "nodes_in",
    "split_snapshot",
    "TSDB_SCHEMA_VERSION",
    "AnomalyDetector",
    "MetricsScraper",
    "SeriesKey",
    "TimeSeriesStore",
    "render_series_table",
    "render_sparkline",
    "scraping_session",
    "PROFILE_SCHEMA_VERSION",
    "PhaseProfiler",
    "PhaseStat",
    "folded_path_for",
    "profile_payload",
    "profile_session",
    "read_profile_json",
    "render_folded",
    "validate_profile_payload",
    "write_folded",
    "write_profile_json",
    "Counter",
    "Gauge",
    "MetricSample",
    "MetricsRegistry",
    "StreamingHistogram",
    "render_artifact",
    "render_bench",
    "render_event_log",
    "render_profile",
    "ObsSession",
    "activate",
    "disable",
    "enable",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "span",
    "span_event",
    "timer",
    "SloEngine",
    "SloEvaluation",
    "SloResult",
    "SloSpec",
    "default_serve_slos",
    "evaluate_events",
    "evaluation_to_bench_rows",
    "render_slo_report",
    "validate_slo_payload",
    "SpanRecord",
    "Tracer",
    "configure_logging",
]
