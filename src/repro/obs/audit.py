"""Decision provenance for the two-phase trust pipeline.

A phase-1 rejection used to be a bare boolean; this module turns every
behavior test and two-phase assessment into an inspectable *audit
record*: the inputs (history length, window size ``m``, ``p_hat``),
every multi-testing suffix round with its empirical window distribution,
reference binomial, distance value and the calibrated ε it was compared
against, the collusion-resilient issuer reordering when one was applied,
and the final verdict with a machine-readable rejection reason.

Like the metrics layer (:mod:`repro.obs.runtime`), auditing is **off by
default** and gated by one module-level flag so the hot paths pay a
single attribute read when it is disabled::

    from ..obs import audit as _audit
    ...
    if _audit.enabled:
        trail = _audit.trail
        if trail.want_record():
            trail.emit(_audit.single_test_record(...))

Records are plain dicts (schema v1, validated by
:func:`validate_audit_record`), flow through the :class:`EventLog` JSONL
sink as ``audit`` events with full run provenance, and are queryable
after the fact: :func:`read_audit_jsonl` closes the round trip,
:func:`summarize_records` aggregates rejection-reason histograms and
distance-vs-ε margin distributions, and :func:`explain_server` renders
the human-readable "why was this server rejected" report behind the
``repro explain`` CLI.

Overhead is bounded two ways: **sampling** (``sample_every=N`` records
one in N decisions; a decision is one two-phase assessment or one
directly-invoked behavior test, and everything nested inside it is
sampled coherently) and a **capacity cap** on in-memory retention.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from . import context as _trace_context
from .events import EventLog, read_events, run_metadata

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "REASON_INSUFFICIENT",
    "REASON_DISTANCE",
    "REASON_SUFFIX_DISTANCE",
    "REASON_LOW_TRUST",
    "AuditTrail",
    "enabled",
    "trail",
    "enable_audit",
    "disable_audit",
    "audit_session",
    "single_test_record",
    "multi_test_record",
    "assessment_record",
    "reorder_trace",
    "reason_for_verdict",
    "reason_for_report",
    "validate_audit_record",
    "read_audit_jsonl",
    "summarize_records",
    "render_audit_summary",
    "explain_server",
]

AUDIT_SCHEMA_VERSION = 1

#: Machine-readable rejection reasons.
REASON_INSUFFICIENT = "insufficient_history"
REASON_DISTANCE = "distance_exceeds_epsilon"
REASON_SUFFIX_DISTANCE = "suffix_distance_exceeds_epsilon"
REASON_LOW_TRUST = "trust_below_threshold"

_KINDS = ("behavior_test", "assessment")
_STATUSES = ("trusted", "untrusted", "suspicious")

#: Issuer-reordering traces keep at most this many group sizes / issuers.
_REORDER_TOP = 20


class AuditTrail:
    """Collects audit records, with sampling and bounded retention.

    Parameters
    ----------
    sample_every:
        Record one in this many decisions (1 = every decision).  A
        *decision* is one :meth:`decision_scope` entry at depth zero, or
        one bare ``want_record()`` call outside any scope; everything
        nested inside a scope shares its sampling outcome, so a sampled
        assessment always carries its behavior-test record and vice
        versa.
    event_log:
        Optional :class:`~repro.obs.events.EventLog`; every record is
        additionally emitted as an ``audit`` event (JSONL sink).
    capacity:
        In-memory retention cap; older records are dropped (counted in
        :attr:`dropped`) once exceeded.  The event log, if any, still
        sees every record.
    include_pmfs:
        Whether per-round empirical/expected pmfs are embedded in the
        records (the bulkiest part of a record; disable for large
        in-memory sweeps that only need reasons and margins).
    """

    def __init__(
        self,
        sample_every: int = 1,
        *,
        event_log: Optional[EventLog] = None,
        capacity: int = 100_000,
        include_pmfs: bool = True,
    ):
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sample_every = sample_every
        self.include_pmfs = include_pmfs
        self._capacity = capacity
        self._event_log = event_log
        self._records: List[Dict[str, object]] = []
        self._dropped = 0
        self._tick = 0
        self._scope_depth = 0
        self._scope_sampled = False
        self._context_stack: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # sampling and scoping

    def _roll(self) -> bool:
        self._tick += 1
        if self.sample_every <= 1:
            return True
        return (self._tick - 1) % self.sample_every == 0

    @property
    def decisions_seen(self) -> int:
        """Decisions observed so far (recorded or sampled out)."""
        return self._tick

    def want_record(self) -> bool:
        """Should the current decision be captured?

        Inside a :meth:`decision_scope` this returns the scope's sampling
        outcome (no new roll); outside, each call is its own decision.
        """
        if self._scope_depth:
            return self._scope_sampled
        return self._roll()

    @contextmanager
    def decision_scope(self, **context: object) -> Iterator[bool]:
        """Group nested records into one sampled decision.

        Context fields (e.g. ``server=...``, ``step=...``) are merged
        into every record emitted within the scope; inner scopes override
        outer ones key-by-key.  Yields whether the decision is sampled.
        """
        if self._scope_depth == 0:
            self._scope_sampled = self._roll()
        self._scope_depth += 1
        self._context_stack.append(
            {k: v for k, v in context.items() if v is not None}
        )
        try:
            yield self._scope_sampled
        finally:
            self._context_stack.pop()
            self._scope_depth -= 1

    def scope_context(self) -> Dict[str, object]:
        """The merged context of all open scopes (inner wins)."""
        merged: Dict[str, object] = {}
        for layer in self._context_stack:
            merged.update(layer)
        return merged

    # ------------------------------------------------------------------ #
    # emission and retrieval

    def emit(self, record: Dict[str, object]) -> Dict[str, object]:
        """Stamp scope context onto ``record``, store and sink it.

        Records emitted under an active
        :class:`~repro.obs.context.TraceContext` additionally carry its
        ``trace_id``, closing the causal chain from request root span to
        the audited verdict (``repro obs trace`` / ``repro explain``).
        """
        ctx = _trace_context.current()
        if ctx is not None and record.get("trace_id") is None:
            record["trace_id"] = ctx.trace_id
        context = self.scope_context()
        server = context.pop("server", None)
        if record.get("server") in (None, "") and server is not None:
            record["server"] = str(server)
        if record.get("server") in (None, ""):
            record["server"] = "unknown"
        if context:
            extra = dict(context)
            extra.update(record.get("context") or {})
            record["context"] = extra
        self._records.append(record)
        if len(self._records) > self._capacity:
            del self._records[0]
            self._dropped += 1
        if self._event_log is not None:
            self._event_log.emit("audit", **record)
        return record

    @property
    def records(self) -> List[Dict[str, object]]:
        """Every retained record, in emission order."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted by the capacity cap."""
        return self._dropped

    def summary(self) -> Dict[str, object]:
        """Aggregate the retained records (see :func:`summarize_records`)."""
        return summarize_records(self._records)

    def explain(self, server: str) -> str:
        """Human-readable report for one server's retained records."""
        return explain_server(self._records, server)


# Default trail is capacity-capped and samples everything; replaced by
# enable_audit()/audit_session().
enabled: bool = False
trail: AuditTrail = AuditTrail()


def enable_audit(new_trail: Optional[AuditTrail] = None) -> AuditTrail:
    """Turn decision auditing on, optionally swapping in a fresh trail."""
    global enabled, trail
    if new_trail is not None:
        trail = new_trail
    enabled = True
    return trail


def disable_audit() -> None:
    """Turn decision auditing off (the trail keeps its records)."""
    global enabled
    enabled = False


@contextmanager
def audit_session(
    sample_every: int = 1,
    *,
    path: Optional[object] = None,
    run_meta: Optional[Dict[str, object]] = None,
    capacity: int = 100_000,
    include_pmfs: bool = True,
) -> Iterator[AuditTrail]:
    """Audit within a ``with`` block, restoring prior state on exit.

    ``path`` adds a JSONL sink (opened with a ``run_start`` provenance
    header — pass ``run_meta=obs.run_metadata(seed=..., config=...)`` or
    let the session stamp a bare one).
    """
    global enabled, trail
    saved = (enabled, trail)
    event_log = None
    if path is not None:
        event_log = EventLog(path, run_meta=run_meta or run_metadata())
    session_trail = AuditTrail(
        sample_every,
        event_log=event_log,
        capacity=capacity,
        include_pmfs=include_pmfs,
    )
    enable_audit(session_trail)
    try:
        yield session_trail
    finally:
        enabled, trail = saved
        if event_log is not None:
            event_log.close()


# ---------------------------------------------------------------------- #
# record builders (called from the hot paths only on sampled decisions)


def reason_for_verdict(verdict) -> Optional[str]:
    """Machine-readable rejection reason of a single-test verdict."""
    if verdict.passed:
        return None
    if verdict.insufficient:
        return REASON_INSUFFICIENT
    return REASON_DISTANCE


def reason_for_report(report) -> Optional[str]:
    """Machine-readable rejection reason of a multi-test report."""
    if report.passed:
        return None
    failure = report.first_failure
    if failure is not None and failure[1].insufficient:
        return REASON_INSUFFICIENT
    return REASON_SUFFIX_DISTANCE


def _config_inputs(config, n: int, **extra: object) -> Dict[str, object]:
    inputs: Dict[str, object] = {
        "n": int(n),
        "window_size": int(config.window_size),
        "min_transactions": int(config.min_transactions),
        "confidence": float(config.confidence),
        "distance": str(config.distance),
        "multi_step": int(config.multi_step),
    }
    inputs.update(extra)
    return inputs


def _round_entry(
    suffix_length: int,
    verdict,
    *,
    observed_pmf=None,
    expected_pmf=None,
) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "suffix_length": int(suffix_length),
        "n_windows": int(verdict.n_windows),
        "p_hat": float(verdict.p_hat),
        "distance": float(verdict.distance),
        "epsilon": float(verdict.threshold),
        "margin": float(verdict.margin),
        "passed": bool(verdict.passed),
        "insufficient": bool(verdict.insufficient),
    }
    if observed_pmf is not None:
        entry["observed_pmf"] = [round(float(x), 9) for x in observed_pmf]
    if expected_pmf is not None:
        entry["expected_pmf"] = [round(float(x), 9) for x in expected_pmf]
    return entry


def _suffix_pmfs(
    outcomes, verdict, align: str = "recent"
) -> Tuple[Optional[object], Optional[object]]:
    """Recompute one suffix round's empirical and reference pmfs.

    Uses the verdict's own ``p_hat`` so the reference binomial in the
    record is exactly the one the test compared against.
    """
    if verdict.insufficient or verdict.n_windows == 0:
        return None, None
    # Function-level imports keep obs.audit importable before the stats
    # package (which itself instruments through repro.obs.runtime).
    from ..feedback.windows import window_counts
    from ..stats.binomial import binomial_pmf
    from ..stats.empirical import empirical_pmf

    m = verdict.window_size
    counts = window_counts(outcomes, m, align=align)
    observed = empirical_pmf(counts, m + 1)
    expected = binomial_pmf(m, verdict.p_hat)
    return observed, expected


def single_test_record(
    test_name: str,
    *,
    config,
    outcomes,
    verdict,
    server: Optional[str] = None,
    reorder: Optional[Dict[str, object]] = None,
    include_pmfs: bool = True,
) -> Dict[str, object]:
    """Audit record of one single behavior test."""
    n = int(len(outcomes))
    observed = expected = None
    if include_pmfs:
        observed, expected = _suffix_pmfs(
            outcomes, verdict, align=getattr(config, "align", "recent")
        )
    record: Dict[str, object] = {
        "schema_version": AUDIT_SCHEMA_VERSION,
        "kind": "behavior_test",
        "test": test_name,
        "server": server,
        "passed": bool(verdict.passed),
        "reason": reason_for_verdict(verdict),
        "inputs": _config_inputs(config, n),
        "rounds": [
            _round_entry(n, verdict, observed_pmf=observed, expected_pmf=expected)
        ],
        "failing_suffix": None if verdict.passed else n,
        "reorder": reorder,
    }
    return record


def multi_test_record(
    test_name: str,
    *,
    config,
    outcomes,
    report,
    server: Optional[str] = None,
    strategy: Optional[str] = None,
    reorder: Optional[Dict[str, object]] = None,
    round_outcomes: Optional[Sequence] = None,
    include_pmfs: bool = True,
) -> Dict[str, object]:
    """Audit record of one multi-testing run (every judged suffix round).

    ``round_outcomes`` optionally supplies the per-round outcome vector
    (the collusion-resilient variant reorders each suffix differently);
    by default round ``(length, verdict)`` is recomputed from the most
    recent ``length`` entries of ``outcomes``.
    """
    import numpy as np

    arr = np.asarray(outcomes)
    n = int(arr.size)
    rounds = []
    for i, (length, verdict) in enumerate(report.rounds):
        observed = expected = None
        if include_pmfs:
            if round_outcomes is not None:
                suffix = round_outcomes[i]
            else:
                suffix = arr[n - int(length):]
            observed, expected = _suffix_pmfs(suffix, verdict)
        rounds.append(
            _round_entry(length, verdict, observed_pmf=observed, expected_pmf=expected)
        )
    failure = report.first_failure
    extra = {"rounds_tested": len(report.rounds)}
    if strategy is not None:
        extra["strategy"] = strategy
    record: Dict[str, object] = {
        "schema_version": AUDIT_SCHEMA_VERSION,
        "kind": "behavior_test",
        "test": test_name,
        "server": server,
        "passed": bool(report.passed),
        "reason": reason_for_report(report),
        "inputs": _config_inputs(config, n, **extra),
        "rounds": rounds,
        "failing_suffix": None if failure is None else int(failure[0]),
        "reorder": reorder,
    }
    return record


def assessment_record(
    *,
    server: Optional[str],
    status: str,
    trust_value: Optional[float],
    trust_threshold: float,
    trust_function: str,
    behavior_record: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Audit record of one two-phase assessment (Fig. 2 terminal state)."""
    if status == "trusted":
        reason: Optional[str] = None
    elif status == "untrusted":
        reason = REASON_LOW_TRUST
    elif behavior_record is not None:
        reason = behavior_record.get("reason") or REASON_SUFFIX_DISTANCE
    else:
        reason = REASON_SUFFIX_DISTANCE
    behavior_summary = None
    if behavior_record is not None:
        behavior_summary = {
            "test": behavior_record.get("test"),
            "passed": behavior_record.get("passed"),
            "reason": behavior_record.get("reason"),
            "failing_suffix": behavior_record.get("failing_suffix"),
        }
        failing = _failing_round(behavior_record)
        if failing is not None:
            behavior_summary["distance"] = failing["distance"]
            behavior_summary["epsilon"] = failing["epsilon"]
    return {
        "schema_version": AUDIT_SCHEMA_VERSION,
        "kind": "assessment",
        "server": server,
        "status": status,
        "accepted": status == "trusted",
        "reason": reason,
        "trust": {
            "function": trust_function,
            "value": None if trust_value is None else float(trust_value),
            "threshold": float(trust_threshold),
        },
        "behavior": behavior_summary,
    }


def reorder_trace(feedbacks) -> Dict[str, object]:
    """Provenance of the issuer-grouped reordering Q -> Q' (Sec. 4).

    Group sizes are reported in the reordered (descending) order; only
    the largest ``_REORDER_TOP`` groups name their issuers, keeping the
    record bounded for supporter bases of thousands of clients.
    """
    groups: Dict[object, int] = {}
    first_seen: Dict[object, float] = {}
    for fb in feedbacks:
        groups[fb.client] = groups.get(fb.client, 0) + 1
        if fb.client not in first_seen:
            first_seen[fb.client] = fb.time
    ordered = sorted(
        groups.items(), key=lambda kv: (-kv[1], first_seen[kv[0]], str(kv[0]))
    )
    return {
        "n_feedbacks": int(len(feedbacks)),
        "n_groups": int(len(ordered)),
        "group_sizes": [int(size) for _, size in ordered[:_REORDER_TOP]],
        "issuers": [str(client) for client, _ in ordered[:_REORDER_TOP]],
        "truncated": len(ordered) > _REORDER_TOP,
    }


def _failing_round(record: Dict[str, object]) -> Optional[Dict[str, object]]:
    """The round matching the record's failing suffix, if any."""
    failing = record.get("failing_suffix")
    if failing is None:
        return None
    for entry in record.get("rounds") or []:
        if entry.get("suffix_length") == failing:
            return entry
    return None


# ---------------------------------------------------------------------- #
# schema validation and the JSONL round trip


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid audit record: {message}")


def validate_audit_record(record: object) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid v1 audit record.

    Strict about the core keys downstream tooling relies on, silent
    about extras (``context``, event-envelope keys), mirroring the bench
    artifact validator.
    """
    _require(isinstance(record, dict), "must be a JSON object")
    assert isinstance(record, dict)
    _require(
        record.get("schema_version") == AUDIT_SCHEMA_VERSION,
        f"schema_version must be {AUDIT_SCHEMA_VERSION}",
    )
    kind = record.get("kind")
    _require(kind in _KINDS, f"kind must be one of {_KINDS}, got {kind!r}")
    server = record.get("server")
    _require(
        isinstance(server, str) and bool(server), "server must be a non-empty string"
    )
    reason = record.get("reason")
    _require(
        reason is None or (isinstance(reason, str) and bool(reason)),
        "reason must be null or a non-empty string",
    )
    if kind == "behavior_test":
        _require(
            isinstance(record.get("test"), str) and bool(record["test"]),
            "test must be a non-empty string",
        )
        _require(isinstance(record.get("passed"), bool), "passed must be a boolean")
        _require(bool(record["passed"]) == (reason is None), "passed and reason disagree")
        inputs = record.get("inputs")
        _require(isinstance(inputs, dict), "inputs must be an object")
        assert isinstance(inputs, dict)
        for key in ("n", "window_size", "min_transactions"):
            value = inputs.get(key)
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= 0,
                f"inputs.{key} must be a non-negative integer",
            )
        rounds = record.get("rounds")
        _require(isinstance(rounds, list) and bool(rounds), "rounds must be non-empty")
        assert isinstance(rounds, list)
        for i, entry in enumerate(rounds):
            _require(isinstance(entry, dict), f"rounds[{i}] must be an object")
            for key in ("suffix_length", "n_windows"):
                value = entry.get(key)
                _require(
                    isinstance(value, int)
                    and not isinstance(value, bool)
                    and value >= 0,
                    f"rounds[{i}].{key} must be a non-negative integer",
                )
            for key in ("p_hat", "distance", "epsilon", "margin"):
                value = entry.get(key)
                _require(
                    isinstance(value, (int, float)) and not isinstance(value, bool),
                    f"rounds[{i}].{key} must be a number",
                )
            _require(
                isinstance(entry.get("passed"), bool),
                f"rounds[{i}].passed must be a boolean",
            )
        failing = record.get("failing_suffix")
        _require(
            failing is None
            or (isinstance(failing, int) and not isinstance(failing, bool)),
            "failing_suffix must be null or an integer",
        )
        if not record["passed"]:
            _require(failing is not None, "a failed test must name its failing suffix")
        reorder = record.get("reorder")
        if reorder is not None:
            _require(isinstance(reorder, dict), "reorder must be null or an object")
            for key in ("n_groups", "n_feedbacks"):
                value = reorder.get(key)
                _require(
                    isinstance(value, int) and not isinstance(value, bool),
                    f"reorder.{key} must be an integer",
                )
            _require(
                isinstance(reorder.get("group_sizes"), list),
                "reorder.group_sizes must be a list",
            )
    else:  # assessment
        status = record.get("status")
        _require(
            status in _STATUSES, f"status must be one of {_STATUSES}, got {status!r}"
        )
        _require(isinstance(record.get("accepted"), bool), "accepted must be a boolean")
        _require(
            record["accepted"] == (status == "trusted"),
            "accepted and status disagree",
        )
        trust = record.get("trust")
        _require(isinstance(trust, dict), "trust must be an object")
        assert isinstance(trust, dict)
        _require(
            isinstance(trust.get("function"), str) and bool(trust["function"]),
            "trust.function must be a non-empty string",
        )
        value = trust.get("value")
        _require(
            value is None
            or (isinstance(value, (int, float)) and not isinstance(value, bool)),
            "trust.value must be null or a number",
        )
        threshold = trust.get("threshold")
        _require(
            isinstance(threshold, (int, float)) and not isinstance(threshold, bool),
            "trust.threshold must be a number",
        )


def read_audit_jsonl(path) -> List[Dict[str, object]]:
    """Load and validate the audit records of a JSONL event log.

    Non-audit events (``run_start``, metric snapshots) are skipped; a
    malformed audit record raises ``ValueError`` with its line context.
    """
    records = []
    for i, event in enumerate(read_events(path)):
        if event.get("event") != "audit":
            continue
        # strip the event envelope so the round trip returns exactly
        # what AuditTrail.emit() recorded
        record = {k: v for k, v in event.items() if k not in ("event", "time")}
        try:
            validate_audit_record(record)
        except ValueError as exc:
            raise ValueError(f"audit record {i}: {exc}") from None
        records.append(record)
    return records


# ---------------------------------------------------------------------- #
# aggregation and rendering


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(int(q * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1)
    return sorted_values[index]


def summarize_records(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Per-run aggregate: reason histogram, margins, per-test/class breakdowns.

    ``margins`` summarizes the worst (smallest) ``ε - distance`` margin
    of every behavior test — negative margins are rejections, small
    positive ones are borderline honest players.
    """
    reasons: Dict[str, int] = {}
    by_test: Dict[str, Dict[str, int]] = {}
    by_class: Dict[str, Dict[str, int]] = {}
    statuses: Dict[str, int] = {}
    margins: List[float] = []
    n_behavior = n_assessment = 0
    for record in records:
        reason = record.get("reason")
        if reason:
            reasons[str(reason)] = reasons.get(str(reason), 0) + 1
        adversary = (record.get("context") or {}).get("adversary")
        if record.get("kind") == "behavior_test":
            n_behavior += 1
            test = str(record.get("test"))
            bucket = by_test.setdefault(test, {"tests": 0, "rejections": 0})
            bucket["tests"] += 1
            bucket["rejections"] += 0 if record.get("passed") else 1
            if adversary is not None:
                cls = by_class.setdefault(
                    str(adversary), {"tests": 0, "detections": 0}
                )
                cls["tests"] += 1
                cls["detections"] += 0 if record.get("passed") else 1
            round_margins = [
                float(entry["margin"])
                for entry in record.get("rounds") or []
                if not entry.get("insufficient")
            ]
            if round_margins:
                margins.append(min(round_margins))
        else:
            n_assessment += 1
            status = str(record.get("status"))
            statuses[status] = statuses.get(status, 0) + 1
    margins.sort()
    margin_summary: Dict[str, object] = {"n": len(margins)}
    if margins:
        margin_summary.update(
            min=margins[0],
            max=margins[-1],
            mean=sum(margins) / len(margins),
            p05=_percentile(margins, 0.05),
            p50=_percentile(margins, 0.50),
            negative=sum(1 for m in margins if m < 0),
        )
    return {
        "n_records": len(records),
        "n_behavior_tests": n_behavior,
        "n_assessments": n_assessment,
        "reasons": reasons,
        "statuses": statuses,
        "by_test": by_test,
        "by_adversary_class": by_class,
        "margins": margin_summary,
    }


def render_audit_summary(summary: Dict[str, object]) -> str:
    """An aggregate summary as aligned text (``repro obs report``)."""
    lines = [
        "audit summary: "
        f"{summary['n_records']} records "
        f"({summary['n_behavior_tests']} behavior tests, "
        f"{summary['n_assessments']} assessments)"
    ]
    reasons: Dict[str, int] = summary.get("reasons") or {}  # type: ignore[assignment]
    if reasons:
        lines.append("rejection reasons:")
        width = max(len(name) for name in reasons)
        for name in sorted(reasons, key=lambda k: (-reasons[k], k)):
            lines.append(f"  {name:<{width}}  {reasons[name]}")
    statuses: Dict[str, int] = summary.get("statuses") or {}  # type: ignore[assignment]
    if statuses:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
        lines.append(f"assessment statuses: {rendered}")
    by_test: Dict[str, Dict[str, int]] = summary.get("by_test") or {}  # type: ignore[assignment]
    for test in sorted(by_test):
        bucket = by_test[test]
        lines.append(
            f"  test {test}: {bucket['rejections']}/{bucket['tests']} rejected"
        )
    by_class: Dict[str, Dict[str, int]] = summary.get("by_adversary_class") or {}  # type: ignore[assignment]
    for cls in sorted(by_class):
        bucket = by_class[cls]
        rate = bucket["detections"] / bucket["tests"] if bucket["tests"] else 0.0
        lines.append(
            f"  adversary {cls}: {bucket['detections']}/{bucket['tests']} "
            f"detected ({rate:.1%})"
        )
    margins: Dict[str, object] = summary.get("margins") or {}  # type: ignore[assignment]
    if margins.get("n"):
        lines.append(
            "margin (epsilon - distance): "
            f"min={margins['min']:.4f} p05={margins['p05']:.4f} "
            f"p50={margins['p50']:.4f} mean={margins['mean']:.4f} "
            f"({margins['negative']}/{margins['n']} negative)"
        )
    return "\n".join(lines)


def explain_server(
    records: Sequence[Dict[str, object]], server: str
) -> str:
    """The "why was this server rejected" report for ``repro explain``.

    Walks the server's records newest-first, leading with the latest
    assessment (if any) and the latest behavior test, naming the exact
    failing suffix, its distance, and the ε it was compared against.
    """
    mine = [r for r in records if r.get("server") == server]
    if not mine:
        known = sorted({str(r.get("server")) for r in records})
        raise ValueError(
            f"no audit records for server {server!r}; "
            f"servers present: {', '.join(known) if known else '(none)'}"
        )
    lines = [f"server: {server}  ({len(mine)} audit records)"]
    latest_assessment = next(
        (r for r in reversed(mine) if r.get("kind") == "assessment"), None
    )
    latest_behavior = next(
        (r for r in reversed(mine) if r.get("kind") == "behavior_test"), None
    )
    if latest_assessment is not None:
        trust: Dict[str, object] = latest_assessment.get("trust") or {}  # type: ignore[assignment]
        status = str(latest_assessment.get("status")).upper()
        value = trust.get("value")
        value_text = "-" if value is None else f"{float(value):.4f}"  # type: ignore[arg-type]
        lines.append(
            f"latest assessment: {status} "
            f"(trust={value_text}, threshold={trust.get('threshold')}, "
            f"function={trust.get('function')})"
        )
        if latest_assessment.get("reason"):
            lines.append(f"  reason: {latest_assessment['reason']}")
    if latest_behavior is not None:
        lines.extend(_explain_behavior(latest_behavior))
    earlier_rejections = sum(
        1
        for r in mine
        if r is not latest_behavior
        and r.get("kind") == "behavior_test"
        and not r.get("passed")
    )
    if earlier_rejections:
        lines.append(f"history: {earlier_rejections} earlier behavior-test rejection(s)")
    return "\n".join(lines)


def _explain_behavior(record: Dict[str, object]) -> List[str]:
    inputs: Dict[str, object] = record.get("inputs") or {}  # type: ignore[assignment]
    verdict = "PASSED" if record.get("passed") else "REJECTED"
    lines = [
        f"behavior test: {record.get('test')} -> {verdict} "
        f"(n={inputs.get('n')}, m={inputs.get('window_size')}, "
        f"{len(record.get('rounds') or [])} suffix round(s))"
    ]
    failing = _failing_round(record)
    if failing is not None:
        lines.append(
            f"  failing suffix: most recent {failing['suffix_length']} transactions "
            f"({failing['n_windows']} windows, p_hat={failing['p_hat']:.4f})"
        )
        lines.append(
            f"  L1 distance {failing['distance']:.6f} > "
            f"epsilon {failing['epsilon']:.6f} "
            f"(margin {failing['margin']:.6f})"
        )
        if "observed_pmf" in failing:
            lines.append(
                "  observed window distribution: "
                + _pmf_text(failing["observed_pmf"])  # type: ignore[arg-type]
            )
            lines.append(
                "  reference binomial B(m, p_hat): "
                + _pmf_text(failing["expected_pmf"])  # type: ignore[arg-type]
            )
    elif not record.get("passed"):
        lines.append(f"  reason: {record.get('reason')}")
    else:
        rounds: List[Dict[str, object]] = record.get("rounds") or []  # type: ignore[assignment]
        judged = [r for r in rounds if not r.get("insufficient")]
        if judged:
            worst = min(judged, key=lambda r: float(r["margin"]))  # type: ignore[arg-type]
            lines.append(
                f"  closest call: suffix {worst['suffix_length']} at "
                f"distance {float(worst['distance']):.6f} vs "  # type: ignore[arg-type]
                f"epsilon {float(worst['epsilon']):.6f} "  # type: ignore[arg-type]
                f"(margin {float(worst['margin']):.6f})"  # type: ignore[arg-type]
            )
    reorder: Optional[Dict[str, object]] = record.get("reorder")  # type: ignore[assignment]
    if reorder:
        sizes = reorder.get("group_sizes") or []
        shown = ", ".join(str(s) for s in sizes)
        suffix = ", ..." if reorder.get("truncated") else ""
        lines.append(
            f"  issuer reordering applied: {reorder.get('n_groups')} groups over "
            f"{reorder.get('n_feedbacks')} feedbacks; sizes [{shown}{suffix}]"
        )
    context = record.get("context")
    if context:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))  # type: ignore[union-attr]
        lines.append(f"  context: {rendered}")
    return lines


def _pmf_text(pmf) -> str:
    return "[" + ", ".join(f"{float(x):.3f}" for x in pmf) + "]"
