"""Global observability state and the hot-path entry points.

The whole package reports through three module-level globals — the
``enabled`` flag, the active :class:`~repro.obs.registry.MetricsRegistry`
and the active :class:`~repro.obs.tracing.Tracer` — so instrumented code
pays a single module-attribute read when observability is off:

    from ..obs import runtime as _obs
    ...
    if _obs.enabled:
        _obs.registry.inc("core.calibration.cache_hits")

``span()``/``timer()`` follow the same discipline: the disabled path
checks the flag and returns one shared no-op context manager before any
allocation happens, so instrumenting a hot loop costs a branch, not an
object.

State is process-global and single-threaded by design (the simulation
and experiments are synchronous); :func:`activate` scopes enablement to
a ``with`` block and restores the previous state on exit, which is how
the experiment runners capture timings without permanently flipping the
global switch.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, NamedTuple, Optional

from .registry import MetricsRegistry
from .tracing import Tracer

__all__ = [
    "enabled",
    "registry",
    "tracer",
    "span_sink",
    "scraper",
    "flight_recorder",
    "is_enabled",
    "get_registry",
    "get_tracer",
    "enable",
    "disable",
    "activate",
    "span",
    "timer",
    "span_event",
    "ObsSession",
]

#: Master switch — instrumented modules check this before any other work.
enabled: bool = False

#: The active registry every metric lands in.
registry: MetricsRegistry = MetricsRegistry()

#: The active tracer every finished span lands in.
tracer: Tracer = Tracer()

#: The active phase profiler, installed by ``obs.profile_session`` —
#: ``None`` (one ``is None`` check on the live-span path) otherwise.
#: Deliberately untyped to avoid importing profile machinery here.
profiler = None

#: The active span sink (a :class:`~repro.obs.context.SpanLog`), installed
#: by ``obs.tracing_session`` — ``None`` otherwise.  Only spans that carry
#: a trace context are written, so the sink never sees untraced noise.
#: Untyped for the same layering reason as ``profiler``.
span_sink = None

#: The active :class:`~repro.obs.tsdb.MetricsScraper` — ``None`` unless a
#: runner installed one.  Serving loops call ``maybe_scrape()`` on it to
#: drive the wall-anchored cadence without a background thread.
scraper = None

#: The active :class:`~repro.obs.flightrec.FlightRecorder` — ``None``
#: unless installed (``obs.flight_recording``).  Traced span exits, the
#: resilience emit funnel, and opted-in event logs feed its rings.
flight_recorder = None


class ObsSession(NamedTuple):
    """The registry/tracer pair an :func:`activate` block writes into."""

    registry: MetricsRegistry
    tracer: Tracer


def is_enabled() -> bool:
    """Is observability currently collecting?"""
    return enabled


def get_registry() -> MetricsRegistry:
    """The currently active metrics registry."""
    return registry


def get_tracer() -> Tracer:
    """The currently active tracer."""
    return tracer


def enable(
    new_registry: Optional[MetricsRegistry] = None,
    new_tracer: Optional[Tracer] = None,
) -> ObsSession:
    """Turn collection on, optionally swapping in fresh sinks."""
    global enabled, registry, tracer
    if new_registry is not None:
        registry = new_registry
    if new_tracer is not None:
        tracer = new_tracer
    enabled = True
    return ObsSession(registry, tracer)


def disable() -> None:
    """Turn collection off (sinks keep their contents)."""
    global enabled
    enabled = False


@contextmanager
def activate(
    new_registry: Optional[MetricsRegistry] = None,
    new_tracer: Optional[Tracer] = None,
) -> Iterator[ObsSession]:
    """Collect within a ``with`` block, restoring prior state after.

    Fresh sinks are created unless explicitly passed, so a scoped
    capture never mixes its numbers into the ambient registry.
    """
    global enabled, registry, tracer
    saved = (enabled, registry, tracer)
    session = enable(
        new_registry if new_registry is not None else MetricsRegistry(),
        new_tracer if new_tracer is not None else Tracer(),
    )
    try:
        yield session
    finally:
        enabled, registry, tracer = saved


class _NoopSpan:
    """Shared do-nothing context manager returned when collection is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """An open span; optionally doubles as a histogram timer.

    When a :class:`~repro.obs.context.TraceContext` is attached to the
    calling flow, the span runs under a fresh *child* context (stamped
    onto its record and visible to nested spans and resilience events);
    with no ambient context, no trace identity is minted — keeping the
    common untraced path free of uuid cost.
    """

    __slots__ = ("_name", "_labels", "_observe", "_token")

    def __init__(self, name: str, labels: Dict[str, str], observe: bool):
        self._name = name
        self._labels = labels
        self._observe = observe
        self._token = None

    def __enter__(self) -> "_LiveSpan":
        ctx = _context.current()
        if ctx is not None:
            ctx = _context.child_of(ctx)
            self._token = _context._CURRENT.set(ctx)
        now = time.perf_counter()
        tracer.begin(self._name, self._labels, now, ctx)
        if profiler is not None:
            profiler.on_span_begin(self._name, now)
        return self

    def __exit__(self, *exc_info) -> bool:
        now = time.perf_counter()
        record = tracer.finish(now)
        if self._token is not None:
            _context._CURRENT.reset(self._token)
        if profiler is not None:
            profiler.on_span_end(now)
        if self._observe:
            registry.histogram(self._name, **self._labels).observe(record.duration)
        if record.trace_id is not None:
            if span_sink is not None:
                span_sink.write(record)
            if flight_recorder is not None:
                flight_recorder.record_span(_context.span_to_dict(record))
        return False


def span(name: str, **labels: object):
    """A traced region; a shared no-op (no allocation) when disabled."""
    if not enabled:
        return _NOOP
    return _LiveSpan(name, {k: str(v) for k, v in labels.items()}, observe=False)


def timer(name: str, **labels: object):
    """Like :func:`span`, but also records the duration into the
    histogram ``name`` so mean/min/p95 aggregate across calls."""
    if not enabled:
        return _NOOP
    return _LiveSpan(name, {k: str(v) for k, v in labels.items()}, observe=True)


def span_event(name: str, **attrs: object) -> None:
    """Annotate the innermost open span with a timestamped event.

    Resolution order matches how spans nest at runtime: an explicit
    (pool-worker) span on this thread wins over the shared tracer stack,
    so events fired inside worker shards land on the shard span, not on
    whatever the request thread happens to have open.  A no-op when
    nothing is open or collection is off.
    """
    explicit = _context.innermost_explicit()
    if explicit is not None:
        explicit.add_event(name, **attrs)
        return
    if enabled:
        tracer.add_event(name, time.perf_counter(), **attrs)


from . import context as _context  # noqa: E402  (cycle: context lazily imports us)
