"""Process-local metrics: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` owns every metric of a run, addressed by a
dotted name (``core.calibration.cache_hits``) plus an optional label set
(``strategy="optimized"``).  Three metric kinds cover what the trust
pipeline needs to report:

* :class:`Counter` — monotonically increasing totals (tests run, cache
  hits, messages sent);
* :class:`Gauge` — last-written values (population sizes, current trust);
* :class:`StreamingHistogram` — latency/size distributions summarized
  *without storing samples*: exact count/sum/min/max plus
  exponentially-bucketed counts, so p50/p95/p99 are available at a small
  bounded memory cost no matter how many observations arrive.

The registry is deliberately dependency-free (stdlib only) so every
layer of the package — ``stats`` included — can report into it without
import cycles.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple, Union

from . import scope as _scope

__all__ = ["Counter", "Gauge", "StreamingHistogram", "MetricSample", "MetricsRegistry"]

LabelSet = Tuple[Tuple[str, str], ...]

# Exponential bucket layout shared by all histograms: relative bucket
# width of 2**0.25 - 1 ≈ 19% bounds the quantile error at ~±9% while one
# histogram stays under a few hundred integer slots across 12 decades.
_BUCKET_BASE = 1e-9
_BUCKET_GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(_BUCKET_GROWTH)


def _labels_key(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self._value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The most recently set value."""
        return self._value

    def set(self, value: Union[int, float]) -> None:
        """Record the current value of the measured quantity."""
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self._value += amount


class StreamingHistogram:
    """Quantile sketch over exponential buckets — no samples stored.

    Tracks exact ``count``/``sum``/``min``/``max`` and per-bucket counts
    on a fixed geometric grid; :meth:`quantile` walks the cumulative
    bucket counts and returns the geometric midpoint of the target
    bucket (clamped to the observed min/max), giving p50/p95/p99 with a
    bounded ~9% relative error at O(1) memory per observation.
    """

    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max")
    kind = "histogram"

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (``nan`` when empty)."""
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        """Largest observation (``nan`` when empty)."""
        return self._max if self._count else math.nan

    @property
    def mean(self) -> float:
        """Exact mean of all observations (``nan`` when empty)."""
        return self._sum / self._count if self._count else math.nan

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation (negative values clamp to bucket 0)."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        index = self._bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The approximate ``q``-quantile of everything observed so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if self._count == 0:
            return math.nan
        target = max(1, math.ceil(q * self._count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= target:
                return self._representative(index)
        return self._max  # pragma: no cover - defensive; loop always hits

    @property
    def p50(self) -> float:
        """Approximate median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """Approximate 95th percentile."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """Approximate 99th percentile."""
        return self.quantile(0.99)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of observations ≤ ``threshold`` (the SLO "good" rate).

        Exact when ``threshold`` falls outside the observed range;
        otherwise resolved on the bucket grid — a bucket wholly below
        the threshold counts in full, the bucket straddling it counts
        in full iff its geometric midpoint is below (≤ one bucket width,
        ~19%, of resolution — the same error bound as ``quantile``).
        ``nan`` when empty.
        """
        if self._count == 0:
            return math.nan
        if threshold >= self._max:
            return 1.0
        if threshold < self._min:
            return 0.0
        boundary = self._bucket_index(threshold)
        good = 0
        for index, count in self._buckets.items():
            if index < boundary:
                good += count
            elif index == boundary and self._representative(index) <= threshold:
                good += count
        return good / self._count

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other``'s state into this histogram, exactly.

        count/sum/min/max add (resp. extremize) and per-bucket counts
        sum, so merging per-node histograms is indistinguishable from
        having observed every sample in one histogram — the algebra the
        fleet aggregator depends on.  Returns ``self`` for chaining.
        """
        if other._count == 0:
            return self
        self._count += other._count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        return self

    def merge_serialized(
        self, summary: Dict[str, float], buckets: Dict[str, int]
    ) -> "StreamingHistogram":
        """Fold one snapshot-serialized histogram (summary + buckets) in.

        The inverse of ``summary()``/``bucket_counts()`` for merge
        purposes; same exact algebra as :meth:`merge`.
        """
        count = int(summary.get("count", 0))
        if count <= 0:
            return self
        self._count += count
        self._sum += float(summary.get("sum", 0.0))
        other_min = float(summary.get("min", math.inf))
        other_max = float(summary.get("max", -math.inf))
        if other_min < self._min:
            self._min = other_min
        if other_max > self._max:
            self._max = other_max
        for index, bucket_count in (buckets or {}).items():
            index = int(index)
            self._buckets[index] = self._buckets.get(index, 0) + int(bucket_count)
        return self

    def bucket_counts(self) -> Dict[str, int]:
        """Per-bucket counts keyed by stringified index (JSON-safe)."""
        return {str(index): count for index, count in sorted(self._buckets.items())}

    def summary(self) -> Dict[str, float]:
        """count/sum/min/mean/max/p50/p95/p99 as one flat dict."""
        return {
            "count": float(self._count),
            "sum": self._sum,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    @staticmethod
    def _bucket_index(value: float) -> int:
        if value <= _BUCKET_BASE:
            return -1  # underflow bucket: (-inf, base]
        return int(math.floor(math.log(value / _BUCKET_BASE) / _LOG_GROWTH))

    def _representative(self, index: int) -> float:
        if index < 0:
            rep = _BUCKET_BASE
        else:
            lower = _BUCKET_BASE * _BUCKET_GROWTH ** index
            rep = lower * math.sqrt(_BUCKET_GROWTH)
        return min(max(rep, self._min), self._max)


class MetricSample:
    """One collected metric: name, labels, kind, and its value(s)."""

    __slots__ = ("name", "labels", "kind", "value", "summary")

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        kind: str,
        value: Optional[float],
        summary: Optional[Dict[str, float]] = None,
    ):
        self.name = name
        self.labels = labels
        self.kind = kind
        self.value = value
        self.summary = summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricSample({self.name!r}, {dict(self.labels)!r}, {self.kind})"


Metric = Union[Counter, Gauge, StreamingHistogram]


class MetricsRegistry:
    """All metrics of one run, addressable by dotted name + labels.

    ``counter()``/``gauge()``/``histogram()`` get-or-create the metric
    for a ``(name, labels)`` pair; ``inc()``/``set()``/``observe()`` are
    one-call conveniences over them.  A name is bound to a single metric
    kind — asking for the same name as a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}
        self._kinds: Dict[str, str] = {}

    # -- get-or-create ------------------------------------------------- #

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``(name, labels)``, creating it."""
        return self._get_or_create(name, Counter, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``(name, labels)``, creating it."""
        return self._get_or_create(name, Gauge, labels)

    def histogram(self, name: str, **labels: object) -> StreamingHistogram:
        """The histogram registered under ``(name, labels)``, creating it."""
        return self._get_or_create(name, StreamingHistogram, labels)

    # -- one-call conveniences ----------------------------------------- #

    def inc(self, name: str, amount: Union[int, float] = 1, **labels: object) -> None:
        """Increment the counter ``name`` (created on first use)."""
        self.counter(name, **labels).inc(amount)

    def set(self, name: str, value: Union[int, float], **labels: object) -> None:
        """Set the gauge ``name`` (created on first use)."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: Union[int, float], **labels: object) -> None:
        """Record one observation into the histogram ``name``."""
        self.histogram(name, **labels).observe(value)

    # -- reading ------------------------------------------------------- #

    def value(self, name: str, default: float = 0.0, **labels: object) -> float:
        """Counter/gauge value for ``(name, labels)``; ``default`` if absent."""
        metric = self._metrics.get((name, _labels_key(labels)))
        if metric is None:
            return default
        if isinstance(metric, StreamingHistogram):
            raise TypeError(f"{name!r} is a histogram; read .histogram(...) instead")
        return metric.value

    def total(self, name: str) -> float:
        """Counter/gauge values for ``name`` summed across all label sets."""
        total = 0.0
        for (metric_name, _), metric in self._metrics.items():
            if metric_name == name and not isinstance(metric, StreamingHistogram):
                total += metric.value
        return total

    def collect(self) -> List[MetricSample]:
        """Every metric as a :class:`MetricSample`, sorted by name+labels."""
        samples = []
        for (name, labels), metric in sorted(self._metrics.items()):
            if isinstance(metric, StreamingHistogram):
                samples.append(
                    MetricSample(name, labels, metric.kind, None, metric.summary())
                )
            else:
                samples.append(MetricSample(name, labels, metric.kind, metric.value))
        return samples

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """A JSON-serializable dump of every metric (for event logs)."""
        out: Dict[str, List[Dict[str, object]]] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            entry: Dict[str, object] = {
                "labels": dict(labels),
                "kind": metric.kind,
            }
            if isinstance(metric, StreamingHistogram):
                entry["summary"] = metric.summary()
                # bucket counts let offline consumers (the SLO engine)
                # recompute fraction_below from a serialized snapshot
                entry["buckets"] = metric.bucket_counts()
            else:
                entry["value"] = metric.value
            out.setdefault(name, []).append(entry)
        return out

    def reset(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()
        self._kinds.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[MetricSample]:
        return iter(self.collect())

    # ------------------------------------------------------------------ #

    def _get_or_create(self, name: str, cls, labels: Dict[str, object]):
        if _scope.active:
            # Node-scoped attribution: stamp the ambient node id as a
            # label so existing call sites report per-node without any
            # rewrite.  ``labels`` is the per-call ``**labels`` dict, so
            # mutating it in place is safe and allocation-free.
            node = _scope.attribution_node()
            if node is not None and _scope.NODE_LABEL not in labels:
                labels[_scope.NODE_LABEL] = node
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):  # pragma: no cover - defensive
                raise TypeError(
                    f"{name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric
        bound = self._kinds.get(name)
        if bound is not None and bound != cls.kind:
            raise TypeError(f"{name!r} is already registered as a {bound}")
        metric = cls()
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        return metric
