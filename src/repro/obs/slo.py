"""Declarative SLOs: objectives, error budgets, and burn rates.

An :class:`SloSpec` states an objective over signals the obs layer
already collects — no new instrumentation required:

* ``latency`` — "99% of ``serve.assess.seconds`` observations finish
  within 50 ms": good/total read from a
  :class:`~repro.obs.registry.StreamingHistogram` via ``fraction_below``;
* ``ratio`` — "degraded verdicts stay under 1% of assessments":
  bad/total read from two counter families (each summed across labels);
* ``freshness`` — "stale-fallback calibrations stay under 0.1% of
  calibrations": a ``ratio`` specialization named separately because the
  budget it protects (calibration staleness) is a correctness budget,
  not an availability one.

The **error budget** is the complement of the objective: a 99% latency
objective leaves a 1% budget of slow requests.  :class:`SloEngine`
evaluates specs against a live registry or a serialized snapshot and
reports, per SLO, the bad fraction, the budget consumed
(``bad / budget`` — >1 means blown), and **burn rates** over multiple
windows.  A burn rate of 1.0 spends exactly the budget over the window;
alerting on a *fast* burn over a *short* window and a *slow* burn over a
long one (the multi-window pattern) catches both sudden breakage and
slow rot.  Windows here are successive registry snapshots (cumulative
counts), so burn over a window is computed from snapshot deltas —
the same math as time-windowed burn with snapshots as the clock.

``evaluation_to_bench_rows`` renders an evaluation as standard
``BENCH_slo.json`` rows so the existing bench diff/trend gate (PR 2)
can gate on SLO health with zero new gating machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from .registry import MetricsRegistry, StreamingHistogram

__all__ = [
    "SloSpec",
    "SloResult",
    "SloEvaluation",
    "SloEngine",
    "default_serve_slos",
    "evaluate_events",
    "render_slo_report",
    "evaluation_to_bench_rows",
    "validate_slo_payload",
]

_KINDS = ("latency", "ratio", "freshness")

Snapshot = Mapping[str, List[Dict[str, object]]]


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over already-collected signals.

    ``objective`` is the good-fraction target in (0, 1); the error
    budget is ``1 - objective``.  Which other fields apply depends on
    ``kind``:

    * ``latency`` — ``metric`` names a histogram family;
      ``threshold_s`` is the latency bound defining "good".
    * ``ratio`` / ``freshness`` — ``bad_metric`` and ``total_metric``
      name counter families (summed across label sets).
    """

    name: str
    kind: str
    objective: float
    description: str = ""
    metric: Optional[str] = None
    threshold_s: Optional[float] = None
    bad_metric: Optional[str] = None
    total_metric: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; expected one of {_KINDS}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must lie in (0, 1), got {self.objective}")
        if self.kind == "latency":
            if not self.metric or self.threshold_s is None:
                raise ValueError(f"latency SLO {self.name!r} needs metric and threshold_s")
            if self.threshold_s <= 0:
                raise ValueError(f"threshold_s must be positive, got {self.threshold_s}")
        else:
            if not self.bad_metric or not self.total_metric:
                raise ValueError(
                    f"{self.kind} SLO {self.name!r} needs bad_metric and total_metric"
                )

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.objective


@dataclass
class SloResult:
    """One spec evaluated at one point: counts, budget, burn.

    ``bad_fraction``/``budget_consumed`` are ``nan`` when the SLO saw no
    traffic (``total == 0``) — no traffic is "no data", not "healthy".
    ``burn_rates`` maps window label → burn rate (bad_fraction within
    that window divided by the budget); present only when the engine
    was given history.
    """

    spec: SloSpec
    total: float
    bad: float
    burn_rates: Dict[str, float] = field(default_factory=dict)

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total > 0 else math.nan

    @property
    def budget_consumed(self) -> float:
        """bad_fraction / budget; >1.0 means the budget is blown."""
        fraction = self.bad_fraction
        return fraction / self.spec.budget if not math.isnan(fraction) else math.nan

    @property
    def burning(self) -> bool:
        """Is the budget blown overall, or burning >1× in any window?"""
        consumed = self.budget_consumed
        if not math.isnan(consumed) and consumed > 1.0:
            return True
        return any(rate > 1.0 for rate in self.burn_rates.values() if not math.isnan(rate))


@dataclass
class SloEvaluation:
    """All specs evaluated together; the unit the CLI/bench rows render."""

    results: List[SloResult]

    @property
    def burning(self) -> List[SloResult]:
        return [r for r in self.results if r.burning]

    @property
    def ok(self) -> bool:
        return not self.burning


def _sum_counter_family(snapshot: Snapshot, name: str) -> float:
    total = 0.0
    for entry in snapshot.get(name, []):
        value = entry.get("value")
        if isinstance(value, (int, float)):
            total += value
    return total


def _merge_histogram_family(
    snapshot: Snapshot, name: str
) -> Optional[StreamingHistogram]:
    """Rebuild one histogram from every label set's serialized buckets."""
    merged = StreamingHistogram()
    seen = False
    for entry in snapshot.get(name, []):
        if entry.get("kind") != "histogram":
            continue
        summary = entry.get("summary") or {}
        buckets = entry.get("buckets")
        if not isinstance(buckets, dict):
            continue
        seen = True
        merged.merge_serialized(summary, buckets)
    return merged if seen else None


class SloEngine:
    """Evaluates :class:`SloSpec` lists against registries/snapshots."""

    def __init__(self, specs: Sequence[SloSpec]):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.specs = list(specs)

    # -- single-point evaluation ---------------------------------------- #

    def evaluate(
        self,
        source: Union[MetricsRegistry, Snapshot],
        history: Optional[Sequence[Snapshot]] = None,
    ) -> SloEvaluation:
        """Evaluate every spec against ``source``.

        ``history`` — older cumulative snapshots, oldest first — adds
        multi-window burn rates: window ``w1`` is the delta from the
        most recent history point to ``source``, ``w2`` from the one
        before it, and so on (wider windows looking further back).

        This snapshot-delta form is the *fallback* path (callers that
        only hold serialized snapshots); when a
        :class:`~repro.obs.tsdb.TimeSeriesStore` of scraped history is
        available, :meth:`evaluate_windows` computes the same burn math
        over real wall-clock windows.
        """
        snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
        results = [self._evaluate_one(spec, snapshot) for spec in self.specs]
        if history:
            for result in results:
                result.burn_rates = self._burn_rates(result.spec, snapshot, history)
        return SloEvaluation(results)

    def evaluate_windows(
        self,
        store,
        windows_s: Sequence[float],
        *,
        now: Optional[float] = None,
    ) -> SloEvaluation:
        """Evaluate specs with burn rates over real wall-clock windows.

        ``store`` is a :class:`~repro.obs.tsdb.TimeSeriesStore` of
        scraped cumulative snapshots.  The point-in-time state is the
        store's reconstruction at ``now`` (default: its newest sample),
        and each window ``w`` in ``windows_s`` contributes a burn rate
        labelled ``"{w:g}s"`` computed between the reconstructed
        snapshots at ``now - w`` and ``now`` — **the same
        snapshot-delta math** as :meth:`evaluate`, with the store
        supplying the snapshots instead of the caller.  A window that
        predates all retained history sees an empty older snapshot
        (zero counters), which matches a counter's life-to-date delta.
        """
        if now is None:
            now = store.latest_time()
        if now is None:
            raise ValueError("the time-series store holds no samples")
        latest = store.snapshot_at(now)
        results = [self._evaluate_one(spec, latest) for spec in self.specs]
        for result in results:
            rates: Dict[str, float] = {}
            for window in windows_s:
                if window <= 0:
                    raise ValueError(f"window must be positive, got {window}")
                older = store.snapshot_at(now - window)
                rates[f"{window:g}s"] = self._window_burn(result.spec, older, latest)
            result.burn_rates = rates
        return SloEvaluation(results)

    def _evaluate_one(self, spec: SloSpec, snapshot: Snapshot) -> SloResult:
        if spec.kind == "latency":
            hist = _merge_histogram_family(snapshot, spec.metric)
            if hist is None or hist.count == 0:
                return SloResult(spec, total=0.0, bad=0.0)
            good = hist.fraction_below(spec.threshold_s)
            return SloResult(spec, total=float(hist.count), bad=(1.0 - good) * hist.count)
        bad = _sum_counter_family(snapshot, spec.bad_metric)
        total = _sum_counter_family(snapshot, spec.total_metric)
        return SloResult(spec, total=total, bad=bad)

    # -- burn over snapshot windows ------------------------------------- #

    def _burn_rates(
        self, spec: SloSpec, latest: Snapshot, history: Sequence[Snapshot]
    ) -> Dict[str, float]:
        rates: Dict[str, float] = {}
        # w1 = since the last snapshot, w2 = since the one before, …
        for width, older in enumerate(reversed(list(history)), start=1):
            rates[f"w{width}"] = self._window_burn(spec, older, latest)
        return rates

    def _window_burn(self, spec: SloSpec, older: Snapshot, latest: Snapshot) -> float:
        """Burn rate over the window between two cumulative snapshots."""
        now = self._evaluate_one(spec, latest)
        then = self._evaluate_one(spec, older)
        total = now.total - then.total
        bad = now.bad - then.bad
        if total <= 0:
            return math.nan
        # counters are cumulative; a reset between snapshots shows up as
        # a negative delta — clamp rather than report negative burn
        return max(bad, 0.0) / total / spec.budget


def default_serve_slos(
    latency_threshold_s: float = 0.050,
    latency_objective: float = 0.99,
    degraded_objective: float = 0.99,
    staleness_objective: float = 0.999,
) -> List[SloSpec]:
    """The serving stack's stock SLOs over existing metric families."""
    return [
        SloSpec(
            name="serve.latency.assess",
            kind="latency",
            objective=latency_objective,
            metric="serve.assess.seconds",
            threshold_s=latency_threshold_s,
            description=(
                f"{latency_objective:.0%} of single assessments within "
                f"{latency_threshold_s * 1e3:g} ms"
            ),
        ),
        SloSpec(
            name="serve.degraded_verdicts",
            kind="ratio",
            objective=degraded_objective,
            bad_metric="serve.resilience.degradations",
            total_metric="serve.requests",
            description=(
                f"degraded executions under {1 - degraded_objective:.1%} of requests"
            ),
        ),
        SloSpec(
            name="core.calibration.staleness",
            kind="freshness",
            objective=staleness_objective,
            bad_metric="core.calibration.degraded",
            total_metric="core.calibration.cache_misses",
            description=(
                f"stale-fallback calibrations under "
                f"{1 - staleness_objective:.2%} of calibrations"
            ),
        ),
    ]


def evaluate_events(path, specs: Optional[Sequence[SloSpec]] = None) -> SloEvaluation:
    """Evaluate SLOs over a JSONL event log's metric snapshots.

    Every event carrying a ``metrics`` registry snapshot (see
    :meth:`~repro.obs.events.EventLog.emit_metrics`) is one evaluation
    point; the last is the run's final state, the earlier ones become
    the burn-rate windows.
    """
    from .events import read_events

    snapshots = [
        event["metrics"]
        for event in read_events(path, allow_partial=True)
        if isinstance(event.get("metrics"), dict)
    ]
    if not snapshots:
        raise ValueError(f"no metric snapshots in {path}")
    engine = SloEngine(list(specs) if specs is not None else default_serve_slos())
    return engine.evaluate(snapshots[-1], history=snapshots[:-1])


def render_slo_report(evaluation: SloEvaluation) -> str:
    """The evaluation as the aligned text behind ``repro obs slo``."""
    lines = []
    width = max((len(r.spec.name) for r in evaluation.results), default=0)
    for result in evaluation.results:
        fraction = result.bad_fraction
        consumed = result.budget_consumed
        if math.isnan(fraction):
            body = "no traffic"
            status = "----"
        else:
            body = (
                f"bad {result.bad:g}/{result.total:g} ({fraction:.3%}) "
                f"budget {result.spec.budget:.3%} consumed {consumed:.0%}"
            )
            status = "BURN" if result.burning else "ok"
        burn_text = ""
        if result.burn_rates:
            rendered = " ".join(
                f"{window}={'-' if math.isnan(rate) else format(rate, '.2f')}"
                for window, rate in sorted(result.burn_rates.items())
            )
            burn_text = f"  burn[{rendered}]"
        lines.append(
            f"{result.spec.name:<{width}}  [{status:>4}]  {body}{burn_text}"
        )
    blown = evaluation.burning
    lines.append(
        "error budgets: "
        + (
            f"{len(blown)}/{len(evaluation.results)} burning "
            f"({', '.join(r.spec.name for r in blown)})"
            if blown
            else f"all {len(evaluation.results)} within budget"
        )
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# BENCH_slo.json bridge


def evaluation_to_bench_rows(evaluation: SloEvaluation) -> List[Dict[str, object]]:
    """Render an evaluation as BENCH-schema result rows.

    One row per SLO; ``mean_s``/``min_s`` carry the *budget consumed*
    (dimensionless, but the bench gate only needs "bigger is worse"),
    so the standard diff gate flags budget regressions between runs.
    SLOs with no traffic report 0.0 consumption (nothing to gate on)
    and say so in ``params.traffic``.
    """
    rows = []
    for result in evaluation.results:
        consumed = result.budget_consumed
        no_traffic = math.isnan(consumed)
        value = 0.0 if no_traffic else consumed
        row: Dict[str, object] = {
            "name": f"slo.{result.spec.name}",
            "params": {
                "kind": result.spec.kind,
                "objective": result.spec.objective,
                "traffic": "none" if no_traffic else "observed",
            },
            "stats": {"mean_s": value, "min_s": value, "repeats": 1},
            "slo": {
                "total": result.total,
                "bad": result.bad,
                "bad_fraction": None if no_traffic else result.bad_fraction,
                "budget": result.spec.budget,
                "budget_consumed": None if no_traffic else consumed,
                "burning": result.burning,
                "burn_rates": {
                    k: (None if math.isnan(v) else v)
                    for k, v in result.burn_rates.items()
                },
                "description": result.spec.description,
            },
        }
        rows.append(row)
    return rows


def validate_slo_payload(payload: Dict[str, object]) -> None:
    """Schema check for BENCH_slo.json beyond the base bench schema.

    Every row must carry the ``slo`` extension block with numeric
    total/bad/budget; raises ``ValueError`` with the offending path.
    """
    from .bench import validate_bench_payload

    validate_bench_payload(payload)
    if payload.get("bench") != "slo":
        raise ValueError(f"bench field must be 'slo', got {payload.get('bench')!r}")
    for i, row in enumerate(payload["results"]):
        slo = row.get("slo")
        if not isinstance(slo, dict):
            raise ValueError(f"results[{i}]: missing slo extension block")
        for key in ("total", "bad", "budget"):
            if not isinstance(slo.get(key), (int, float)):
                raise ValueError(f"results[{i}].slo.{key}: expected a number")
        if not isinstance(slo.get("burning"), bool):
            raise ValueError(f"results[{i}].slo.burning: expected a bool")
