"""Render observability artifacts (bench JSON, event logs) for humans.

Backs the ``repro obs report`` CLI: given a ``BENCH_*.json`` or a JSONL
event log it produces the aligned text a terminal wants, without the
producer process having to stay alive.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .audit import render_audit_summary, summarize_records, validate_audit_record
from .bench import read_bench_json
from .events import read_events
from .profile import validate_profile_payload

__all__ = ["render_bench", "render_event_log", "render_profile", "render_artifact"]

PathLike = Union[str, Path]


def render_bench(payload: Dict[str, object]) -> str:
    """A validated bench payload as an aligned text table."""
    results: List[Dict[str, object]] = payload["results"]  # type: ignore[assignment]
    param_keys: List[str] = []
    for row in results:
        for key in row["params"]:  # type: ignore[union-attr]
            if key not in param_keys:
                param_keys.append(key)
    header = ["name", *param_keys, "mean_s", "min_s", "repeats"]
    table: List[List[str]] = [header]
    for row in results:
        stats: Dict[str, object] = row["stats"]  # type: ignore[assignment]
        params: Dict[str, object] = row["params"]  # type: ignore[assignment]
        table.append(
            [
                str(row["name"]),
                *(str(params.get(k, "-")) for k in param_keys),
                f"{float(stats['mean_s']):.6g}",
                f"{float(stats['min_s']):.6g}",
                f"{int(stats['repeats'])}",
            ]
        )
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    lines = [f"bench: {payload['bench']}  (schema v{payload['schema_version']})"]
    meta = payload.get("meta") or {}
    if meta:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"meta: {rendered}")
    for j, line in enumerate(table):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_event_log(events: List[Dict[str, object]]) -> str:
    """Summarize a JSONL event log: run metadata, event counts, metrics."""
    lines: List[str] = [f"{len(events)} events"]
    for event in events:
        if event.get("event") == "run_start":
            interesting = {
                k: v
                for k, v in event.items()
                if k not in ("event", "time") and v is not None
            }
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
            lines.append(f"run_start: {rendered}")
            break
    counts: Dict[str, int] = {}
    for event in events:
        name = str(event.get("event"))
        counts[name] = counts.get(name, 0) + 1
    width = max(len(name) for name in counts) if counts else 0
    lines.append("event counts:")
    for name in sorted(counts):
        lines.append(f"  {name:<{width}}  {counts[name]}")
    # the last metrics snapshot, if any, is the run's final word
    for event in reversed(events):
        metrics = event.get("metrics")
        if isinstance(metrics, dict):
            lines.append("final metrics snapshot:")
            for name in sorted(metrics):
                for entry in metrics[name]:
                    labels = entry.get("labels") or {}
                    label_text = (
                        "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                        if labels
                        else ""
                    )
                    if entry.get("kind") == "histogram":
                        summary = entry.get("summary") or {}
                        value = (
                            f"count={summary.get('count')} mean={summary.get('mean')}"
                        )
                    else:
                        value = str(entry.get("value"))
                    lines.append(f"  {name}{label_text}  {value}")
            break
    audit_records = [e for e in events if e.get("event") == "audit"]
    if audit_records:
        valid = []
        for record in audit_records:
            try:
                validate_audit_record(record)
            except ValueError:
                continue
            valid.append(record)
        if valid:
            lines.append(render_audit_summary(summarize_records(valid)))
        if len(valid) != len(audit_records):
            lines.append(
                f"warning: {len(audit_records) - len(valid)} malformed audit "
                "record(s) skipped (run `repro obs validate` for details)"
            )
    return "\n".join(lines)


def render_profile(payload: Dict[str, object]) -> str:
    """A validated ``PROFILE_*.json`` payload as an aligned text table.

    Phases are listed by cumulative wall time (the artifact's order);
    the ``self`` column is where optimization effort should go, and the
    sampled folded stacks — when the profiler ran with sampling — are
    summarized by their hottest leaves.
    """
    validate_profile_payload(payload)
    phases: List[Dict[str, object]] = payload["phases"]  # type: ignore[assignment]
    lines = [
        f"profile: {payload['profile']}  (schema v{payload['schema_version']}, "
        f"sample_interval={payload.get('sample_interval', 0)}, "
        f"sample_hz={payload.get('sample_hz', 0)}, "
        f"track_memory={payload.get('track_memory', False)})"
    ]
    meta = payload.get("meta") or {}
    if meta:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"meta: {rendered}")
    if not phases:
        lines.append("(no phases recorded)")
        return "\n".join(lines)
    header = ["phase", "calls", "wall_s", "self_s", "mem_peak", "samples"]
    table = [header]
    for phase in phases:
        depth = str(phase["path"]).count(";")
        leaf = str(phase["path"]).rsplit(";", 1)[-1]
        mem = float(phase["mem_peak_bytes"])
        table.append(
            [
                "  " * depth + leaf,
                f"{int(phase['calls'])}",
                f"{float(phase['wall_s']):.6g}",
                f"{float(phase['self_s']):.6g}",
                f"{mem / 1024:.1f} KiB" if mem else "-",
                f"{int(phase['samples'])}",
            ]
        )
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    for j, line in enumerate(table):
        cells = [
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(line)
        ]
        lines.append("  ".join(cells).rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    folded: Dict[str, object] = payload.get("folded_samples") or {}  # type: ignore[assignment]
    if folded:
        top = sorted(folded.items(), key=lambda kv: (-int(kv[1]), kv[0]))[:10]
        lines.append("hottest sampled stacks:")
        for stack, count in top:
            lines.append(f"  {count:>6} {stack}")
    return "\n".join(lines)


def render_artifact(path: PathLike) -> str:
    """Render a bench/profile JSON or JSONL event log, inferring which.

    A directory is scanned for ``BENCH_*.json``, ``PROFILE_*.json`` and
    ``*.jsonl`` / ``*.ndjson`` artifacts; pointing at a directory
    holding none is a clear error rather than a traceback.
    """
    path = Path(path)
    if path.is_dir():
        artifacts = (
            sorted(path.glob("BENCH_*.json"))
            + sorted(path.glob("PROFILE_*.json"))
            + sorted(p for ext in ("*.jsonl", "*.ndjson") for p in path.glob(ext))
        )
        if not artifacts:
            raise ValueError(
                "no observability artifacts (BENCH_*.json, PROFILE_*.json "
                f"or *.jsonl) in {path}"
            )
        return "\n\n".join(render_artifact(p) for p in artifacts)
    if path.suffix.lower() in (".jsonl", ".ndjson"):
        return render_event_log(read_events(path))
    try:
        return render_bench(read_bench_json(path))
    except (ValueError, json.JSONDecodeError):
        pass
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        validate_profile_payload(payload)
    except (ValueError, json.JSONDecodeError):
        # neither bench nor profile; fall back to the event-log reader
        return render_event_log(read_events(path))
    return render_profile(payload)
