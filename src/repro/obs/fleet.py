"""Fleet view: cross-node aggregation, ring consistency, and artifacts.

The scope layer (:mod:`repro.obs.scope`) makes the *node* the unit of
observation; this module rolls nodes back up into a fleet:

* :func:`aggregate_snapshots` — merge per-node registry snapshots into
  one fleet snapshot: counters sum, histograms merge exactly (the
  :meth:`~repro.obs.registry.StreamingHistogram.merge` algebra), gauges
  keep their ``node`` label so last-written values are not averaged
  away.  The result is registry-snapshot shaped, so the SLO engine,
  exporters, and TSDB consume it unchanged.
* :func:`check_ring` / :func:`topology_snapshot` — structural health of
  a :class:`~repro.p2p.chord.ChordRing` (duck-typed; no import cycle):
  successor/predecessor agreement against the sorted-id ground truth,
  orphaned-key detection, replication deficits.
* :func:`default_fleet_slos` — fleet objectives over the aggregated
  snapshot, evaluated by the existing
  :class:`~repro.obs.slo.SloEngine`.
* :func:`node_bundle` — a node-scoped slice of a flight recorder's
  rings (events/spans filtered by node attribution) with the topology
  snapshot embedded, still a valid post-mortem bundle.
* ``FLEET_*.json`` artifact (write/read/validate) and the
  ``BENCH_fleet.json`` bridge (base bench schema + per-row ``fleet``
  extension block, mirroring the SLO artifact), plus
  :func:`render_fleet` — the text behind ``repro obs fleet``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .flightrec import validate_postmortem_bundle
from .registry import StreamingHistogram
from .scope import NODE_LABEL
from .slo import SloEngine, SloEvaluation, SloSpec

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "aggregate_snapshots",
    "gauge_table",
    "check_ring",
    "topology_snapshot",
    "default_fleet_slos",
    "evaluation_rows",
    "fleet_payload",
    "write_fleet_json",
    "read_fleet_json",
    "validate_fleet_payload",
    "fleet_to_bench_rows",
    "validate_fleet_bench_payload",
    "node_bundle",
    "render_fleet",
    "evaluate_fleet_slos",
]

FLEET_SCHEMA_VERSION = 1

Snapshot = Dict[str, List[Dict[str, Any]]]


def _labels_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# ---------------------------------------------------------------------- #
# cross-node aggregation


def aggregate_snapshots(per_node: Dict[str, Snapshot]) -> Snapshot:
    """Merge per-node snapshots (``node`` label stripped) into one.

    Counters with identical remaining labels sum; histograms merge with
    the exact :meth:`StreamingHistogram.merge` algebra (count/sum/min/
    max and per-bucket counts add); gauges are *not* merged — a gauge is
    a last-written value, so each keeps its ``node`` label and the
    fleet snapshot carries one entry per node (see :func:`gauge_table`).
    """
    counters: Dict[Tuple[str, Tuple], float] = {}
    histograms: Dict[Tuple[str, Tuple], StreamingHistogram] = {}
    label_sets: Dict[Tuple[str, Tuple], Dict[str, Any]] = {}
    gauges: Dict[str, List[Dict[str, Any]]] = {}
    for node in sorted(per_node):
        for name, entries in per_node[node].items():
            for entry in entries:
                labels = dict(entry.get("labels") or {})
                kind = entry.get("kind")
                if kind == "gauge":
                    labelled = dict(labels)
                    labelled[NODE_LABEL] = node
                    gauges.setdefault(name, []).append(
                        {
                            "labels": labelled,
                            "kind": "gauge",
                            "value": entry.get("value"),
                        }
                    )
                    continue
                key = (name, _labels_key(labels))
                label_sets.setdefault(key, labels)
                if kind == "histogram":
                    merged = histograms.setdefault(key, StreamingHistogram())
                    merged.merge_serialized(
                        entry.get("summary") or {}, entry.get("buckets") or {}
                    )
                else:
                    value = entry.get("value")
                    if isinstance(value, (int, float)):
                        counters[key] = counters.get(key, 0.0) + value
    out: Snapshot = {}
    for (name, _), value in counters.items():
        out.setdefault(name, []).append(
            {
                "labels": label_sets[(name, _)],
                "kind": "counter",
                "value": value,
            }
        )
    for (name, _), histogram in histograms.items():
        out.setdefault(name, []).append(
            {
                "labels": label_sets[(name, _)],
                "kind": "histogram",
                "summary": histogram.summary(),
                "buckets": histogram.bucket_counts(),
            }
        )
    for name, entries in gauges.items():
        out.setdefault(name, []).extend(entries)
    return out


def gauge_table(per_node: Dict[str, Snapshot]) -> Dict[str, Dict[str, float]]:
    """Per-node gauge values: ``rendered-gauge-name -> {node: value}``."""
    table: Dict[str, Dict[str, float]] = {}
    for node in sorted(per_node):
        for name, entries in per_node[node].items():
            for entry in entries:
                if entry.get("kind") != "gauge":
                    continue
                labels = dict(entry.get("labels") or {})
                rendered = name
                if labels:
                    rendered += (
                        "{"
                        + ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                        + "}"
                    )
                value = entry.get("value")
                if isinstance(value, (int, float)):
                    table.setdefault(rendered, {})[node] = float(value)
    return table


# ---------------------------------------------------------------------- #
# ring structure: topology snapshot + consistency checker


def topology_snapshot(ring) -> Dict[str, Any]:
    """A JSON-safe structural snapshot of a ChordRing (duck-typed)."""
    nodes = []
    for name in sorted(ring.nodes, key=lambda n: ring.nodes[n].node_id):
        node = ring.nodes[name]
        nodes.append(
            {
                "name": name,
                "id": node.node_id,
                "successor": node.successor,
                "successors": list(node.successors),
                "predecessor": node.predecessor,
                "n_keys": len(node.storage),
                "n_values": sum(len(v) for v in node.storage.values()),
            }
        )
    return {
        "m_bits": ring._m,
        "replicas": ring._replicas,
        "n_nodes": len(nodes),
        "nodes": nodes,
    }


def check_ring(ring) -> Dict[str, Any]:
    """Structural consistency of a ChordRing against central ground truth.

    Checks, with the sorted node ids as the reference ring:

    * **successor agreement** — each node's successor pointer names the
      next node clockwise;
    * **predecessor agreement** — each node's predecessor pointer names
      the previous node (``None`` is tolerated only on a 1-node ring);
    * **orphaned keys** — a key stored *somewhere* must also be stored
      at its responsible node, else lookups route to an empty owner;
    * **replication deficits** — each owned key should be held by
      ``min(replicas, n_nodes)`` nodes.

    ``ok`` is True only when every list is empty — the CI gate.
    """
    names = sorted(ring.nodes, key=lambda n: ring.nodes[n].node_id)
    n = len(names)
    successor_errors: List[Dict[str, Any]] = []
    predecessor_errors: List[Dict[str, Any]] = []
    orphaned_keys: List[Dict[str, Any]] = []
    under_replicated: List[Dict[str, Any]] = []
    ids = [ring.nodes[name].node_id for name in names]

    def owner_of(key: int) -> str:
        for node_id, name in zip(ids, names):
            if node_id >= key:
                return name
        return names[0]

    for i, name in enumerate(names):
        node = ring.nodes[name]
        expected_succ = names[(i + 1) % n]
        if node.successor != expected_succ:
            successor_errors.append(
                {"node": name, "expected": expected_succ, "actual": node.successor}
            )
        expected_pred = names[(i - 1) % n]
        if n == 1:
            continue  # a lone node's predecessor may legitimately be None
        if node.predecessor != expected_pred:
            predecessor_errors.append(
                {"node": name, "expected": expected_pred, "actual": node.predecessor}
            )

    # key placement: every key seen anywhere must live at its owner,
    # replicated min(replicas, n) ways (replica copies double as the
    # hand-over trail, so extra copies are fine — deficits are not)
    expected_copies = min(ring._replicas, n)
    holders: Dict[int, List[str]] = {}
    for name in names:
        for key in ring.nodes[name].storage:
            if ring.nodes[name].storage[key]:
                holders.setdefault(key, []).append(name)
    for key in sorted(holders):
        owner = owner_of(key)
        if owner not in holders[key]:
            orphaned_keys.append(
                {"key": key, "owner": owner, "holders": sorted(holders[key])}
            )
        elif len(holders[key]) < expected_copies:
            under_replicated.append(
                {
                    "key": key,
                    "copies": len(holders[key]),
                    "expected": expected_copies,
                }
            )

    return {
        "ok": not (
            successor_errors
            or predecessor_errors
            or orphaned_keys
            or under_replicated
        ),
        "n_nodes": n,
        "n_keys": len(holders),
        "successor_errors": successor_errors,
        "predecessor_errors": predecessor_errors,
        "orphaned_keys": orphaned_keys,
        "under_replicated": under_replicated,
    }


# ---------------------------------------------------------------------- #
# fleet SLOs


def default_fleet_slos(
    *,
    delivery_objective: float = 0.95,
    hops_objective: float = 0.95,
    hops_threshold: float = 16.0,
    retry_objective: float = 0.90,
) -> List[SloSpec]:
    """Fleet objectives over the *aggregated* snapshot.

    The hop-count SLO rides the latency kind — ``threshold_s`` is a hop
    budget rather than seconds, which the engine never interprets.
    """
    return [
        SloSpec(
            name="fleet.delivery",
            kind="ratio",
            objective=delivery_objective,
            bad_metric="p2p.network.drops",
            total_metric="p2p.network.messages",
            description=(
                f"message drops under {1 - delivery_objective:.0%} fleet-wide"
            ),
        ),
        SloSpec(
            name="fleet.lookup_hops",
            kind="latency",
            objective=hops_objective,
            metric="p2p.chord.lookup_hops",
            threshold_s=hops_threshold,
            description=(
                f"{hops_objective:.0%} of lookups within "
                f"{hops_threshold:g} hops"
            ),
        ),
        SloSpec(
            name="fleet.retries",
            kind="ratio",
            objective=retry_objective,
            bad_metric="p2p.network.retries",
            total_metric="p2p.network.messages",
            description=(
                f"retried sends under {1 - retry_objective:.0%} fleet-wide"
            ),
        ),
    ]


def evaluation_rows(evaluation: SloEvaluation) -> List[Dict[str, Any]]:
    """An evaluation as the JSON-safe rows the FLEET artifact embeds."""
    rows = []
    for result in evaluation.results:
        consumed = result.budget_consumed
        rows.append(
            {
                "name": result.spec.name,
                "kind": result.spec.kind,
                "total": result.total,
                "bad": result.bad,
                "budget": result.spec.budget,
                "budget_consumed": None if math.isnan(consumed) else consumed,
                "burning": result.burning,
                "description": result.spec.description,
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# the FLEET_*.json artifact


def fleet_payload(
    *,
    topology: Dict[str, Any],
    per_node: Dict[str, Snapshot],
    consistency: Dict[str, Any],
    aggregate: Optional[Snapshot] = None,
    slo: Optional[List[Dict[str, Any]]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble and validate one fleet artifact payload."""
    payload = {
        "fleet": FLEET_SCHEMA_VERSION,
        "meta": meta or {},
        "topology": topology,
        "nodes": per_node,
        "aggregate": aggregate if aggregate is not None else aggregate_snapshots(per_node),
        "consistency": consistency,
        "slo": slo,
    }
    validate_fleet_payload(payload)
    return payload


def validate_fleet_payload(payload: Any) -> None:
    """Schema check for FLEET_*.json; raises ValueError on drift."""
    if not isinstance(payload, dict):
        raise ValueError("fleet payload must be an object")
    if payload.get("fleet") != FLEET_SCHEMA_VERSION:
        raise ValueError(
            f"fleet schema version must be {FLEET_SCHEMA_VERSION}, "
            f"got {payload.get('fleet')!r}"
        )
    if not isinstance(payload.get("meta"), dict):
        raise ValueError("meta: expected an object")
    topology = payload.get("topology")
    if not isinstance(topology, dict) or not isinstance(topology.get("nodes"), list):
        raise ValueError("topology: expected an object with a nodes list")
    nodes = payload.get("nodes")
    if not isinstance(nodes, dict):
        raise ValueError("nodes: expected an object of per-node snapshots")
    for node, snapshot in nodes.items():
        if not isinstance(snapshot, dict):
            raise ValueError(f"nodes[{node!r}]: expected a snapshot object")
    if not isinstance(payload.get("aggregate"), dict):
        raise ValueError("aggregate: expected a snapshot object")
    consistency = payload.get("consistency")
    if not isinstance(consistency, dict) or not isinstance(
        consistency.get("ok"), bool
    ):
        raise ValueError("consistency: expected an object with an ok bool")
    slo = payload.get("slo")
    if slo is not None:
        if not isinstance(slo, list):
            raise ValueError("slo: expected a list or null")
        for i, row in enumerate(slo):
            if not isinstance(row, dict) or "name" not in row or "burning" not in row:
                raise ValueError(f"slo[{i}]: expected an object with name/burning")


def write_fleet_json(path, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and write a ``FLEET_*.json``; returns the payload."""
    validate_fleet_payload(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")
    return payload


def read_fleet_json(path) -> Dict[str, Any]:
    """Load and validate a fleet artifact."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_fleet_payload(payload)
    return payload


# ---------------------------------------------------------------------- #
# BENCH_fleet.json bridge (base bench schema + "fleet" extension block)


def _family_total(snapshot: Snapshot, name: str) -> float:
    total = 0.0
    for entry in snapshot.get(name, []):
        value = entry.get("value")
        if isinstance(value, (int, float)):
            total += value
    return total


def _family_histogram(snapshot: Snapshot, name: str) -> Optional[StreamingHistogram]:
    merged = StreamingHistogram()
    seen = False
    for entry in snapshot.get(name, []):
        if entry.get("kind") != "histogram":
            continue
        seen = True
        merged.merge_serialized(
            entry.get("summary") or {}, entry.get("buckets") or {}
        )
    return merged if seen else None


def fleet_to_bench_rows(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Render a fleet payload as BENCH-schema rows.

    One ``fleet.node`` row per node (``mean_s``/``min_s`` carry the
    node's message count — "bigger is load", which the standard diff
    gate can trend) plus one ``fleet.consistency`` row whose value is
    the total issue count, so a regression gate flags a ring that
    stopped converging.
    """
    rows: List[Dict[str, Any]] = []
    for node in sorted(payload["nodes"]):
        snapshot = payload["nodes"][node]
        messages = _family_total(snapshot, "p2p.network.messages")
        drops = _family_total(snapshot, "p2p.network.drops")
        retries = _family_total(snapshot, "p2p.network.retries")
        hops = _family_histogram(snapshot, "p2p.chord.lookup_hops")
        rows.append(
            {
                "name": "fleet.node",
                "params": {"node": node},
                "stats": {
                    "mean_s": messages,
                    "min_s": messages,
                    "repeats": 1,
                },
                "fleet": {
                    "messages": messages,
                    "drops": drops,
                    "retries": retries,
                    "lookups": 0.0 if hops is None else float(hops.count),
                    "hops_p95": None if hops is None else hops.p95,
                },
            }
        )
    consistency = payload["consistency"]
    issues = (
        len(consistency.get("successor_errors", []))
        + len(consistency.get("predecessor_errors", []))
        + len(consistency.get("orphaned_keys", []))
        + len(consistency.get("under_replicated", []))
    )
    rows.append(
        {
            "name": "fleet.consistency",
            "params": {"n_nodes": consistency.get("n_nodes", 0)},
            "stats": {"mean_s": float(issues), "min_s": float(issues), "repeats": 1},
            "fleet": {
                "ok": bool(consistency.get("ok")),
                "issues": issues,
                "successor_errors": len(consistency.get("successor_errors", [])),
                "predecessor_errors": len(
                    consistency.get("predecessor_errors", [])
                ),
                "orphaned_keys": len(consistency.get("orphaned_keys", [])),
                "under_replicated": len(consistency.get("under_replicated", [])),
            },
        }
    )
    return rows


def validate_fleet_bench_payload(payload: Dict[str, Any]) -> None:
    """Schema check for BENCH_fleet.json beyond the base bench schema."""
    from .bench import validate_bench_payload

    validate_bench_payload(payload)
    if payload.get("bench") != "fleet":
        raise ValueError(f"bench field must be 'fleet', got {payload.get('bench')!r}")
    for i, row in enumerate(payload["results"]):
        fleet = row.get("fleet")
        if not isinstance(fleet, dict):
            raise ValueError(f"results[{i}]: missing fleet extension block")
        if row["name"] == "fleet.consistency":
            if not isinstance(fleet.get("ok"), bool):
                raise ValueError(f"results[{i}].fleet.ok: expected a bool")
        else:
            for key in ("messages", "drops", "retries"):
                if not isinstance(fleet.get(key), (int, float)) or isinstance(
                    fleet.get(key), bool
                ):
                    raise ValueError(f"results[{i}].fleet.{key}: expected a number")


# ---------------------------------------------------------------------- #
# node-scoped flight-recorder bundles


def node_bundle(
    recorder,
    node: str,
    *,
    topology: Optional[Dict[str, Any]] = None,
    reason: str = "fleet_node",
) -> Dict[str, Any]:
    """A flight-recorder bundle narrowed to one node's activity.

    Events are kept when their ``node`` field (stamped by the resilience
    emit funnel under a node scope) matches; spans are kept when their
    labels carry the node or their trace_id appears in a kept event —
    so one lookup's trace links its per-link hops to the node's events.
    The topology snapshot rides in the bundle's info block, and the
    result still passes :func:`validate_postmortem_bundle`.
    """
    bundle = recorder.bundle(reason=reason, node=node)
    wanted = str(node)
    events = [
        event
        for event in bundle.get("events", [])
        if str(event.get("node")) == wanted
    ]
    trace_ids = {
        event.get("trace_id") for event in events if event.get("trace_id")
    }
    spans = []
    for span in bundle.get("spans", []):
        labels = span.get("labels") or {}
        if str(labels.get(NODE_LABEL)) == wanted:
            spans.append(span)
        elif span.get("trace_id") and span["trace_id"] in trace_ids:
            spans.append(span)
    bundle["events"] = events
    bundle["spans"] = spans
    if topology is not None:
        bundle.setdefault("info", {})["topology"] = topology
    bundle.setdefault("info", {})["node"] = wanted
    validate_postmortem_bundle(bundle)
    return bundle


# ---------------------------------------------------------------------- #
# rendering (the text behind ``repro obs fleet``)


def _node_spark(store, node: str, family: str, width: int = 16) -> str:
    """Sparkline of a node's summed ``family`` series from a TSDB store."""
    from .tsdb import render_sparkline

    by_time: Dict[float, float] = {}
    for key in store.series():
        if key.name != family or key.field:
            continue
        labels = dict(key.labels)
        if labels.get(NODE_LABEL) != node:
            continue
        for t, value in store.samples(key):
            if isinstance(value, (int, float)):
                by_time[t] = by_time.get(t, 0.0) + value
    if not by_time:
        return ""
    return render_sparkline([by_time[t] for t in sorted(by_time)], width=width)


def render_fleet(payload: Dict[str, Any], *, store=None, spark_width: int = 16) -> str:
    """Topology table, per-node metrics, consistency report, SLO lines."""
    topology = payload["topology"]
    consistency = payload["consistency"]
    lines = [
        f"fleet: {topology.get('n_nodes', 0)} nodes "
        f"(m_bits={topology.get('m_bits')}, replicas={topology.get('replicas')})"
    ]
    lines.append("topology:")
    lines.append(
        f"  {'node':<12} {'id':>8} {'successor':<12} "
        f"{'predecessor':<12} {'keys':>5} {'values':>7}"
    )
    for row in topology.get("nodes", []):
        lines.append(
            f"  {str(row.get('name')):<12} {row.get('id', 0):>8} "
            f"{str(row.get('successor')):<12} {str(row.get('predecessor')):<12} "
            f"{row.get('n_keys', 0):>5} {row.get('n_values', 0):>7}"
        )
    lines.append("per-node metrics:")
    lines.append(
        f"  {'node':<12} {'messages':>9} {'drops':>6} {'retries':>8} "
        f"{'lookups':>8} {'hops p95':>9}  activity"
    )
    for node in sorted(payload["nodes"]):
        snapshot = payload["nodes"][node]
        messages = _family_total(snapshot, "p2p.network.messages")
        drops = _family_total(snapshot, "p2p.network.drops")
        retries = _family_total(snapshot, "p2p.network.retries")
        hops = _family_histogram(snapshot, "p2p.chord.lookup_hops")
        lookups = 0 if hops is None else int(hops.count)
        hops_p95 = "-" if hops is None or not hops.count else f"{hops.p95:.1f}"
        spark = (
            _node_spark(store, node, "p2p.network.messages", width=spark_width)
            if store is not None
            else ""
        )
        lines.append(
            f"  {node:<12} {messages:>9.0f} {drops:>6.0f} {retries:>8.0f} "
            f"{lookups:>8} {hops_p95:>9}  {spark}"
        )
    aggregate = payload.get("aggregate") or {}
    total_messages = _family_total(aggregate, "p2p.network.messages")
    total_drops = _family_total(aggregate, "p2p.network.drops")
    hops = _family_histogram(aggregate, "p2p.chord.lookup_hops")
    lines.append(
        f"aggregate: messages={total_messages:.0f} drops={total_drops:.0f}"
        + (
            f" lookup hops p50/p95/p99 = "
            f"{hops.p50:.1f}/{hops.p95:.1f}/{hops.p99:.1f}"
            if hops is not None and hops.count
            else ""
        )
    )
    n_issues = (
        len(consistency.get("successor_errors", []))
        + len(consistency.get("predecessor_errors", []))
        + len(consistency.get("orphaned_keys", []))
        + len(consistency.get("under_replicated", []))
    )
    lines.append(
        "ring consistency: "
        + ("OK" if consistency.get("ok") else f"{n_issues} issue(s)")
    )
    for error in consistency.get("successor_errors", []):
        lines.append(
            f"  successor: {error['node']} expected {error['expected']} "
            f"got {error['actual']}"
        )
    for error in consistency.get("predecessor_errors", []):
        lines.append(
            f"  predecessor: {error['node']} expected {error['expected']} "
            f"got {error['actual']}"
        )
    for orphan in consistency.get("orphaned_keys", []):
        lines.append(
            f"  orphaned key {orphan['key']} (owner {orphan['owner']}, "
            f"held by {', '.join(orphan['holders'])})"
        )
    for deficit in consistency.get("under_replicated", []):
        lines.append(
            f"  under-replicated key {deficit['key']}: "
            f"{deficit['copies']}/{deficit['expected']} copies"
        )
    slo = payload.get("slo")
    if slo:
        lines.append("fleet SLOs:")
        for row in slo:
            status = "BURN" if row.get("burning") else "ok"
            consumed = row.get("budget_consumed")
            body = (
                "no traffic"
                if consumed is None
                else f"bad {row.get('bad', 0):g}/{row.get('total', 0):g} "
                f"consumed {consumed:.0%}"
            )
            lines.append(f"  {row['name']:<20} [{status:>4}] {body}")
    return "\n".join(lines)


def evaluate_fleet_slos(
    aggregate: Snapshot, specs: Optional[Sequence[SloSpec]] = None
) -> SloEvaluation:
    """Evaluate fleet SLOs over an aggregated snapshot."""
    engine = SloEngine(list(specs) if specs is not None else default_fleet_slos())
    return engine.evaluate(aggregate)
