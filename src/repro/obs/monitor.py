"""Live run monitoring: heartbeats, progress, RSS, and a text dashboard.

Long simulations (fig5–7 sweeps, p2p scale benches) are black boxes
until they finish; this module opens them up.  A :class:`ProgressMonitor`
wraps the run's :class:`~repro.obs.events.EventLog` and emits

* ``progress_start`` — the declared total and a first RSS reading;
* ``heartbeat`` — done/total, % complete, throughput (overall and since
  the previous heartbeat) for every tracked counter, ETA, and RSS;
* ``progress_end`` — final totals and wall time;

throttled by elapsed time and/or tick count so a tight loop costs one
comparison per tick.  Because heartbeats flow through the ordinary JSONL
event stream, a *separate process* can watch the run: ``repro obs top
run.jsonl`` tails the file and renders :func:`render_dashboard` in
place until the run ends.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from .events import EventLog
from .tsdb import render_sparkline

__all__ = [
    "rss_bytes",
    "ProgressMonitor",
    "read_events_lenient",
    "render_dashboard",
    "tail_dashboard",
]


def rss_bytes() -> Optional[int]:
    """The process's resident set size, or ``None`` when unavailable.

    Prefers ``/proc/self/status`` (current RSS, linux); falls back to
    ``resource.ru_maxrss`` (lifetime peak — close enough for a
    monotonically growing simulation).
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):
        return None
    # ru_maxrss is kilobytes on linux, bytes on macOS
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def read_events_lenient(path: Union[str, Path]):
    """Load an event JSONL file, skipping rows a strict read would reject.

    A live dashboard must not die because the producer wrote half a line,
    a log rotated mid-row, or an experiment crashed while flushing — so
    unparsable lines and non-event objects are *skipped and counted*
    (the same policy ``obs trend`` applies to result files) instead of
    raising.  Returns ``(events, skipped)``.
    """
    events: List[Dict[str, object]] = []
    skipped = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict) or "event" not in record:
                skipped += 1
                continue
            events.append(record)
    return events, skipped


class ProgressMonitor:
    """Emit throttled heartbeat/progress events into an event log.

    ``total`` is the number of ticks the run expects (``None`` when
    unknown — the dashboard then shows counts without a bar or ETA).
    ``interval_seconds`` / ``interval_ticks`` throttle heartbeats; either
    may be ``None`` to disable that trigger (tick-based throttling keeps
    test runs deterministic).  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        log: EventLog,
        *,
        total: Optional[int] = None,
        label: str = "ticks",
        interval_seconds: Optional[float] = 1.0,
        interval_ticks: Optional[int] = None,
        clock=time.perf_counter,
    ):
        if total is not None and total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        if interval_seconds is None and interval_ticks is None:
            raise ValueError("need interval_seconds and/or interval_ticks")
        if interval_seconds is not None and interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if interval_ticks is not None and interval_ticks < 1:
            raise ValueError("interval_ticks must be >= 1")
        self._log = log
        self._total = total
        self._label = label
        self._interval_s = interval_seconds
        self._interval_t = interval_ticks
        self._clock = clock
        self._started: Optional[float] = None
        self._done = 0
        self._counts: Dict[str, float] = {}
        self._last_time = 0.0
        self._last_done = 0
        self._last_counts: Dict[str, float] = {}
        self._heartbeats = 0
        self._finished = False

    @property
    def done(self) -> int:
        """Ticks recorded so far."""
        return self._done

    @property
    def heartbeats(self) -> int:
        """Heartbeat events emitted so far."""
        return self._heartbeats

    def start(self, **fields: object) -> Dict[str, object]:
        """Open the progress stream (called implicitly by first tick)."""
        self._started = self._clock()
        self._last_time = self._started
        return self._log.emit(
            "progress_start",
            total=self._total,
            label=self._label,
            rss_bytes=rss_bytes(),
            **fields,
        )

    def tick(self, n: int = 1, **counts: float) -> None:
        """Record ``n`` units of progress plus named counter increments."""
        if self._started is None:
            self.start()
        self._done += n
        for name, amount in counts.items():
            self._counts[name] = self._counts.get(name, 0) + amount
        if self._due():
            self.heartbeat()

    def _due(self) -> bool:
        if (
            self._interval_t is not None
            and self._done - self._last_done >= self._interval_t
        ):
            return True
        return (
            self._interval_s is not None
            and self._clock() - self._last_time >= self._interval_s
        )

    def heartbeat(self, **fields: object) -> Dict[str, object]:
        """Emit one heartbeat now, regardless of throttling."""
        if self._started is None:
            self.start()
        now = self._clock()
        elapsed = now - self._started
        window = now - self._last_time
        rates: Dict[str, Optional[float]] = {}
        recent: Dict[str, Optional[float]] = {}
        tracked = [(self._label, self._done, self._last_done)]
        tracked += [
            (name, count, self._last_counts.get(name, 0.0))
            for name, count in sorted(self._counts.items())
        ]
        for name, count, last in tracked:
            key = f"{name}_per_s"
            rates[key] = count / elapsed if elapsed > 0 else None
            recent[key] = (count - last) / window if window > 0 else None
        overall = rates.get(f"{self._label}_per_s")
        pct = None
        eta = None
        if self._total:
            pct = 100.0 * self._done / self._total
            if overall:
                eta = max(self._total - self._done, 0) / overall
        record = self._log.emit(
            "heartbeat",
            done=self._done,
            total=self._total,
            label=self._label,
            pct=pct,
            elapsed_s=elapsed,
            eta_s=eta,
            rss_bytes=rss_bytes(),
            rates=rates,
            recent=recent,
            counts=dict(self._counts),
            **fields,
        )
        self._heartbeats += 1
        self._last_time = now
        self._last_done = self._done
        self._last_counts = dict(self._counts)
        return record

    def finish(self, **fields: object) -> Dict[str, object]:
        """Emit a final heartbeat plus the closing ``progress_end``."""
        if self._started is None:
            self.start()
        self.heartbeat()
        self._finished = True
        return self._log.emit(
            "progress_end",
            done=self._done,
            total=self._total,
            label=self._label,
            elapsed_s=self._clock() - self._started,
            counts=dict(self._counts),
            rss_bytes=rss_bytes(),
            **fields,
        )

    def close(self, **fields: object) -> Optional[Dict[str, object]]:
        """Finish the stream unless already finished (then a no-op).

        The safe teardown call for ``finally`` blocks: ticks recorded
        since the last heartbeat still reach the log (via the final
        heartbeat :meth:`finish` emits), a monitor that never started
        emits nothing, and closing twice emits nothing twice.
        """
        if self._finished or self._started is None:
            return None
        return self.finish(**fields)

    def __enter__(self) -> "ProgressMonitor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------- #
# dashboard rendering


def _fmt_bytes(n: Optional[object]) -> str:
    if not isinstance(n, (int, float)):
        return "?"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024
    return "?"  # pragma: no cover - loop always returns


def _fmt_seconds(s: Optional[object]) -> str:
    if not isinstance(s, (int, float)):
        return "?"
    s = float(s)
    if s < 60:
        return f"{s:.1f}s"
    minutes, seconds = divmod(s, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{seconds:02.0f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"


def _fmt_rate(value: Optional[object]) -> str:
    if not isinstance(value, (int, float)):
        return "?"
    return f"{float(value):,.1f}"


def render_dashboard(
    events: List[Dict[str, object]],
    *,
    now: Optional[float] = None,
    width: int = 40,
    skipped: int = 0,
    history: bool = True,
) -> str:
    """A run's event stream as a compact text dashboard.

    Works on *partial* logs (a run still in flight): renders the latest
    heartbeat, the progress bar, throughput (with sparkline history over
    the recorded heartbeats when ``history`` is on), ETA, and RSS, plus
    how stale the last event is.  ``skipped`` (from
    :func:`read_events_lenient`) is surfaced as a notice, never an
    error.  ``now`` is injectable for tests.
    """
    now = time.time() if now is None else now
    events = [e for e in events if isinstance(e, dict)]
    run_start = next((e for e in events if e.get("event") == "run_start"), None)
    start = next((e for e in events if e.get("event") == "progress_start"), None)
    beats = [e for e in events if e.get("event") == "heartbeat"]
    end = next((e for e in events if e.get("event") == "progress_end"), None)

    lines: List[str] = []
    if skipped:
        lines.append(f"(skipped {skipped} malformed log line(s))")
    if run_start is not None:
        interesting = {
            k: run_start[k]
            for k in ("experiment", "tool", "seed", "git_rev", "config_hash")
            if run_start.get(k) is not None
        }
        rendered = "  ".join(f"{k}={v}" for k, v in interesting.items())
        lines.append(f"run: {rendered}" if rendered else "run: (no metadata)")
    if start is None and not beats:
        lines.append(f"(no progress events yet; {len(events)} event(s) in log)")
        return "\n".join(lines)

    last = beats[-1] if beats else None
    label = str((last or start or {}).get("label", "ticks"))
    done = (last or {}).get("done", 0)
    total = (last or start or {}).get("total")
    pct = (last or {}).get("pct")
    if isinstance(pct, (int, float)) and isinstance(total, (int, float)):
        filled = int(width * min(max(pct / 100.0, 0.0), 1.0))
        bar = "#" * filled + "-" * (width - filled)
        lines.append(f"[{bar}] {float(pct):5.1f}%  {done}/{int(total)} {label}")
    else:
        lines.append(f"progress: {done} {label} (total unknown)")

    if last is not None:
        rates = last.get("rates") or {}
        recent = last.get("recent") or {}
        if isinstance(rates, dict) and rates:
            parts = []
            for key in rates:
                part = f"{key} {_fmt_rate(rates[key])}"
                if isinstance(recent, dict) and recent.get(key) is not None:
                    part += f" (recent {_fmt_rate(recent[key])})"
                parts.append(part)
            lines.append("rates: " + "  ".join(parts))
        lines.append(
            f"elapsed: {_fmt_seconds(last.get('elapsed_s'))}"
            f"  eta: {_fmt_seconds(last.get('eta_s'))}"
            f"  rss: {_fmt_bytes(last.get('rss_bytes'))}"
        )

    if history and len(beats) >= 2:
        lines.extend(_render_history(beats))

    if end is not None:
        lines.append(
            f"status: finished ({end.get('done')} {label} in "
            f"{_fmt_seconds(end.get('elapsed_s'))})"
        )
    else:
        last_event = events[-1] if events else None
        age = None
        if last_event is not None and isinstance(last_event.get("time"), (int, float)):
            age = now - float(last_event["time"])
        lines.append(
            "status: running"
            + (f" (last event {_fmt_seconds(age)} ago)" if age is not None else "")
        )
    return "\n".join(lines)


def _render_history(beats: List[Dict[str, object]]) -> List[str]:
    """Sparkline columns over the heartbeat history (newest-right).

    One row per throughput key (the per-window ``recent`` rates, the
    honest shape of a run speeding up or stalling) plus an RSS row;
    malformed beats contribute nothing to a row rather than killing it.
    """
    rate_keys: List[str] = []
    for beat in beats:
        recent = beat.get("recent")
        if isinstance(recent, dict):
            for key in recent:
                if key not in rate_keys:
                    rate_keys.append(key)
    rows: List[Tuple[str, List[float]]] = []
    for key in rate_keys:
        values = []
        for beat in beats:
            recent = beat.get("recent")
            value = recent.get(key) if isinstance(recent, dict) else None
            if isinstance(value, (int, float)):
                values.append(float(value))
        if values:
            rows.append((key, values))
    rss = [
        float(beat["rss_bytes"])
        for beat in beats
        if isinstance(beat.get("rss_bytes"), (int, float))
    ]
    if rss:
        rows.append(("rss", rss))
    if not rows:
        return []
    label_width = max(len(label) for label, _ in rows)
    lines = [f"history ({len(beats)} heartbeats):"]
    for label, values in rows:
        spark = render_sparkline(values)
        lines.append(f"  {label:<{label_width}}  {spark}  {_fmt_rate(values[-1])}")
    return lines


def tail_dashboard(
    path: Union[str, Path],
    *,
    interval: float = 2.0,
    once: bool = False,
    max_updates: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Follow a live run's JSONL event file, re-rendering the dashboard.

    Re-reads ``path`` every ``interval`` seconds (skipping malformed
    lines rather than dying on them — a live producer is mid-write by
    definition) and redraws; returns once the run emits
    ``progress_end``/``run_end``, after ``max_updates`` redraws, or after
    a single render with ``once=True``.  Backs ``repro obs top``.
    """
    out = stream if stream is not None else sys.stdout
    updates = 0
    while True:
        try:
            events, skipped = read_events_lenient(path)
        except FileNotFoundError:
            events, skipped = [], 0
        text = render_dashboard(events, skipped=skipped)
        if not once and updates and out.isatty():  # pragma: no cover - tty only
            out.write("\x1b[2J\x1b[H")
        out.write(text + "\n")
        out.flush()
        updates += 1
        if once:
            return 0
        if any(e.get("event") in ("progress_end", "run_end") for e in events):
            return 0
        if max_updates is not None and updates >= max_updates:
            return 0
        time.sleep(interval)
