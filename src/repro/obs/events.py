"""Structured event log: JSONL sink with seeded-run metadata.

Experiments are only reproducible if the artifact records *how* it was
produced; every :class:`EventLog` therefore opens with a ``run_start``
event carrying the seed, a stable fingerprint of the configuration, the
git revision, and the python version.  Events are plain dicts written as
one JSON object per line, so downstream tooling (``repro obs report``,
pandas, jq) needs no custom parser, and :func:`read_events` closes the
round trip.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Union

from .registry import MetricsRegistry

__all__ = [
    "git_revision",
    "config_fingerprint",
    "run_metadata",
    "EventLog",
    "read_events",
]

PathLike = Union[str, Path]


@lru_cache(maxsize=1)
def git_revision() -> Optional[str]:
    """The repository's short HEAD revision, or ``None`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def config_fingerprint(config: object) -> Optional[str]:
    """A short stable hash of a configuration object.

    Accepts dataclasses, mappings, or anything JSON-serializable; two
    runs share a fingerprint exactly when their configs are equal.
    """
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = dataclasses.asdict(config)
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def run_metadata(
    *, seed: Optional[object] = None, config: Optional[object] = None, **extra: object
) -> Dict[str, object]:
    """The provenance header every artifact should carry."""
    meta: Dict[str, object] = {
        "seed": seed,
        "config_hash": config_fingerprint(config),
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "timestamp": time.time(),
    }
    meta.update(extra)
    return meta


class EventLog:
    """An append-only structured event stream.

    Events accumulate in memory and — when a ``path`` is given — are
    flushed line-by-line to a JSONL file as they are emitted, so a
    crashed run still leaves a usable log.  Constructing the log with
    ``run_meta`` (see :func:`run_metadata`) emits the opening
    ``run_start`` event.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        *,
        run_meta: Optional[Dict[str, object]] = None,
        forward_to_recorder: bool = False,
    ):
        self._path = Path(path) if path is not None else None
        self._handle = None
        self._events: List[Dict[str, object]] = []
        # Opt-in: mirror every event into the installed flight recorder.
        # Leave False for logs already covered by another funnel (the
        # resilience emit path and the anomaly detector feed the
        # recorder themselves) or the rings see every event twice.
        self._forward_to_recorder = forward_to_recorder
        if run_meta is not None:
            self.emit("run_start", **run_meta)

    @property
    def path(self) -> Optional[Path]:
        """The JSONL sink path (``None`` for memory-only logs)."""
        return self._path

    @property
    def events(self) -> List[Dict[str, object]]:
        """Every event emitted so far, in order."""
        return list(self._events)

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns the stored record."""
        record: Dict[str, object] = {"event": event, "time": time.time()}
        record.update(fields)
        self._events.append(record)
        if self._path is not None:
            if self._handle is None:
                self._handle = open(self._path, "a", encoding="utf-8")
            self._handle.write(json.dumps(record, default=repr) + "\n")
            self._handle.flush()
        if self._forward_to_recorder:
            from . import runtime as _rt

            if _rt.flight_recorder is not None:
                _rt.flight_recorder.record_event(dict(record))
        return record

    def emit_metrics(
        self, registry: MetricsRegistry, event: str = "metrics"
    ) -> Dict[str, object]:
        """Emit a full registry snapshot as one event."""
        return self.emit(event, metrics=registry.snapshot())

    def close(self) -> None:
        """Close the file sink (the in-memory events stay readable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        """Use the log as a context manager; closes the sink on exit."""
        return self

    def __exit__(self, *exc_info) -> bool:
        """Close the file sink when the ``with`` block ends."""
        self.close()
        return False


def read_events(
    path: PathLike, *, allow_partial: bool = False
) -> List[Dict[str, object]]:
    """Load a JSONL event log back into a list of dicts.

    ``allow_partial=True`` forgives an unparsable *final* line — the
    normal state of a log whose producer is mid-write — so live tailing
    (``repro obs top``) can re-read a file the run is still appending to.
    Corruption anywhere else still raises.
    """
    events = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if allow_partial and line_number == len(lines):
                break
            raise ValueError(f"line {line_number}: invalid JSON ({exc})") from None
        if not isinstance(record, dict) or "event" not in record:
            raise ValueError(f"line {line_number}: not an event object")
        events.append(record)
    return events
