"""Causal trace context: W3C-style identity that crosses boundaries.

PRs 1-3 gave the pipeline spans, but they were *process-local*: nothing
tied one ``assess_many`` request to the executor workers, retry
attempts, breaker flips, and network hops it fanned out into.  This
module closes that gap with a :class:`TraceContext` — ``trace_id`` /
``span_id`` / ``baggage`` in the W3C ``traceparent`` shape — propagated
three ways:

* **in-process** through a :mod:`contextvars` variable, so nested spans
  (and every :func:`repro.resilience.runtime.emit` event fired under
  them) inherit the request identity without plumbing arguments;
* **across threads** via :func:`explicit_span`, a stack-free span that
  re-attaches a serialized parent context inside a pool worker — the
  shared :class:`~repro.obs.tracing.Tracer` stack is single-threaded by
  design, so worker spans must not push onto it;
* **across processes and the (simulated) network** via
  :meth:`TraceContext.to_headers` / :meth:`TraceContext.from_headers`,
  an explicit serialize→deserialize round trip: process-pool initargs
  and :class:`~repro.p2p.network.SimulatedNetwork` message envelopes
  carry the headers dict, never a live object.

Finished spans that carry a context are additionally written to the
process-wide span sink (:data:`repro.obs.runtime.span_sink`, a
:class:`SpanLog` JSONL file), which is how one trace is reassembled
from many processes: every line is self-describing (trace/span/parent
hex ids plus a wall-clock anchor), so ``repro obs trace`` can rebuild
the tree no matter which process wrote which line.

All *duration* math stays on ``time.perf_counter()``; wall-clock time
appears only as the per-process anchor that positions a span on the
shared timeline (:func:`wall_clock_of`).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .tracing import SpanRecord

__all__ = [
    "TraceContext",
    "new_root",
    "child_of",
    "current",
    "use",
    "explicit_span",
    "innermost_explicit",
    "SpanLog",
    "span_to_dict",
    "read_span_jsonl",
    "tracing_session",
    "wall_clock_of",
]

PathLike = Union[str, Path]

#: ``traceparent`` per W3C Trace Context: version-traceid-spanid-flags.
_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

# Per-process anchor pairing the perf-counter and wall clocks once, so
# span *positions* are comparable across processes while every
# *duration* stays a pure perf-counter delta (clock-adjustment safe).
_ANCHOR_WALL = time.time()
_ANCHOR_PERF = time.perf_counter()


def wall_clock_of(perf_time: float) -> float:
    """Map a ``perf_counter`` reading onto the epoch via the anchor."""
    return _ANCHOR_WALL + (perf_time - _ANCHOR_PERF)


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """One request's causal identity at one point in the call tree.

    Immutable: stepping into a child operation derives a *new* context
    via :func:`child_of` (fresh ``span_id``, same ``trace_id``, parent
    link to the old ``span_id``).  ``baggage`` is a small string map
    that rides every hop unchanged (request labels, tenant, seed).
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None
    baggage: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id):
            raise ValueError(f"trace_id must be 32 lowercase hex chars, got {self.trace_id!r}")
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id):
            raise ValueError(f"span_id must be 16 lowercase hex chars, got {self.span_id!r}")

    # -- boundary serialization ----------------------------------------- #

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(
        cls, header: str, *, baggage: Optional[Dict[str, str]] = None
    ) -> "TraceContext":
        """Parse a ``traceparent`` header; raises ``ValueError`` on junk."""
        match = _TRACEPARENT.match(header.strip())
        if match is None:
            raise ValueError(f"malformed traceparent {header!r}")
        return cls(
            trace_id=match.group("trace_id"),
            span_id=match.group("span_id"),
            baggage=dict(baggage or {}),
        )

    def to_headers(self) -> Dict[str, str]:
        """The context as a plain string dict for envelopes/initargs.

        The shape mirrors the W3C header pair: ``traceparent`` plus a
        ``baggage`` member list (``key=value`` comma-joined).  Being a
        dict of two short strings, it pickles, JSON-serializes, and
        rides any message payload.
        """
        headers = {"traceparent": self.to_traceparent()}
        if self.baggage:
            headers["baggage"] = ",".join(
                f"{k}={v}" for k, v in sorted(self.baggage.items())
            )
        return headers

    @classmethod
    def from_headers(cls, headers: Dict[str, str]) -> "TraceContext":
        """Rebuild a context from :meth:`to_headers` output."""
        if "traceparent" not in headers:
            raise ValueError("headers carry no traceparent")
        baggage: Dict[str, str] = {}
        raw = headers.get("baggage", "")
        if raw:
            for member in raw.split(","):
                if "=" not in member:
                    raise ValueError(f"malformed baggage member {member!r}")
                key, value = member.split("=", 1)
                baggage[key.strip()] = value.strip()
        return cls.from_traceparent(headers["traceparent"], baggage=baggage)

    def with_baggage(self, **items: object) -> "TraceContext":
        """A copy with extra baggage entries (values stringified)."""
        merged = dict(self.baggage)
        merged.update({k: str(v) for k, v in items.items()})
        return replace(self, baggage=merged)


def new_root(**baggage: object) -> TraceContext:
    """A fresh trace: new trace_id, a root span id, no parent."""
    return TraceContext(
        trace_id=_new_trace_id(),
        span_id=_new_span_id(),
        baggage={k: str(v) for k, v in baggage.items()},
    )


def child_of(ctx: TraceContext) -> TraceContext:
    """A child context: same trace and baggage, new span under ``ctx``."""
    return TraceContext(
        trace_id=ctx.trace_id,
        span_id=_new_span_id(),
        parent_span_id=ctx.span_id,
        baggage=ctx.baggage,
    )


# ---------------------------------------------------------------------- #
# in-process propagation

_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current() -> Optional[TraceContext]:
    """The context attached to the running (thread's) logical flow."""
    return _CURRENT.get()


@contextmanager
def use(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Attach ``ctx`` for the duration of the ``with`` block."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


# ---------------------------------------------------------------------- #
# explicit (stack-free) spans for pool workers

# The Tracer's begin/finish stack assumes one thread; a pool worker
# opening spans on it would interleave with the parent request's stack.
# Explicit spans time themselves, keep a thread-local stack (so span
# events emitted inside the worker attach to the right span), and only
# touch shared state with single atomic appends on exit.
_EXPLICIT = threading.local()


def innermost_explicit() -> Optional["_ExplicitSpan"]:
    """The innermost open explicit span on *this* thread, if any."""
    stack = getattr(_EXPLICIT, "stack", None)
    return stack[-1] if stack else None


class _ExplicitSpan:
    """An open stack-free span; see :func:`explicit_span`."""

    __slots__ = ("name", "labels", "ctx", "events", "_start", "_token")

    def __init__(self, name: str, labels: Dict[str, str], ctx: TraceContext):
        self.name = name
        self.labels = labels
        self.ctx = ctx
        self.events: List[Dict[str, object]] = []
        self._start = 0.0
        self._token = None

    def add_event(self, name: str, **attrs: object) -> None:
        """Annotate the span with a timestamped event."""
        event: Dict[str, object] = {"name": name, "time": time.perf_counter()}
        event.update({k: str(v) for k, v in attrs.items()})
        self.events.append(event)

    def __enter__(self) -> "_ExplicitSpan":
        self._start = time.perf_counter()
        self._token = _CURRENT.set(self.ctx)
        stack = getattr(_EXPLICIT, "stack", None)
        if stack is None:
            stack = _EXPLICIT.stack = []
        stack.append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        end = time.perf_counter()
        _EXPLICIT.stack.pop()
        _CURRENT.reset(self._token)
        record = SpanRecord(
            span_id=-1,  # no local tree position; identity is the hex ids
            parent_id=None,
            name=self.name,
            labels=self.labels,
            start=self._start,
            duration=end - self._start,
            trace_id=self.ctx.trace_id,
            trace_span_id=self.ctx.span_id,
            trace_parent_id=self.ctx.parent_span_id,
            events=self.events,
        )
        from . import runtime as _rt  # local import: runtime imports us

        if _rt.enabled:
            _rt.tracer.record(record)
        if _rt.span_sink is not None:
            _rt.span_sink.write(record)
        if _rt.flight_recorder is not None:
            _rt.flight_recorder.record_span(span_to_dict(record))
        return False


def explicit_span(
    name: str, *, ctx: Optional[TraceContext] = None, **labels: object
) -> _ExplicitSpan:
    """A traced region that never touches the shared tracer stack.

    ``ctx`` is the *parent* context (default: the current one; a fresh
    root when neither exists); the span runs under a child of it, so the
    caller's serialized context threads straight into worker code:

        with explicit_span("serve.executor.shard", ctx=parent, shard=0):
            ...  # current() now answers the shard's child context
    """
    parent = ctx if ctx is not None else current()
    span_ctx = child_of(parent) if parent is not None else new_root()
    return _ExplicitSpan(name, {k: str(v) for k, v in labels.items()}, span_ctx)


# ---------------------------------------------------------------------- #
# the span JSONL sink and its round trip


def span_to_dict(record: SpanRecord) -> Dict[str, object]:
    """A finished span as the self-describing JSONL line shape.

    ``start_unix_s`` anchors the span on the shared wall-clock timeline
    (per-process anchor, see :func:`wall_clock_of`); ``duration_s`` and
    the event offsets stay pure perf-counter deltas.
    """
    events = [
        dict(event, offset_s=float(event["time"]) - record.start)
        for event in record.events
    ]
    for event in events:
        event.pop("time", None)
    return {
        "trace_id": record.trace_id,
        "span_id": record.trace_span_id,
        "parent_span_id": record.trace_parent_id,
        "name": record.name,
        "labels": dict(record.labels),
        "start_unix_s": wall_clock_of(record.start),
        "duration_s": record.duration,
        "events": events,
        "pid": os.getpid(),
    }


class SpanLog:
    """Append-only JSONL sink for finished spans.

    Every write is one ``write()+flush()`` of a single line, so several
    processes (pool workers included) can append to the same file; the
    reader reassembles traces by hex id, not arrival order.
    """

    def __init__(self, path: PathLike):
        self._path = Path(path)
        self._handle = None

    @property
    def path(self) -> Path:
        return self._path

    def write(self, record: SpanRecord) -> None:
        """Serialize and append one finished span."""
        if record.trace_id is None:
            return
        if self._handle is None:
            self._handle = open(self._path, "a", encoding="utf-8")
        self._handle.write(json.dumps(span_to_dict(record), default=repr) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file; further writes are errors."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SpanLog":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def read_span_jsonl(path: PathLike) -> List[Dict[str, object]]:
    """Load a span JSONL file back into dicts (blank lines skipped)."""
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {line_number}: invalid JSON ({exc})") from None
            if not isinstance(record, dict) or "trace_id" not in record:
                raise ValueError(f"line {line_number}: not a span object")
            spans.append(record)
    return spans


@contextmanager
def tracing_session(
    path: Optional[PathLike] = None,
) -> Iterator[Optional[SpanLog]]:
    """Install a span sink (and restore the previous one) for a block.

    Pair with ``obs.activate()`` for a fully scoped capture::

        with obs.activate(), obs.tracing_session("spans.jsonl"):
            service.assess_many()
    """
    from . import runtime as _rt

    sink = SpanLog(path) if path is not None else None
    saved = _rt.span_sink
    _rt.span_sink = sink
    try:
        yield sink
    finally:
        _rt.span_sink = saved
        if sink is not None:
            sink.close()
