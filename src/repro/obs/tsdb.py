"""Embedded bounded time-series store over the metrics registry.

PR 6's :class:`~repro.obs.slo.SloEngine` fakes time windows from
caller-supplied cumulative snapshots and ``repro obs top`` shows only
the latest heartbeat; nothing in the stack retains *windowed metric
history*.  This module closes that gap with three pieces, all stdlib:

* :class:`TimeSeriesStore` — per-series ring buffers keyed by metric
  family + label set.  Counters and gauges store scalar samples;
  histograms store both derived scalar series (``count``/``sum``/
  ``p50``/``p95``/``p99``/…) for cheap querying *and* a bounded ring of
  cumulative **digests** (summary + bucket counts), so the store can
  reconstruct a full registry snapshot at any retained instant
  (:meth:`TimeSeriesStore.snapshot_at`) — which is exactly what
  wall-clock SLO burn windows need.  Queries downsample on the fly
  (``step``/``agg``), and the whole store round-trips through JSONL
  (:meth:`TimeSeriesStore.dump` / :meth:`TimeSeriesStore.load`).
* :class:`MetricsScraper` — samples a
  :class:`~repro.obs.registry.MetricsRegistry` into the store on a
  wall-anchored cadence: scrape slots are multiples of ``interval_s``
  on the epoch grid, so two processes (or a restart) sampling the same
  cadence land in the same slots.  ``maybe_scrape()`` costs one clock
  read + compare when the slot hasn't rolled over, so serving hot paths
  can call it per request.
* :class:`AnomalyDetector` — a robust z-score detector (median/MAD over
  a trailing window, EWMA-smoothed) over the scraped series.  Counter
  series are differentiated into rates first (a monotone counter's raw
  values would always "anomalize"); detected anomalies become
  trace-stamped ``metric_anomaly`` structured events, the kind of
  bounded-window behavior monitoring PAPERS.md's manipulation-resistance
  line frames — applied to the serving stack's own vital signs.

The scraper's wall anchor is also what the Prometheus exporter can
stamp onto sample lines (``render_prometheus(..., timestamp_ms=...)``),
so externally scraped series align with TSDB samples.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .registry import MetricsRegistry

__all__ = [
    "TSDB_SCHEMA_VERSION",
    "SeriesKey",
    "Sample",
    "TimeSeriesStore",
    "MetricsScraper",
    "AnomalyDetector",
    "scraping_session",
    "render_series_table",
    "render_sparkline",
]

TSDB_SCHEMA_VERSION = 1

PathLike = Union[str, Path]
LabelSet = Tuple[Tuple[str, str], ...]
Sample = Tuple[float, float]

#: Histogram summary fields materialized as scalar series.
_HIST_FIELDS = ("count", "sum", "min", "mean", "max", "p50", "p95", "p99")

_AGGS = ("last", "mean", "min", "max", "sum")

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _labels_key(labels: Optional[Mapping[str, object]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class SeriesKey:
    """Identity of one series: metric family + labels + optional field.

    ``field`` is empty for counter/gauge value series and one of
    ``count``/``sum``/``min``/``mean``/``max``/``p50``/``p95``/``p99``
    for the scalar series derived from a histogram family.
    """

    __slots__ = ("name", "labels", "field")

    def __init__(self, name: str, labels: LabelSet = (), field: str = ""):
        self.name = name
        self.labels = labels
        self.field = field

    def _tuple(self) -> Tuple[str, LabelSet, str]:
        return (self.name, self.labels, self.field)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SeriesKey) and self._tuple() == other._tuple()

    def __hash__(self) -> int:
        return hash(self._tuple())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeriesKey({self.render()!r})"

    def render(self) -> str:
        """Human/CLI form: ``name{k=v,...}.field``."""
        text = self.name
        if self.labels:
            text += "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}"
        if self.field:
            text += f".{self.field}"
        return text


class _Series:
    """One bounded scalar series (ring buffer of ``(t, value)``)."""

    __slots__ = ("key", "kind", "samples")

    def __init__(self, key: SeriesKey, kind: str, maxlen: int):
        self.key = key
        self.kind = kind
        self.samples: deque = deque(maxlen=maxlen)


class _DigestSeries:
    """Cumulative histogram digests for snapshot reconstruction."""

    __slots__ = ("name", "labels", "samples")

    def __init__(self, name: str, labels: LabelSet, maxlen: int):
        self.name = name
        self.labels = labels
        self.samples: deque = deque(maxlen=maxlen)


class TimeSeriesStore:
    """Bounded in-memory metric history with query-time downsampling.

    ``max_samples`` bounds every ring (scalar and digest alike);
    ``max_series`` caps how many distinct series the store will track —
    past the cap, new series are silently dropped and counted in
    :attr:`dropped_series` (a bounded store must not grow without bound
    under a label-cardinality explosion).
    """

    def __init__(self, *, max_samples: int = 512, max_series: int = 4096):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        if max_series < 1:
            raise ValueError(f"max_series must be >= 1, got {max_series}")
        self.max_samples = max_samples
        self.max_series = max_series
        self._series: Dict[SeriesKey, _Series] = {}
        self._digests: Dict[Tuple[str, LabelSet], _DigestSeries] = {}
        self.dropped_series = 0
        self.n_scrapes = 0

    # -- writing -------------------------------------------------------- #

    def append(
        self,
        name: str,
        t: float,
        value: float,
        *,
        labels: Optional[Mapping[str, object]] = None,
        field: str = "",
        kind: str = "gauge",
    ) -> None:
        """Append one scalar sample (out-of-order timestamps rejected)."""
        key = SeriesKey(name, _labels_key(labels), field)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.dropped_series += 1
                return
            series = self._series[key] = _Series(key, kind, self.max_samples)
        if series.samples and t < series.samples[-1][0]:
            raise ValueError(
                f"sample for {key.render()} at t={t} precedes the newest "
                f"retained sample (t={series.samples[-1][0]})"
            )
        series.samples.append((float(t), float(value)))

    def record_snapshot(
        self, snapshot: Mapping[str, List[Dict[str, object]]], t: float
    ) -> List[Tuple[SeriesKey, float, float, str]]:
        """Ingest one :meth:`MetricsRegistry.snapshot` at time ``t``.

        Returns the scalar samples appended as
        ``(key, t, value, kind)`` — the scraper hands these straight to
        the anomaly detector.
        """
        appended: List[Tuple[SeriesKey, float, float, str]] = []
        for name, entries in snapshot.items():
            for entry in entries:
                labels = entry.get("labels") or {}
                kind = str(entry.get("kind", "gauge"))
                if kind == "histogram":
                    summary = entry.get("summary") or {}
                    for field in _HIST_FIELDS:
                        value = summary.get(field)
                        if not isinstance(value, (int, float)) or math.isnan(value):
                            continue
                        self.append(
                            name, t, value, labels=labels, field=field, kind=kind
                        )
                        appended.append(
                            (SeriesKey(name, _labels_key(labels), field), t, float(value), kind)
                        )
                    self._record_digest(name, _labels_key(labels), t, entry)
                else:
                    value = entry.get("value")
                    if not isinstance(value, (int, float)):
                        continue
                    self.append(name, t, value, labels=labels, kind=kind)
                    appended.append(
                        (SeriesKey(name, _labels_key(labels)), t, float(value), kind)
                    )
        self.n_scrapes += 1
        return appended

    def _record_digest(
        self, name: str, labels: LabelSet, t: float, entry: Dict[str, object]
    ) -> None:
        key = (name, labels)
        digest = self._digests.get(key)
        if digest is None:
            if len(self._digests) >= self.max_series:
                self.dropped_series += 1
                return
            digest = self._digests[key] = _DigestSeries(name, labels, self.max_samples)
        digest.samples.append(
            (
                float(t),
                {
                    "summary": dict(entry.get("summary") or {}),
                    "buckets": dict(entry.get("buckets") or {}),
                },
            )
        )

    # -- reading -------------------------------------------------------- #

    def series(self) -> List[SeriesKey]:
        """Every scalar series key, sorted by rendered name."""
        return sorted(self._series, key=lambda k: k.render())

    def kind_of(self, key: SeriesKey) -> Optional[str]:
        """The metric kind behind ``key`` (``None`` for unknown series)."""
        series = self._series.get(key)
        return series.kind if series is not None else None

    def samples(self, key: SeriesKey) -> List[Sample]:
        """The retained raw samples of one series, oldest first."""
        series = self._series.get(key)
        return list(series.samples) if series is not None else []

    def latest_time(self) -> Optional[float]:
        """The newest sample timestamp across all series (``None`` empty)."""
        newest = None
        for series in self._series.values():
            if series.samples:
                t = series.samples[-1][0]
                newest = t if newest is None else max(newest, t)
        for digest in self._digests.values():
            if digest.samples:
                t = digest.samples[-1][0]
                newest = t if newest is None else max(newest, t)
        return newest

    def query(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, object]] = None,
        field: str = "",
        start: Optional[float] = None,
        end: Optional[float] = None,
        step: Optional[float] = None,
        agg: str = "last",
    ) -> List[Sample]:
        """Samples of one series in ``[start, end]``, optionally downsampled.

        With ``step``, samples are bucketed onto the epoch-aligned grid
        ``floor(t / step) * step`` and each bucket is reduced with
        ``agg`` (``last``/``mean``/``min``/``max``/``sum``); the
        returned timestamps are the bucket starts.
        """
        if agg not in _AGGS:
            raise ValueError(f"agg must be one of {_AGGS}, got {agg!r}")
        if step is not None and step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        key = SeriesKey(name, _labels_key(labels), field)
        series = self._series.get(key)
        if series is None:
            return []
        out = [
            (t, v)
            for t, v in series.samples
            if (start is None or t >= start) and (end is None or t <= end)
        ]
        if step is None or not out:
            return out
        buckets: Dict[float, List[float]] = {}
        for t, v in out:
            buckets.setdefault(math.floor(t / step) * step, []).append(v)
        reduced: List[Sample] = []
        for bucket_t in sorted(buckets):
            values = buckets[bucket_t]
            if agg == "last":
                value = values[-1]
            elif agg == "mean":
                value = sum(values) / len(values)
            elif agg == "min":
                value = min(values)
            elif agg == "max":
                value = max(values)
            else:  # sum
                value = sum(values)
            reduced.append((bucket_t, value))
        return reduced

    def snapshot_at(
        self, t: Optional[float] = None
    ) -> Dict[str, List[Dict[str, object]]]:
        """Reconstruct a registry-snapshot-shaped mapping as of time ``t``.

        For every series the newest retained sample with timestamp
        ``<= t`` contributes; series with nothing that old are absent —
        callers (the SLO engine) treat absence as zero, matching how
        cumulative counters start.  ``t=None`` means "now" (the newest
        retained state).  Output shape matches
        :meth:`~repro.obs.registry.MetricsRegistry.snapshot`, so
        everything written against snapshots (the SLO engine, the
        Prometheus/text renderers' inputs) consumes it unchanged.
        """
        out: Dict[str, List[Dict[str, object]]] = {}
        for key, series in self._series.items():
            if key.field:
                continue  # histogram scalars rebuild from digests instead
            sample = _last_at_or_before(series.samples, t)
            if sample is None:
                continue
            out.setdefault(key.name, []).append(
                {
                    "labels": dict(key.labels),
                    "kind": series.kind,
                    "value": sample[1],
                }
            )
        for (name, labels), digest in self._digests.items():
            sample = _last_at_or_before(digest.samples, t)
            if sample is None:
                continue
            payload = sample[1]
            out.setdefault(name, []).append(
                {
                    "labels": dict(labels),
                    "kind": "histogram",
                    "summary": dict(payload.get("summary") or {}),
                    "buckets": dict(payload.get("buckets") or {}),
                }
            )
        return out

    def tails(self, n: int = 32) -> Dict[str, List[Sample]]:
        """The last ``n`` samples of every scalar series, by rendered key."""
        return {
            key.render(): list(series.samples)[-n:]
            for key, series in sorted(
                self._series.items(), key=lambda item: item[0].render()
            )
        }

    # -- persistence ---------------------------------------------------- #

    def dump(self, path: PathLike) -> None:
        """Write the store as JSONL: a header line, then one line per series."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "tsdb": TSDB_SCHEMA_VERSION,
                        "max_samples": self.max_samples,
                        "max_series": self.max_series,
                        "n_scrapes": self.n_scrapes,
                        "dropped_series": self.dropped_series,
                    }
                )
                + "\n"
            )
            for key, series in sorted(
                self._series.items(), key=lambda item: item[0].render()
            ):
                handle.write(
                    json.dumps(
                        {
                            "series": key.name,
                            "labels": dict(key.labels),
                            "field": key.field,
                            "kind": series.kind,
                            "samples": [[t, v] for t, v in series.samples],
                        }
                    )
                    + "\n"
                )
            for (name, labels), digest in sorted(self._digests.items()):
                handle.write(
                    json.dumps(
                        {
                            "digest": name,
                            "labels": dict(labels),
                            "samples": [[t, payload] for t, payload in digest.samples],
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: PathLike) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`dump` output (strict on schema)."""
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
        if not lines:
            raise ValueError(f"{path}: empty TSDB file")
        header = _parse_json_line(path, 1, lines[0])
        if header.get("tsdb") != TSDB_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: not a TSDB v{TSDB_SCHEMA_VERSION} file "
                f"(header {header.get('tsdb')!r})"
            )
        store = cls(
            max_samples=int(header.get("max_samples", 512)),
            max_series=int(header.get("max_series", 4096)),
        )
        store.n_scrapes = int(header.get("n_scrapes", 0))
        store.dropped_series = int(header.get("dropped_series", 0))
        for line_number, line in enumerate(lines[1:], start=2):
            record = _parse_json_line(path, line_number, line)
            if "series" in record:
                key = SeriesKey(
                    str(record["series"]),
                    _labels_key(record.get("labels") or {}),
                    str(record.get("field", "")),
                )
                series = store._series[key] = _Series(
                    key, str(record.get("kind", "gauge")), store.max_samples
                )
                for t, v in record.get("samples", []):
                    series.samples.append((float(t), float(v)))
            elif "digest" in record:
                labels = _labels_key(record.get("labels") or {})
                digest = store._digests[(str(record["digest"]), labels)] = (
                    _DigestSeries(str(record["digest"]), labels, store.max_samples)
                )
                for t, payload in record.get("samples", []):
                    digest.samples.append((float(t), dict(payload)))
            else:
                raise ValueError(
                    f"{path}: line {line_number} is neither a series nor a digest"
                )
        return store


def _parse_json_line(path: PathLike, line_number: int, line: str) -> Dict[str, object]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: line {line_number}: invalid JSON ({exc})") from None
    if not isinstance(record, dict):
        raise ValueError(f"{path}: line {line_number}: expected an object")
    return record


def _last_at_or_before(samples: Sequence, t: Optional[float]):
    if not samples:
        return None
    if t is None:
        return samples[-1]
    found = None
    for sample in samples:
        if sample[0] <= t:
            found = sample
        else:
            break
    return found


# ---------------------------------------------------------------------- #
# the scraper


class MetricsScraper:
    """Samples a registry into a store on a wall-anchored cadence.

    Scrape slots are multiples of ``interval_s`` on the epoch grid
    (``floor(now / interval_s)``): the first call in a new slot scrapes,
    every other call costs a clock read and a compare — cheap enough
    for the serving hot path to call :meth:`maybe_scrape` per request.
    ``clock`` is injectable for tests (wall time, seconds).

    Optional attachments:

    * ``detector`` — every appended scalar sample is fed to an
      :class:`AnomalyDetector` (counters pre-differentiated to rates);
    * ``slo_engine`` + ``slo_windows_s`` — after each scrape the SLOs
      are evaluated over real wall-clock windows
      (:meth:`~repro.obs.slo.SloEngine.evaluate_windows`); the latest
      evaluation is kept on :attr:`last_slo_evaluation`, and a burning
      budget notifies the installed flight recorder (if any).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        store: Optional[TimeSeriesStore] = None,
        *,
        interval_s: float = 5.0,
        clock: Callable[[], float] = time.time,
        detector: Optional["AnomalyDetector"] = None,
        slo_engine=None,
        slo_windows_s: Sequence[float] = (60.0, 300.0),
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.registry = registry
        self.store = store if store is not None else TimeSeriesStore()
        self.interval_s = interval_s
        self._clock = clock
        self.detector = detector
        self.slo_engine = slo_engine
        self.slo_windows_s = tuple(slo_windows_s)
        self.last_slo_evaluation = None
        self._last_slot: Optional[int] = None
        #: Wall-clock time of the most recent scrape (the exporter's
        #: timestamp anchor); ``None`` before the first scrape.
        self.last_scrape_wall: Optional[float] = None
        # previous counter values for rate differentiation
        self._prev: Dict[SeriesKey, Sample] = {}

    def maybe_scrape(self, now: Optional[float] = None) -> bool:
        """Scrape iff the wall-anchored slot rolled over; True if scraped."""
        now = self._clock() if now is None else now
        slot = int(math.floor(now / self.interval_s))
        if slot == self._last_slot:
            return False
        self.scrape(now)
        return True

    def scrape(self, now: Optional[float] = None) -> int:
        """Scrape unconditionally; returns the number of samples appended."""
        now = self._clock() if now is None else now
        self._last_slot = int(math.floor(now / self.interval_s))
        appended = self.store.record_snapshot(self.registry.snapshot(), now)
        self.last_scrape_wall = now
        if self.detector is not None:
            for key, t, value, kind in appended:
                if kind == "counter" or (kind == "histogram" and key.field in ("count", "sum")):
                    prev = self._prev.get(key)
                    self._prev[key] = (t, value)
                    if prev is None or t <= prev[0]:
                        continue
                    # cumulative series: detect on the rate, clamping
                    # counter resets to zero rather than a huge negative
                    rate = max(value - prev[1], 0.0) / (t - prev[0])
                    self.detector.observe(key, t, rate, stat="rate")
                else:
                    self.detector.observe(key, t, value)
        if self.slo_engine is not None:
            self._evaluate_slos(now)
        return len(appended)

    def _evaluate_slos(self, now: float) -> None:
        evaluation = self.slo_engine.evaluate_windows(
            self.store, self.slo_windows_s, now=now
        )
        self.last_slo_evaluation = evaluation
        if evaluation.burning:
            from . import runtime as _rt

            recorder = _rt.flight_recorder
            if recorder is not None:
                recorder.on_slo_burn(evaluation, now=now)


@contextmanager
def scraping_session(scraper: Optional[MetricsScraper]):
    """Install ``scraper`` as the process-global scraper for a block.

    Hot paths that call ``runtime.scraper.maybe_scrape()`` (the serving
    loop) drive it while the block is open; the previous scraper is
    restored on exit.  ``None`` passes through unchanged, so callers can
    build the context unconditionally.
    """
    from . import runtime as _rt

    saved = _rt.scraper
    if scraper is not None:
        _rt.scraper = scraper
    try:
        yield scraper
    finally:
        _rt.scraper = saved


# ---------------------------------------------------------------------- #
# anomaly detection


class AnomalyDetector:
    """Robust z-score anomaly detection over scraped series.

    Per series, a trailing window of recent values yields a median and
    MAD (median absolute deviation); the robust z-score of a new value
    is ``0.6745 * (x - median) / MAD`` (the 0.6745 scales MAD to the
    standard deviation of a normal).  An EWMA over successive z-scores
    (``ewma_alpha``) suppresses one-sample blips when smoothing is
    wanted; with ``ewma_alpha=1`` the raw score is used.  A series must
    accumulate ``min_samples`` values before it can alarm, and each
    series re-alarms at most once per ``cooldown_samples`` values.

    Anomalies are returned from :meth:`observe`, appended to
    :attr:`anomalies` (bounded), counted into the obs registry
    (``obs.anomaly.events``), emitted as structured ``metric_anomaly``
    events into ``event_log`` when one is attached — stamped with the
    calling flow's trace id, like resilience events — and fed to the
    installed flight recorder's event ring.
    """

    def __init__(
        self,
        *,
        window: int = 32,
        threshold: float = 4.0,
        min_samples: int = 8,
        ewma_alpha: float = 0.4,
        cooldown_samples: int = 4,
        event_log=None,
        max_anomalies: int = 256,
    ):
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if not 4 <= min_samples:
            raise ValueError(f"min_samples must be >= 4, got {min_samples}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must lie in (0, 1], got {ewma_alpha}")
        if cooldown_samples < 1:
            raise ValueError(f"cooldown_samples must be >= 1, got {cooldown_samples}")
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self.ewma_alpha = ewma_alpha
        self.cooldown_samples = cooldown_samples
        self.event_log = event_log
        self._history: Dict[SeriesKey, deque] = {}
        self._ewma: Dict[SeriesKey, float] = {}
        self._cooldown: Dict[SeriesKey, int] = {}
        self.anomalies: deque = deque(maxlen=max_anomalies)
        self.n_observed = 0
        self.n_anomalies = 0

    def observe(
        self, key: SeriesKey, t: float, value: float, *, stat: str = "value"
    ) -> Optional[Dict[str, object]]:
        """Feed one sample; returns the anomaly record when one fires."""
        self.n_observed += 1
        history = self._history.get(key)
        if history is None:
            history = self._history[key] = deque(maxlen=self.window)
        cooldown = self._cooldown.get(key, 0)
        if cooldown > 0:
            self._cooldown[key] = cooldown - 1
        anomaly = None
        if len(history) >= self.min_samples:
            zscore = self._zscore(key, history, value)
            if abs(zscore) >= self.threshold and self._cooldown.get(key, 0) == 0:
                anomaly = self._fire(key, t, value, zscore, stat)
        # the anomalous value still enters the window: a genuine level
        # shift stops alarming once the window re-centers on it
        history.append(value)
        return anomaly

    def _zscore(self, key: SeriesKey, history: deque, value: float) -> float:
        values = sorted(history)
        median = _median(values)
        mad = _median(sorted(abs(v - median) for v in values))
        if mad <= 0:
            # a flat window: any deviation is infinitely surprising, but
            # use a floor so tiny float jitter doesn't alarm
            spread = max(abs(median) * 1e-9, 1e-12)
            raw = 0.0 if abs(value - median) <= spread else math.copysign(
                self.threshold * 2, value - median
            )
        else:
            raw = 0.6745 * (value - median) / mad
        if self.ewma_alpha >= 1.0:
            return raw
        smoothed = self._ewma.get(key)
        smoothed = (
            raw
            if smoothed is None
            else self.ewma_alpha * raw + (1.0 - self.ewma_alpha) * smoothed
        )
        self._ewma[key] = smoothed
        return smoothed

    def _fire(
        self, key: SeriesKey, t: float, value: float, zscore: float, stat: str
    ) -> Dict[str, object]:
        self.n_anomalies += 1
        self._cooldown[key] = self.cooldown_samples
        record: Dict[str, object] = {
            "event": "metric_anomaly",
            "series": key.render(),
            "stat": stat,
            "time": t,
            "value": value,
            "zscore": round(zscore, 3),
            "threshold": self.threshold,
        }
        from . import context as _ctx
        from . import runtime as _rt

        ctx = _ctx.current()
        if ctx is not None:
            record["trace_id"] = ctx.trace_id
        self.anomalies.append(record)
        if _rt.enabled:
            _rt.registry.inc("obs.anomaly.events", series=key.render())
            _rt.span_event("metric_anomaly", series=key.render(), zscore=record["zscore"])
        if self.event_log is not None:
            fields = {k: v for k, v in record.items() if k != "event"}
            self.event_log.emit("metric_anomaly", **fields)
        recorder = _rt.flight_recorder
        if recorder is not None:
            recorder.record_event(dict(record))
        return record


def _median(ordered: Sequence[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ---------------------------------------------------------------------- #
# rendering helpers (the CLI and the dashboard share these)


def render_sparkline(values: Sequence[float], width: int = 24) -> str:
    """A unicode sparkline of ``values`` (newest-last), width-bounded."""
    values = [v for v in values if isinstance(v, (int, float)) and not math.isnan(v)]
    if not values:
        return ""
    values = values[-width:]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int((v - lo) * scale)] for v in values)


def render_series_table(store: TimeSeriesStore, *, tail: int = 24) -> str:
    """The store's series as an aligned listing with sparkline tails."""
    keys = store.series()
    if not keys:
        return "(no series recorded)"
    rows = []
    for key in keys:
        samples = store.samples(key)
        values = [v for _, v in samples]
        rows.append(
            (
                key.render(),
                str(store.kind_of(key)),
                f"{len(samples)}",
                f"{values[-1]:.6g}" if values else "-",
                render_sparkline(values, width=tail),
            )
        )
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    lines = [
        f"{'series':<{name_w}}  {'kind':<{kind_w}}  {'n':>4}  {'last':>12}  tail"
    ]
    for name, kind, n, last, spark in rows:
        lines.append(f"{name:<{name_w}}  {kind:<{kind_w}}  {n:>4}  {last:>12}  {spark}")
    span = None
    times = [s[0] for key in keys for s in store.samples(key)]
    if times:
        span = max(times) - min(times)
    lines.append(
        f"{len(keys)} series, {store.n_scrapes} scrape(s)"
        + (f", {span:.1f}s retained" if span is not None else "")
        + (f", {store.dropped_series} series dropped" if store.dropped_series else "")
    )
    return "\n".join(lines)
