"""Exporters: registries as text/Prometheus, spans as OTLP JSON / trees.

The text form is what ``repro obs report`` prints and humans read; the
Prometheus form follows the text exposition conventions (sanitized
``snake_case`` names with a ``repro_`` prefix, ``_total`` on counters,
``_count``/``_sum`` plus ``quantile``-labelled samples for histograms,
``# HELP``/``# TYPE`` emitted once per metric family, label values
escaped per the spec) so a scrape-style pipeline can ingest run output
unchanged.

Span exports work off the JSONL span-sink lines
(:func:`repro.obs.context.read_span_jsonl`): :func:`spans_to_otlp`
produces the OTLP/JSON ``resourceSpans`` shape any OpenTelemetry
collector ingests, and :func:`render_trace_tree` is the human form
behind ``repro obs trace`` — the tree reassembled from hex span ids
(which survive process hops), with per-span timing bars and annotated
events inline.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from .registry import MetricSample, MetricsRegistry

__all__ = [
    "render_text",
    "render_prometheus",
    "spans_to_otlp",
    "render_trace_tree",
    "trace_ids",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_HISTOGRAM_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_SANITIZER.sub("_", name)


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP text allows quotes but needs backslash/newline escaped."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _text_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def render_text(registry: MetricsRegistry) -> str:
    """Human-readable listing: one aligned line per metric."""
    rows: List[Tuple[str, str]] = []
    for sample in registry.collect():
        label = f"{sample.name}{_text_labels(sample.labels)}"
        if sample.kind == "histogram":
            s = sample.summary or {}
            value = (
                f"count={s['count']:.0f} sum={s['sum']:.6g} mean={s['mean']:.6g} "
                f"min={s['min']:.6g} p50={s['p50']:.6g} p95={s['p95']:.6g} "
                f"p99={s['p99']:.6g} max={s['max']:.6g}"
            )
        else:
            value = f"{sample.value:.6g}"
        rows.append((label, value))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


_PROM_KINDS = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}


def render_prometheus(
    registry: MetricsRegistry, *, timestamp_ms: Optional[int] = None
) -> str:
    """Prometheus text-exposition rendering of every metric.

    Samples are grouped into metric families first, so ``# HELP`` and
    ``# TYPE`` appear exactly once per family no matter how many label
    sets (series) a metric has, and every series of a family is emitted
    contiguously as the format requires.

    ``timestamp_ms`` (epoch milliseconds) is appended to every sample
    line per the exposition format.  Source it from the scraper's wall
    anchor (``int(scraper.last_scrape_wall * 1000)``) so an external
    scrape pipeline sees the same instants the embedded TSDB recorded.
    """
    suffix = "" if timestamp_ms is None else f" {int(timestamp_ms)}"
    families: Dict[str, Dict[str, object]] = {}
    for sample in registry.collect():
        base = _prom_name(sample.name)
        family_name = base + "_total" if sample.kind == "counter" else base
        family = families.setdefault(
            family_name,
            {"kind": _PROM_KINDS[sample.kind], "source": sample.name, "samples": []},
        )
        family["samples"].append(sample)  # type: ignore[union-attr]
    lines: List[str] = []
    for family_name, family in families.items():
        help_text = _escape_help(f"repro metric '{family['source']}'")
        lines.append(f"# HELP {family_name} {help_text}")
        lines.append(f"# TYPE {family_name} {family['kind']}")
        samples: List[MetricSample] = family["samples"]  # type: ignore[assignment]
        for sample in samples:
            if sample.kind in ("counter", "gauge"):
                lines.append(
                    f"{family_name}{_prom_labels(sample.labels)} "
                    f"{sample.value:.10g}{suffix}"
                )
            else:  # histogram -> summary exposition
                s = sample.summary or {}
                for quantile, key in _HISTOGRAM_QUANTILES:
                    extra = 'quantile="%s"' % quantile
                    lines.append(
                        f"{family_name}{_prom_labels(sample.labels, extra)} "
                        f"{s[key]:.10g}{suffix}"
                    )
                lines.append(
                    f"{family_name}_sum{_prom_labels(sample.labels)} "
                    f"{s['sum']:.10g}{suffix}"
                )
                lines.append(
                    f"{family_name}_count{_prom_labels(sample.labels)} "
                    f"{s['count']:.10g}{suffix}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------- #
# span exports (OTLP JSON and the CLI trace tree)


def _otlp_value(value: object) -> Dict[str, object]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(mapping: Dict[str, object]) -> List[Dict[str, object]]:
    return [{"key": k, "value": _otlp_value(v)} for k, v in sorted(mapping.items())]


def spans_to_otlp(
    spans: Sequence[Dict[str, object]],
    *,
    service_name: str = "repro",
) -> Dict[str, object]:
    """Span-sink lines as an OTLP/JSON ``ExportTraceServiceRequest``.

    One resource (the repro service), one scope, one OTLP span per
    JSONL line: hex ids pass through unchanged, wall-anchored start
    times become ``startTimeUnixNano``, labels become attributes, and
    span events keep their in-span offsets.
    """
    otlp_spans = []
    for span in spans:
        start_ns = int(float(span["start_unix_s"]) * 1e9)
        end_ns = start_ns + int(float(span["duration_s"]) * 1e9)
        events = []
        for event in span.get("events") or []:
            attrs = {
                k: v for k, v in event.items() if k not in ("name", "offset_s")
            }
            events.append(
                {
                    "name": event.get("name"),
                    "timeUnixNano": str(
                        start_ns + int(float(event.get("offset_s", 0.0)) * 1e9)
                    ),
                    "attributes": _otlp_attributes(attrs),
                }
            )
        otlp: Dict[str, object] = {
            "traceId": span["trace_id"],
            "spanId": span["span_id"],
            "name": span["name"],
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": _otlp_attributes(dict(span.get("labels") or {})),
            "events": events,
        }
        if span.get("parent_span_id"):
            otlp["parentSpanId"] = span["parent_span_id"]
        otlp_spans.append(otlp)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _otlp_attributes({"service.name": service_name})
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.obs"}, "spans": otlp_spans}
                ],
            }
        ]
    }


def trace_ids(spans: Sequence[Dict[str, object]]) -> List[str]:
    """Distinct trace ids in first-appearance order."""
    seen: Dict[str, None] = {}
    for span in spans:
        tid = span.get("trace_id")
        if isinstance(tid, str) and tid not in seen:
            seen[tid] = None
    return list(seen)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_trace_tree(
    spans: Sequence[Dict[str, object]],
    trace_id: str,
    *,
    prefix_match: bool = True,
) -> str:
    """One trace as an indented span tree with timings and events.

    Spans are matched by ``trace_id`` (a unique prefix suffices, like
    git revisions), parented by hex span id (so spans written by pool
    workers slot under their request parent regardless of file order),
    and ordered by wall-anchored start time.  Spans whose parent never
    reached the sink (e.g. a crashed process) render as extra roots
    rather than disappearing.
    """
    if prefix_match:
        matches = sorted(
            {
                str(s["trace_id"])
                for s in spans
                if str(s.get("trace_id", "")).startswith(trace_id)
            }
        )
        if not matches:
            raise ValueError(f"no spans for trace {trace_id!r}")
        if len(matches) > 1:
            raise ValueError(
                f"trace prefix {trace_id!r} is ambiguous: {', '.join(matches)}"
            )
        trace_id = matches[0]
    mine = [s for s in spans if s.get("trace_id") == trace_id]
    if not mine:
        raise ValueError(f"no spans for trace {trace_id!r}")
    mine.sort(key=lambda s: float(s.get("start_unix_s", 0.0)))
    by_id = {str(s["span_id"]): s for s in mine}
    children: Dict[Optional[str], List[Dict[str, object]]] = {}
    for span in mine:
        parent = span.get("parent_span_id")
        key = str(parent) if parent is not None and str(parent) in by_id else None
        children.setdefault(key, []).append(span)
    origin = float(mine[0].get("start_unix_s", 0.0))
    lines = [f"trace {trace_id}  ({len(mine)} spans)"]

    def _walk(span: Dict[str, object], depth: int) -> None:
        offset = float(span.get("start_unix_s", 0.0)) - origin
        duration = float(span.get("duration_s", 0.0))
        labels = span.get("labels") or {}
        label_text = (
            " {" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        indent = "  " * depth
        lines.append(
            f"{indent}+- {span['name']}{label_text}  "
            f"[{_format_duration(duration)} @ +{_format_duration(max(offset, 0.0))}]"
            f"  pid={span.get('pid', '?')}"
        )
        for event in span.get("events") or []:
            attrs = {
                k: v for k, v in event.items() if k not in ("name", "offset_s")
            }
            attr_text = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                if attrs
                else ""
            )
            lines.append(
                f"{indent}   . {event.get('name')} "
                f"@ +{_format_duration(float(event.get('offset_s', 0.0)))}"
                f"{attr_text}"
            )
        for child in children.get(str(span["span_id"]), []):
            _walk(child, depth + 1)

    for root in children.get(None, []):
        _walk(root, 0)
    return "\n".join(lines)
