"""Exporters: render a registry as aligned text or Prometheus exposition.

The text form is what ``repro obs report`` prints and humans read; the
Prometheus form follows the text exposition conventions (sanitized
``snake_case`` names with a ``repro_`` prefix, ``_total`` on counters,
``_count``/``_sum`` plus ``quantile``-labelled samples for histograms,
``# HELP``/``# TYPE`` emitted once per metric family, label values
escaped per the spec) so a scrape-style pipeline can ingest run output
unchanged.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .registry import MetricSample, MetricsRegistry

__all__ = ["render_text", "render_prometheus"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_HISTOGRAM_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_SANITIZER.sub("_", name)


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP text allows quotes but needs backslash/newline escaped."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _text_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def render_text(registry: MetricsRegistry) -> str:
    """Human-readable listing: one aligned line per metric."""
    rows: List[Tuple[str, str]] = []
    for sample in registry.collect():
        label = f"{sample.name}{_text_labels(sample.labels)}"
        if sample.kind == "histogram":
            s = sample.summary or {}
            value = (
                f"count={s['count']:.0f} sum={s['sum']:.6g} mean={s['mean']:.6g} "
                f"min={s['min']:.6g} p50={s['p50']:.6g} p95={s['p95']:.6g} "
                f"p99={s['p99']:.6g} max={s['max']:.6g}"
            )
        else:
            value = f"{sample.value:.6g}"
        rows.append((label, value))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


_PROM_KINDS = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text-exposition rendering of every metric.

    Samples are grouped into metric families first, so ``# HELP`` and
    ``# TYPE`` appear exactly once per family no matter how many label
    sets (series) a metric has, and every series of a family is emitted
    contiguously as the format requires.
    """
    families: Dict[str, Dict[str, object]] = {}
    for sample in registry.collect():
        base = _prom_name(sample.name)
        family_name = base + "_total" if sample.kind == "counter" else base
        family = families.setdefault(
            family_name,
            {"kind": _PROM_KINDS[sample.kind], "source": sample.name, "samples": []},
        )
        family["samples"].append(sample)  # type: ignore[union-attr]
    lines: List[str] = []
    for family_name, family in families.items():
        help_text = _escape_help(f"repro metric '{family['source']}'")
        lines.append(f"# HELP {family_name} {help_text}")
        lines.append(f"# TYPE {family_name} {family['kind']}")
        samples: List[MetricSample] = family["samples"]  # type: ignore[assignment]
        for sample in samples:
            if sample.kind in ("counter", "gauge"):
                lines.append(
                    f"{family_name}{_prom_labels(sample.labels)} {sample.value:.10g}"
                )
            else:  # histogram -> summary exposition
                s = sample.summary or {}
                for quantile, key in _HISTOGRAM_QUANTILES:
                    extra = 'quantile="%s"' % quantile
                    lines.append(
                        f"{family_name}{_prom_labels(sample.labels, extra)} "
                        f"{s[key]:.10g}"
                    )
                lines.append(
                    f"{family_name}_sum{_prom_labels(sample.labels)} {s['sum']:.10g}"
                )
                lines.append(
                    f"{family_name}_count{_prom_labels(sample.labels)} "
                    f"{s['count']:.10g}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
