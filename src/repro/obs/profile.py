"""Phase-attributed profiling: where wall time and memory go inside a run.

The regression gate (``repro obs diff``) can say *that* a bench got
slower; this module says *where*.  A :class:`PhaseProfiler` rides the
existing ``span()``/``timer()`` infrastructure: every span begin/finish
(calibration, suffix rounds, distance evals, reorder, trust update, p2p
gossip — whatever the pipeline opened) becomes a *phase*, keyed by the
semicolon-joined span stack, and the profiler attributes to each phase

* **wall time** — cumulative and *self* (cumulative minus child phases),
  on the same ``perf_counter`` clock as the tracer;
* **memory** — the tracemalloc high-water mark observed while the phase
  was innermost (``track_memory=True``), peak-reset at every phase
  boundary so a parent's allocations are not billed to its children;
* **deterministic call samples** — with ``sample_interval=n`` a
  ``sys.setprofile`` hook records, at every *n*-th python call event,
  the current phase path plus the called function as a folded stack.
  Sampling is keyed to call counts rather than a timer interrupt, so the
  same run produces the same profile.  The hook costs a fixed amount per
  call event (interpreter dispatch), so reserve it for tests and small
  runs;
* **periodic stack samples** — with ``sample_hz=h`` a daemon thread
  wakes ``h`` times a second and reads the profiled thread's current
  phase path and python frame out-of-band (``sys._current_frames()``,
  the py-spy approach).  The profiled thread pays nothing beyond its
  ordinary span bookkeeping, which is what keeps the enabled profiler
  inside the <10% overhead budget asserted in ``benchmarks/`` — this is
  the mode the experiment runners default to.

Exports are flamegraph-compatible folded stacks (``a;b;c 1234`` — feed
them to ``flamegraph.pl`` or speedscope) and a schema-versioned
``PROFILE_*.json`` that ``repro obs report`` renders.

The disabled path stays free: when no profiler is installed the span
fast path performs one ``is None`` check and the behaviour-test hot
loops are untouched (pinned by a tracemalloc test, like
:mod:`repro.obs.audit`).  Use :func:`profile_session`::

    from repro import obs

    with obs.profile_session(sample_interval=127) as prof:
        run_fig9(quick=True)
    print(obs.render_folded(prof))
"""

from __future__ import annotations

import contextlib
import json
import sys
import threading
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from . import runtime as _runtime

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "PhaseStat",
    "PhaseProfiler",
    "profile_session",
    "render_folded",
    "profile_payload",
    "validate_profile_payload",
    "write_profile_json",
    "read_profile_json",
    "write_folded",
    "folded_path_for",
]

PROFILE_SCHEMA_VERSION = 1

PathLike = Union[str, Path]

#: Folded-stack key used for samples taken outside any open span.
UNTRACED = "(untraced)"


@dataclass
class PhaseStat:
    """Aggregated cost of one phase path across all its visits."""

    path: str
    calls: int = 0
    wall_s: float = 0.0
    self_s: float = 0.0
    mem_peak_bytes: int = 0
    samples: int = 0

    def as_dict(self) -> Dict[str, object]:
        """The JSON shape stored in ``PROFILE_*.json`` artifacts."""
        return {
            "path": self.path,
            "calls": self.calls,
            "wall_s": self.wall_s,
            "self_s": self.self_s,
            "mem_peak_bytes": self.mem_peak_bytes,
            "samples": self.samples,
        }


class _Frame:
    """One open phase on the profiler's stack."""

    __slots__ = ("path", "start", "child_s", "mem_peak", "samples")

    def __init__(self, path: str, start: float):
        self.path = path
        self.start = start
        self.child_s = 0.0
        self.mem_peak = 0
        self.samples = 0


class PhaseProfiler:
    """Attributes wall time, memory high-water, and call samples to spans.

    Passive until :meth:`install` puts it into
    :data:`repro.obs.runtime.profiler` (done by :func:`profile_session`);
    from then on every live span begin/finish notifies it.
    """

    def __init__(
        self,
        *,
        sample_interval: int = 0,
        sample_hz: float = 0.0,
        track_memory: bool = False,
    ):
        if sample_interval < 0:
            raise ValueError(
                f"sample_interval must be non-negative, got {sample_interval}"
            )
        if sample_hz < 0:
            raise ValueError(f"sample_hz must be non-negative, got {sample_hz}")
        self._interval = int(sample_interval)
        self._hz = float(sample_hz)
        self._track_memory = bool(track_memory)
        self._stats: Dict[str, PhaseStat] = {}
        self._frames: List[_Frame] = []
        self._folded: Dict[str, int] = {}
        self._countdown = self._interval
        self._installed = False
        self._previous_hook = None
        self._started_tracemalloc = False
        self._sampler: Optional["_PeriodicSampler"] = None

    # -- results -------------------------------------------------------- #

    @property
    def sample_interval(self) -> int:
        """Call events between folded-stack samples (0 = sampling off)."""
        return self._interval

    @property
    def sample_hz(self) -> float:
        """Out-of-band samples per second (0 = periodic sampling off)."""
        return self._hz

    @property
    def track_memory(self) -> bool:
        """Whether tracemalloc high-water marks are being attributed."""
        return self._track_memory

    def phases(self) -> List[PhaseStat]:
        """Every phase seen so far, most cumulative wall time first."""
        return sorted(
            self._stats.values(), key=lambda s: (-s.wall_s, s.path)
        )

    def phase(self, path: str) -> Optional[PhaseStat]:
        """The stats for one exact phase path, or ``None``."""
        return self._stats.get(path)

    @property
    def folded_samples(self) -> Dict[str, int]:
        """Sampled folded call stacks (``phase;...;module:function`` → hits)."""
        return dict(self._folded)

    # -- span hooks (called from repro.obs.runtime._LiveSpan) ----------- #

    def on_span_begin(self, name: str, now: float) -> None:
        """A live span opened; push its phase frame."""
        frames = self._frames
        if self._track_memory:
            if frames:
                peak = tracemalloc.get_traced_memory()[1]
                if peak > frames[-1].mem_peak:
                    frames[-1].mem_peak = peak
            tracemalloc.reset_peak()
        path = f"{frames[-1].path};{name}" if frames else name
        frames.append(_Frame(path, now))

    def on_span_end(self, now: float) -> None:
        """The innermost live span closed; fold its frame into the stats."""
        if not self._frames:
            return  # span opened before the profiler was installed
        frame = self._frames.pop()
        wall = now - frame.start
        if self._track_memory:
            peak = tracemalloc.get_traced_memory()[1]
            if peak > frame.mem_peak:
                frame.mem_peak = peak
            tracemalloc.reset_peak()
        stat = self._stats.get(frame.path)
        if stat is None:
            stat = self._stats[frame.path] = PhaseStat(frame.path)
        stat.calls += 1
        stat.wall_s += wall
        stat.self_s += max(wall - frame.child_s, 0.0)
        stat.samples += frame.samples
        if frame.mem_peak > stat.mem_peak_bytes:
            stat.mem_peak_bytes = frame.mem_peak
        if self._frames:
            parent = self._frames[-1]
            parent.child_s += wall
            if frame.mem_peak > parent.mem_peak:
                parent.mem_peak = frame.mem_peak

    # -- deterministic call-event sampling ------------------------------ #

    def _hook(self, frame, event: str, arg) -> None:
        if event != "call" and event != "c_call":
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._interval
        frames = self._frames
        if frames:
            frames[-1].samples += 1
            prefix = frames[-1].path
        else:
            prefix = UNTRACED
        if event == "c_call":
            module = getattr(arg, "__module__", None) or "c"
            name = getattr(arg, "__qualname__", None) or getattr(
                arg, "__name__", "?"
            )
        else:
            module = frame.f_globals.get("__name__", "?")
            name = frame.f_code.co_name
        key = f"{prefix};{module}:{name}"
        self._folded[key] = self._folded.get(key, 0) + 1

    # -- periodic out-of-band sampling ---------------------------------- #

    def _sample_remote(self, target_ident: int) -> None:
        """One sample taken from the sampler thread, not the profiled one.

        Reads the open phase stack and the profiled thread's current
        python frame; every operation here runs on the daemon thread, so
        the profiled thread's only cost is its ordinary span bookkeeping.
        The reads race benignly with span push/pop under the GIL — a
        sample landing exactly on a boundary may be attributed to the
        neighbouring phase, which is noise a sampling profiler has anyway.
        """
        frames = self._frames
        try:
            top: Optional[_Frame] = frames[-1]
        except IndexError:
            top = None
        if top is not None:
            top.samples += 1
            prefix = top.path
        else:
            prefix = UNTRACED
        frame = sys._current_frames().get(target_ident)
        if frame is None:
            key = prefix
        else:
            module = frame.f_globals.get("__name__", "?")
            key = f"{prefix};{module}:{frame.f_code.co_name}"
        self._folded[key] = self._folded.get(key, 0) + 1

    # -- lifecycle ------------------------------------------------------ #

    def install(self) -> None:
        """Start collecting: memory tracing and (optionally) call sampling."""
        if self._installed:
            raise RuntimeError("profiler is already installed")
        self._installed = True
        if self._track_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
        if self._interval:
            self._countdown = self._interval
            self._previous_hook = sys.getprofile()
            sys.setprofile(self._hook)
        if self._hz:
            self._sampler = _PeriodicSampler(self, self._hz, threading.get_ident())
            self._sampler.start()

    def uninstall(self) -> None:
        """Stop collecting and restore whatever hooks were there before."""
        if not self._installed:
            return
        self._installed = False
        if self._interval:
            sys.setprofile(self._previous_hook)
            self._previous_hook = None
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False


class _PeriodicSampler(threading.Thread):
    """Daemon thread driving :meth:`PhaseProfiler._sample_remote`."""

    def __init__(self, profiler: PhaseProfiler, hz: float, target_ident: int):
        super().__init__(name="repro-obs-sampler", daemon=True)
        self._profiler = profiler
        self._period = 1.0 / hz
        self._target = target_ident
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        self.join()

    def run(self) -> None:
        while not self._halt.wait(self._period):
            self._profiler._sample_remote(self._target)


@contextlib.contextmanager
def profile_session(
    *,
    sample_interval: int = 0,
    sample_hz: float = 0.0,
    track_memory: bool = False,
) -> Iterator[PhaseProfiler]:
    """Profile a block: obs collection on, profiler riding every span.

    Reuses the ambient obs session when one is active (so the caller's
    tracer still sees the spans), otherwise activates a fresh scoped
    session exactly like the experiment runners do.  The profiler is
    uninstalled and the previous runtime state restored on exit, even on
    error.
    """
    profiler = PhaseProfiler(
        sample_interval=sample_interval,
        sample_hz=sample_hz,
        track_memory=track_memory,
    )
    if _runtime.is_enabled():
        scope = contextlib.nullcontext()
    else:
        scope = _runtime.activate()
    with scope:
        previous = _runtime.profiler
        profiler.install()
        _runtime.profiler = profiler
        try:
            yield profiler
        finally:
            _runtime.profiler = previous
            profiler.uninstall()


# ---------------------------------------------------------------------- #
# exports


def render_folded(profile: PhaseProfiler, *, source: str = "wall") -> str:
    """Flamegraph-compatible folded stacks, one ``path count`` per line.

    ``source="wall"`` emits one line per phase weighted by *self* time in
    microseconds (the span tree as a flamegraph); ``source="samples"``
    emits the sampled call stacks (phase path + called function) weighted
    by hit count — empty unless the profiler ran with a sample interval.
    """
    if source == "wall":
        lines = [
            f"{stat.path} {max(int(round(stat.self_s * 1e6)), 0)}"
            for stat in sorted(profile.phases(), key=lambda s: s.path)
        ]
    elif source == "samples":
        folded = profile.folded_samples
        lines = [f"{path} {folded[path]}" for path in sorted(folded)]
    else:
        raise ValueError(f"source must be 'wall' or 'samples', got {source!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def profile_payload(
    name: str,
    profile: PhaseProfiler,
    *,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble (and validate) a ``PROFILE_*.json`` artifact payload."""
    payload: Dict[str, object] = {
        "profile": name,
        "schema_version": PROFILE_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "sample_interval": profile.sample_interval,
        "sample_hz": profile.sample_hz,
        "track_memory": profile.track_memory,
        "phases": [stat.as_dict() for stat in profile.phases()],
        "folded_samples": profile.folded_samples,
    }
    validate_profile_payload(payload)
    return payload


def validate_profile_payload(payload: object) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid profile artifact."""
    if not isinstance(payload, dict):
        raise ValueError("profile payload must be a JSON object")
    for key in ("profile", "schema_version", "meta", "phases", "folded_samples"):
        if key not in payload:
            raise ValueError(f"profile payload missing key {key!r}")
    if not isinstance(payload["profile"], str) or not payload["profile"]:
        raise ValueError("'profile' must be a non-empty string")
    if payload["schema_version"] != PROFILE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {payload['schema_version']!r}; "
            f"expected {PROFILE_SCHEMA_VERSION}"
        )
    if not isinstance(payload["meta"], dict):
        raise ValueError("'meta' must be an object")
    phases = payload["phases"]
    if not isinstance(phases, list):
        raise ValueError("'phases' must be a list")
    for i, phase in enumerate(phases):
        if not isinstance(phase, dict):
            raise ValueError(f"phases[{i}] must be an object")
        if not isinstance(phase.get("path"), str) or not phase["path"]:
            raise ValueError(f"phases[{i}].path must be a non-empty string")
        for stat in ("calls", "wall_s", "self_s", "mem_peak_bytes", "samples"):
            value = phase.get(stat)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"phases[{i}].{stat} must be a number, got {value!r}"
                )
    folded = payload["folded_samples"]
    if not isinstance(folded, dict):
        raise ValueError("'folded_samples' must be an object")


def write_profile_json(
    path: PathLike,
    name: str,
    profile: PhaseProfiler,
    *,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Validate and write a ``PROFILE_<name>.json``; returns the payload."""
    payload = profile_payload(name, profile, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")
    return payload


def read_profile_json(path: PathLike) -> Dict[str, object]:
    """Load and validate a profile artifact."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_profile_payload(payload)
    return payload


def folded_path_for(profile_path: PathLike) -> Path:
    """The sibling ``.folded`` path of a ``PROFILE_*.json`` artifact."""
    return Path(profile_path).with_suffix(".folded")


def write_folded(
    path: PathLike, profile: PhaseProfiler, *, source: str = "wall"
) -> None:
    """Write :func:`render_folded` output (default: phase self-times)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_folded(profile, source=source))
