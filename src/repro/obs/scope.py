"""Node-scoped metric attribution for fleet-scope observability.

The paper's protocol is decentralized: feedback lives in a P2P overlay
and assessments happen at many nodes.  Every metric family in the
registry, however, observes one global process.  This module closes the
gap without rewriting a single ``_obs.registry.inc`` call site: code
that acts *as* a node wraps its work in ``node_scope(node_id)`` and the
registry stamps a ``node`` label onto every metric created inside the
scope (see ``MetricsRegistry._get_or_create``).

Design notes:

* ``active`` is a plain module attribute maintained by a nesting-depth
  counter.  The registry hot path pays one attribute read when no scope
  is anywhere on the stack — the common case for the single-process
  core/serve layers — and only touches the contextvar when a scope is
  actually open somewhere.
* Cardinality guard: the same idiom as the TSDB ``max_series`` cap.  At
  most ``max_nodes`` distinct node ids are admitted; later node ids are
  stamped with the ``OVERFLOW_NODE`` sentinel and counted in
  ``dropped_nodes`` so runaway fleets cannot explode the registry.
* Scoped-snapshot extraction (``split_snapshot`` / ``node_snapshot``)
  partitions a registry snapshot back into per-node views with the
  ``node`` label stripped, which is what the fleet aggregator consumes.

Deliberately dependency-free (stdlib only), like the registry.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "NODE_LABEL",
    "OVERFLOW_NODE",
    "NOOP",
    "node_scope",
    "current_node",
    "attribution_node",
    "reset",
    "nodes_in",
    "node_snapshot",
    "split_snapshot",
]

#: Label key stamped onto metrics created inside a scope.
NODE_LABEL = "node"

#: Sentinel node label used once ``max_nodes`` distinct ids were seen.
OVERFLOW_NODE = "__overflow__"

DEFAULT_MAX_NODES = 256

#: True while at least one ``node_scope`` is open anywhere.  The
#: registry reads this attribute on every metric creation; keeping it a
#: plain module global keeps the unscoped path to a single read.
active: bool = False

#: Cardinality cap on distinct node labels (TSDB ``max_series`` idiom).
max_nodes: int = DEFAULT_MAX_NODES

#: Attribution attempts that hit the cap and were stamped ``OVERFLOW_NODE``.
dropped_nodes: int = 0

#: Shared reentrant no-op for call sites that scope conditionally
#: (e.g. ChordNode methods when obs is disabled).
NOOP = nullcontext()

_NODE: ContextVar[Optional[str]] = ContextVar("repro_node_scope", default=None)
_depth: int = 0
_seen: set = set()


@contextmanager
def node_scope(node_id: Any) -> Iterator[None]:
    """Attribute metrics emitted in this block to ``node_id``.

    Scopes nest: the innermost node wins, and leaving a scope restores
    whatever was active before (contextvar token semantics), so a node
    handling an RPC on behalf of another node attributes its own work.
    """
    global active, _depth
    token = _NODE.set(str(node_id))
    _depth += 1
    active = True
    try:
        yield
    finally:
        _depth -= 1
        if _depth <= 0:
            _depth = 0
            active = False
        _NODE.reset(token)


def current_node() -> Optional[str]:
    """The node id of the innermost open scope, or ``None``."""
    return _NODE.get()


def attribution_node() -> Optional[str]:
    """The node label to stamp, run through the cardinality guard.

    Returns ``None`` outside any scope, the scope's node id while under
    the ``max_nodes`` cap, and ``OVERFLOW_NODE`` (counting the drop in
    ``dropped_nodes``) once the cap is reached — mirroring how the TSDB
    silently drops series past ``max_series`` instead of growing without
    bound.
    """
    global dropped_nodes
    node = _NODE.get()
    if node is None:
        return None
    if node in _seen:
        return node
    if len(_seen) >= max_nodes:
        dropped_nodes += 1
        return OVERFLOW_NODE
    _seen.add(node)
    return node


def reset(max_nodes_cap: Optional[int] = None) -> None:
    """Forget seen nodes and the drop count (test isolation / reuse).

    ``max_nodes_cap`` optionally re-points the cardinality cap; omitted,
    the default cap is restored.
    """
    global dropped_nodes, max_nodes
    _seen.clear()
    dropped_nodes = 0
    max_nodes = DEFAULT_MAX_NODES if max_nodes_cap is None else int(max_nodes_cap)


# ---------------------------------------------------------------------------
# Scoped-snapshot extraction


def nodes_in(snapshot: Dict[str, List[Dict[str, Any]]]) -> List[str]:
    """Sorted distinct node labels present in a registry snapshot."""
    names = set()
    for entries in snapshot.values():
        for entry in entries:
            node = (entry.get("labels") or {}).get(NODE_LABEL)
            if node is not None:
                names.add(str(node))
    return sorted(names)


def node_snapshot(
    snapshot: Dict[str, List[Dict[str, Any]]], node: Any
) -> Dict[str, Any]:
    """The slice of ``snapshot`` attributed to ``node``, label stripped.

    The result is itself registry-snapshot shaped, so every downstream
    consumer (SLO engine, exporters, TSDB) works on a single node's view
    unchanged.
    """
    wanted = str(node)
    out: Dict[str, Any] = {}
    for name, entries in snapshot.items():
        kept = []
        for entry in entries:
            labels = dict(entry.get("labels") or {})
            if NODE_LABEL not in labels or str(labels[NODE_LABEL]) != wanted:
                continue
            del labels[NODE_LABEL]
            stripped = dict(entry)
            stripped["labels"] = labels
            kept.append(stripped)
        if kept:
            out[name] = kept
    return out


def split_snapshot(
    snapshot: Dict[str, List[Dict[str, Any]]]
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """Partition a snapshot into ``(per_node, unscoped)``.

    ``per_node`` maps node id -> snapshot-shaped dict with the ``node``
    label stripped; ``unscoped`` holds everything emitted outside any
    scope (experiment-level timers, serve metrics, ...).
    """
    per_node: Dict[str, Dict[str, Any]] = {}
    unscoped: Dict[str, Any] = {}
    for name, entries in snapshot.items():
        for entry in entries:
            labels = dict(entry.get("labels") or {})
            node = labels.pop(NODE_LABEL, None)
            copy = dict(entry)
            copy["labels"] = labels
            target = unscoped if node is None else per_node.setdefault(str(node), {})
            target.setdefault(name, []).append(copy)
    return per_node, unscoped
