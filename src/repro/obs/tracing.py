"""Span records and the tracer that collects them.

A *span* is one timed region of the pipeline — a whole fig-9 sweep, one
calibration, one simulation step.  Spans nest: the tracer maintains a
stack, so every finished :class:`SpanRecord` knows its parent and depth,
and wall-time accounting ("which children explain the root's time?") is
a pure post-processing step over the records.

This module holds only the passive data structures; the live ``span()``
/ ``timer()`` entry points — including the disabled-path fast exit —
live in :mod:`repro.obs.runtime`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One finished span: identity, position in the tree, and timing.

    ``span_id``/``parent_id`` are process-local integers assigned by the
    tracer stack; the optional ``trace_*`` hex ids are the *causal*
    identity that survives serialization across thread, process, and
    network boundaries (see :mod:`repro.obs.context`).  Spans opened
    outside any trace context leave them ``None`` — the local tree still
    works, it just isn't part of a distributed trace.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    labels: Dict[str, str]
    start: float
    duration: float
    depth: int = 0
    trace_id: Optional[str] = None
    trace_span_id: Optional[str] = None
    trace_parent_id: Optional[str] = None
    events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def end(self) -> float:
        """``start + duration`` on the perf-counter clock."""
        return self.start + self.duration


@dataclass
class _OpenSpan:
    span_id: int
    parent_id: Optional[int]
    name: str
    labels: Dict[str, str]
    start: float
    depth: int
    trace_id: Optional[str] = None
    trace_span_id: Optional[str] = None
    trace_parent_id: Optional[str] = None
    events: List[Dict[str, object]] = field(default_factory=list)


@dataclass
class Tracer:
    """Collects finished spans and tracks the currently-open stack."""

    _records: List[SpanRecord] = field(default_factory=list)
    _stack: List[_OpenSpan] = field(default_factory=list)
    _next_id: int = 0
    # Guards _records only: the begin/finish stack stays single-threaded
    # by design, but record() accepts appends from pool-worker threads.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def finished(self) -> List[SpanRecord]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def begin(
        self, name: str, labels: Dict[str, str], start: float, ctx=None
    ) -> None:
        """Open a span as a child of whatever is currently innermost.

        ``ctx`` (a :class:`~repro.obs.context.TraceContext`, duck-typed)
        stamps the span with its distributed identity.
        """
        parent = self._stack[-1].span_id if self._stack else None
        self._stack.append(
            _OpenSpan(
                self._next_id,
                parent,
                name,
                labels,
                start,
                len(self._stack),
                trace_id=ctx.trace_id if ctx is not None else None,
                trace_span_id=ctx.span_id if ctx is not None else None,
                trace_parent_id=ctx.parent_span_id if ctx is not None else None,
            )
        )
        self._next_id += 1

    def add_event(self, name: str, time: float, **attrs: object) -> None:
        """Annotate the innermost open span with a timestamped event."""
        if not self._stack:
            return
        event: Dict[str, object] = {"name": name, "time": time}
        event.update({k: str(v) for k, v in attrs.items()})
        self._stack[-1].events.append(event)

    def finish(self, end: float) -> SpanRecord:
        """Close the innermost span and store its record."""
        if not self._stack:
            raise RuntimeError("finish() with no open span")
        open_span = self._stack.pop()
        record = SpanRecord(
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            name=open_span.name,
            labels=open_span.labels,
            start=open_span.start,
            duration=end - open_span.start,
            depth=open_span.depth,
            trace_id=open_span.trace_id,
            trace_span_id=open_span.trace_span_id,
            trace_parent_id=open_span.trace_parent_id,
            events=open_span.events,
        )
        with self._lock:
            self._records.append(record)
        return record

    def record(self, span: SpanRecord) -> None:
        """Append an externally-built finished span (thread-safe).

        Pool-worker threads use this for stack-free explicit spans —
        they must never push onto the shared begin/finish stack.
        """
        with self._lock:
            self._records.append(span)

    def reset(self) -> None:
        """Drop all records and abandon any open spans."""
        self._records.clear()
        self._stack.clear()
        self._next_id = 0

    # -- tree queries --------------------------------------------------- #

    def find(self, name: str) -> List[SpanRecord]:
        """All finished spans with the given name."""
        return [r for r in self._records if r.name == name]

    def children(self, record: SpanRecord) -> List[SpanRecord]:
        """Direct children of ``record`` among the finished spans."""
        return [r for r in self._records if r.parent_id == record.span_id]

    def roots(self) -> List[SpanRecord]:
        """Finished spans with no parent."""
        return [r for r in self._records if r.parent_id is None]

    def total_time(self, name: str) -> float:
        """Summed duration of every finished span with ``name``."""
        return sum(r.duration for r in self._records if r.name == name)

    def coverage(self, record: SpanRecord) -> float:
        """Fraction of ``record``'s duration explained by direct children.

        The acceptance metric for "no large untraced gaps": 1.0 means
        the children tile the parent exactly.
        """
        if record.duration <= 0.0:
            return 1.0
        return sum(c.duration for c in self.children(record)) / record.duration
