"""repro — reproduction of "On the Modeling of Honest Players in Reputation
Systems" (Qing Zhang, Wei Wei, Ting Yu; ICDCS 2008 / JCST 2009).

The package implements the paper's two-phase trust assessment — a
statistical screen of a server's transaction history against the
honest-player binomial model, followed by a conventional trust function —
together with everything the evaluation needs: trust-function baselines,
attack models, a P2P client-arrival simulation, and runners for every
figure in the paper (see :mod:`repro.experiments`).

Quick start::

    from repro import (
        SingleBehaviorTest, MultiBehaviorTest, TwoPhaseAssessor,
        AverageTrust, TransactionHistory, generate_honest_outcomes,
    )

    history = TransactionHistory.from_outcomes(
        generate_honest_outcomes(500, 0.95, seed=42)
    )
    assessor = TwoPhaseAssessor(
        behavior_test=MultiBehaviorTest(),
        trust_function=AverageTrust(),
        trust_threshold=0.9,
    )
    print(assessor.assess(history).status)

or, declaratively through the registries::

    from repro import Assessor, AssessorConfig

    assessor = Assessor.from_config(
        AssessorConfig(trust_function="average", behavior_test="multi")
    )
"""

from .core import (
    Assessment,
    AssessmentStatus,
    Assessor,
    AssessorConfig,
    BehaviorTestConfig,
    BehaviorVerdict,
    CategorizedBehaviorTest,
    CollusionResilientMultiTest,
    CollusionResilientTest,
    HonestPlayerModel,
    MultiBehaviorTest,
    MultinomialBehaviorTest,
    MultiTestReport,
    SegmentedBehaviorTest,
    SingleBehaviorTest,
    TemporalBehaviorTest,
    ThresholdCalibrator,
    TwoPhaseAssessor,
    generate_honest_outcomes,
)
from .feedback import BAD, GOOD, Feedback, FeedbackLedger, Rating, TransactionHistory
from .trust import (
    AverageTrust,
    TrustGuardTrust,
    BetaReputationTrust,
    DecayTrust,
    EigenTrust,
    PeerTrust,
    TrustFunction,
    WeightedTrust,
    make_trust_function,
)

__version__ = "1.0.0"

__all__ = [
    "Assessment",
    "AssessmentStatus",
    "Assessor",
    "AssessorConfig",
    "BehaviorTestConfig",
    "BehaviorVerdict",
    "CategorizedBehaviorTest",
    "CollusionResilientMultiTest",
    "CollusionResilientTest",
    "HonestPlayerModel",
    "MultiBehaviorTest",
    "MultinomialBehaviorTest",
    "MultiTestReport",
    "SegmentedBehaviorTest",
    "SingleBehaviorTest",
    "TemporalBehaviorTest",
    "ThresholdCalibrator",
    "TwoPhaseAssessor",
    "generate_honest_outcomes",
    "BAD",
    "GOOD",
    "Feedback",
    "FeedbackLedger",
    "Rating",
    "TransactionHistory",
    "AverageTrust",
    "TrustGuardTrust",
    "BetaReputationTrust",
    "DecayTrust",
    "EigenTrust",
    "PeerTrust",
    "TrustFunction",
    "WeightedTrust",
    "make_trust_function",
    "__version__",
]
