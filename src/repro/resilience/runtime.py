"""Global fault-injection state and the hot-path entry points.

Mirrors :mod:`repro.obs.runtime`: instrumented code checks one
module-level flag before doing anything, so the fully disabled path
costs a single attribute read per site:

    from ..resilience import runtime as _res
    ...
    if _res.armed:
        _res.inject("core.calibration")

:func:`activate` scopes a :class:`~repro.resilience.faults.FaultPlan`
(and an optional :class:`~repro.obs.events.EventLog` for structured
resilience events) to a ``with`` block and restores the previous state
on exit — chaos tests arm faults without permanently flipping the
global switch.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from ..obs import context as _ctx
from ..obs import runtime as _obs
from ..obs import scope as _scope
from ..obs.events import EventLog
from .faults import FaultPlan, FaultSpec, InjectedFault

__all__ = [
    "armed",
    "plan",
    "events",
    "activate",
    "check",
    "inject",
    "corrupt_text",
    "corrupt_row",
    "emit",
]

#: Master switch — instrumented sites check this before any other work.
armed: bool = False

#: The active fault plan (``None`` unless a chaos run armed one).
plan: Optional[FaultPlan] = None

#: Optional structured-event sink for resilience events (faults fired,
#: degradations, quarantines, breaker transitions).  ``None`` routes
#: events to obs counters only.
events: Optional[EventLog] = None


@contextmanager
def activate(
    fault_plan: Optional[FaultPlan] = None,
    event_log: Optional[EventLog] = None,
) -> Iterator[Optional[FaultPlan]]:
    """Arm ``fault_plan`` (and ``event_log``) within a ``with`` block."""
    global armed, plan, events
    saved = (armed, plan, events)
    plan = fault_plan
    events = event_log
    armed = fault_plan is not None
    try:
        yield plan
    finally:
        armed, plan, events = saved


def check(site: str) -> Optional[FaultSpec]:
    """Consult the plan for ``site``; the fired spec, or ``None``.

    Low-level entry point for call sites with native failure semantics
    (e.g. the network maps a fired fault onto a message drop, the
    process executor onto ``BrokenProcessPool``).  Emits the
    ``fault_injected`` event for every fired fault.
    """
    if plan is None:
        return None
    spec = plan.decide(site)
    if spec is not None:
        emit("fault_injected", site=site, mode=spec.mode)
    return spec


def inject(site: str, value: Any = None) -> Any:
    """Default fault semantics for ``site``; returns ``value`` (possibly
    corrupted).

    * ``exception`` / ``crash`` → raise :class:`InjectedFault`;
    * ``delay`` → sleep ``spec.delay_s``, then return ``value``;
    * ``corrupt`` → return a damaged copy of ``value`` (text is
      truncated, mapping rows get an unparseable rating).
    """
    spec = check(site)
    if spec is None:
        return value
    if spec.mode in ("exception", "crash"):
        raise InjectedFault(site, spec.mode, plan.counts()[site]["invocations"] - 1)
    if spec.mode == "delay":
        if spec.delay_s > 0:
            time.sleep(spec.delay_s)
        return value
    # corrupt
    if isinstance(value, str):
        return corrupt_text(value)
    if isinstance(value, dict):
        return corrupt_row(value)
    return value


def corrupt_text(text: str) -> str:
    """Deterministically damage a text payload (truncate to half)."""
    return text[: len(text) // 2]


def corrupt_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministically damage a parsed feedback row."""
    damaged = dict(row)
    damaged["rating"] = "<injected-corruption>"
    return damaged


def emit(event: str, **fields: object) -> None:
    """Record one structured resilience event.

    Lands in the scoped :data:`events` log when one is active, and in
    the obs counter ``resilience.events`` (labelled by event name)
    whenever obs collection is on — so ``repro health`` and the chaos
    determinism suite see the same stream.

    When the calling flow carries a
    :class:`~repro.obs.context.TraceContext`, the event is additionally
    stamped with its ``trace_id`` and attached to the innermost open
    span as an annotated span event — this one funnel is what turns
    retry attempts, breaker flips, degradations, and calibration
    fallbacks into trace-visible annotations.

    When a flight recorder is installed (:data:`repro.obs.runtime.flight_recorder`),
    every event additionally lands in its ring — and trigger events like
    ``breaker_open`` cause it to dump a post-mortem bundle.
    """
    ctx = _ctx.current()
    if ctx is not None and "trace_id" not in fields:
        fields = dict(fields, trace_id=ctx.trace_id)
    if _scope.active and "node" not in fields:
        # node-scoped attribution mirrors the trace_id stamp: events
        # emitted while a node scope is open are attributable per node
        # (fleet bundles filter the recorder ring on this field)
        node = _scope.current_node()
        if node is not None:
            fields = dict(fields, node=node)
    if ctx is not None or _obs.enabled:
        _obs.span_event(event, **fields)
    record: Optional[Dict[str, object]] = None
    if events is not None:
        record = events.emit(event, **fields)
    if _obs.enabled:
        _obs.registry.inc("resilience.events", event=event)
    recorder = _obs.flight_recorder
    if recorder is not None:
        if record is None:
            record = {"event": event, "time": time.time()}
            record.update(fields)
        recorder.record_event(dict(record))
