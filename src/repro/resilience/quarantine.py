"""Bounded quarantine for inputs that cannot be processed.

A malformed feedback row or an un-foldable ledger event must not abort
the stream — the paper's screening guarantees are about the *other*
millions of records.  Bad items land in a :class:`Quarantine`: a
bounded deque that keeps the most recent offenders for inspection,
counts what it had to drop, and emits one structured ``quarantined``
event per admission so operators see data problems without the
pipeline stopping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, List

from . import runtime as _res

__all__ = ["QuarantinedItem", "Quarantine"]


@dataclass(frozen=True)
class QuarantinedItem:
    """One quarantined input with its provenance."""

    item: Any
    site: str
    reason: str
    index: int


class Quarantine:
    """Bounded holding area for unprocessable inputs.

    ``capacity`` bounds memory: beyond it the *oldest* items are
    discarded (and counted in ``n_dropped``) — recency matters more
    than completeness for debugging a live stream.
    """

    def __init__(self, capacity: int = 1024, name: str = "quarantine"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: "deque[QuarantinedItem]" = deque(maxlen=capacity)
        self.n_quarantined = 0
        self.n_dropped = 0
        from .health import GLOBAL_HEALTH

        GLOBAL_HEALTH.register_quarantine(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Items currently held."""
        return len(self._items)

    def add(self, item: Any, *, site: str, reason: str) -> QuarantinedItem:
        """Admit one bad input; emits a ``quarantined`` event."""
        if len(self._items) == self.capacity:
            self.n_dropped += 1
        record = QuarantinedItem(
            item=item, site=site, reason=reason, index=self.n_quarantined
        )
        self._items.append(record)
        self.n_quarantined += 1
        _res.emit("quarantined", quarantine=self.name, site=site, reason=reason)
        return record

    def items(self) -> List[QuarantinedItem]:
        """The held items, oldest first."""
        return list(self._items)

    def drain(self) -> List[QuarantinedItem]:
        """Remove and return everything currently held."""
        drained = list(self._items)
        self._items.clear()
        return drained

    def stats(self) -> dict:
        """Depth and counters for the health report."""
        return {
            "name": self.name,
            "depth": self.depth,
            "capacity": self.capacity,
            "quarantined": self.n_quarantined,
            "dropped": self.n_dropped,
        }
