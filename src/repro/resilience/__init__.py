"""repro.resilience — fault injection and recovery for the pipeline.

Production-scale serving of trust assessments has to survive lossy,
partially-failing infrastructure: corrupted cache files, malformed
feedback rows, crashed pool workers, dropped messages.  This package
provides both halves of that story:

* **Fault injection** — a seeded, replayable
  :class:`~repro.resilience.faults.FaultPlan` arming named sites
  (``serve.executor.worker``, ``serve.cache.load``, ``feedback.io.row``,
  ``feedback.ledger.fold``, ``p2p.network.send``, ``core.calibration``)
  with crash/corrupt/delay/exception faults, scoped with
  :func:`~repro.resilience.runtime.activate`;
* **Recovery policies** — :class:`RetryPolicy` (exponential backoff,
  deterministic jitter, per-attempt deadline), :class:`CircuitBreaker`
  (per-executor), and a bounded :class:`Quarantine` for bad input;
* **Health** — every policy registers into a process-wide registry;
  :func:`health_report` / ``repro health`` report breaker states,
  quarantine depth, and retry counters.

Fault checking is **off by default** and costs one module-attribute
read per site when disarmed — the same zero-overhead discipline as
:mod:`repro.obs`.  See ``docs/RESILIENCE.md`` for the degradation
ladder and how to replay a chaos seed.
"""

from __future__ import annotations

from .breaker import CircuitBreaker
from .faults import (
    FAULT_MODES,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
)
from .health import (
    GLOBAL_HEALTH,
    HealthRegistry,
    health_report,
    render_event_summary,
    render_health,
    summarize_events,
)
from .quarantine import Quarantine, QuarantinedItem
from .retry import RetryExhausted, RetryPolicy
from .runtime import activate, check, emit, inject

__all__ = [
    "FAULT_MODES",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceError",
    "CircuitBreaker",
    "Quarantine",
    "QuarantinedItem",
    "RetryExhausted",
    "RetryPolicy",
    "GLOBAL_HEALTH",
    "HealthRegistry",
    "health_report",
    "render_event_summary",
    "render_health",
    "summarize_events",
    "activate",
    "check",
    "emit",
    "inject",
]
