"""Deterministic, seeded fault injection for the serving pipeline.

Real reputation overlays run on lossy, partially-failing infrastructure
(EigenTrust and PeerTrust both assume it); the paper's honest-player
guarantees only matter if the assessor keeps answering under those
conditions.  This module provides the *controlled* version of that
chaos: a :class:`FaultPlan` arms named injection sites with
crash/corrupt/delay/exception faults, every decision is drawn from a
per-site generator derived deterministically from the plan seed, and the
full decision sequence is recorded in :attr:`FaultPlan.log` — so a chaos
run replays exactly, fault for fault, from nothing but its seed.

Sites are dotted names chosen where production failures actually land:

========================  ==============================================
``serve.executor.worker``  a pool worker crashes or a shard times out
``serve.cache.load``       the persisted calibration cache is corrupt
``feedback.io.row``        one row of a feedback file is malformed
``feedback.ledger.fold``   a ledger event cannot be folded
``p2p.network.send``       a network request is lost or errors out
``p2p.network.kill``       the destination node dies mid-request
``core.calibration``       the Monte-Carlo calibration pass fails
========================  ==============================================

Instrumented code pays one module-attribute read when nothing is armed
(the same discipline as :mod:`repro.obs.runtime`); see
:mod:`repro.resilience.runtime` for the hot-path entry points.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..stats.rng import make_rng

__all__ = [
    "FAULT_SITES",
    "FAULT_MODES",
    "InjectedFault",
    "ResilienceError",
    "FaultSpec",
    "FaultPlan",
]

#: The named injection sites wired into the pipeline.
FAULT_SITES: Tuple[str, ...] = (
    "serve.executor.worker",
    "serve.cache.load",
    "feedback.io.row",
    "feedback.ledger.fold",
    "p2p.network.send",
    "p2p.network.kill",
    "core.calibration",
)

#: ``exception`` raises :class:`InjectedFault`; ``crash`` simulates a
#: dead worker/process (call sites map it onto their native failure,
#: e.g. ``BrokenProcessPool``); ``corrupt`` damages the in-flight value
#: (text, row, or message); ``delay`` sleeps for ``delay_s``.
FAULT_MODES: Tuple[str, ...] = ("exception", "crash", "corrupt", "delay")


class InjectedFault(RuntimeError):
    """An artificial failure raised at an armed injection site."""

    def __init__(self, site: str, mode: str, index: int):
        super().__init__(f"injected {mode} fault at {site} (invocation {index})")
        self.site = site
        self.mode = mode
        self.index = index


class ResilienceError(RuntimeError):
    """A failure that exhausted every recovery path.

    Carries the originating ``site`` and the per-step ``attempts`` list
    ``[(step, repr(error)), ...]`` so operators see one structured error
    instead of a bare worker traceback.
    """

    def __init__(self, site: str, attempts: List[Tuple[str, str]], message: str = ""):
        detail = "; ".join(f"{step}: {err}" for step, err in attempts)
        super().__init__(
            message or f"no recovery path left for fault at {site} ({detail})"
        )
        self.site = site
        self.attempts = list(attempts)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what kind, and how often it fires."""

    site: str
    mode: str = "exception"
    #: Per-invocation firing probability (1.0 = every invocation).
    probability: float = 1.0
    #: Stop firing after this many faults (``None`` = unbounded).
    max_fires: Optional[int] = None
    #: Skip the first ``after`` invocations before the fault can fire.
    after: int = 0
    #: Sleep duration for ``delay`` faults.
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {FAULT_SITES}"
            )
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known modes: {FAULT_MODES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {self.probability}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be non-negative, got {self.max_fires}")
        if self.after < 0:
            raise ValueError(f"after must be non-negative, got {self.after}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")


@dataclass
class _SiteState:
    """Mutable per-site bookkeeping of one plan run."""

    spec: FaultSpec
    invocations: int = 0
    fires: int = 0
    rng: object = None


class FaultPlan:
    """A seeded, replayable schedule of faults across injection sites.

    Each armed site draws its fire/skip decisions from its own generator
    seeded by ``(seed, crc32(site))``, so the per-site fault sequence
    depends only on the plan seed and that site's invocation order —
    interleaving with other sites cannot perturb it.  Every decision is
    appended to :attr:`log` as ``(site, invocation_index, fired, mode)``,
    which is what the determinism suite compares across runs.
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._sites: Dict[str, _SiteState] = {}
        #: Chronological decision log: ``(site, index, fired, mode)``.
        self.log: List[Tuple[str, int, bool, str]] = []

    @property
    def seed(self) -> int:
        """The seed every per-site decision stream derives from."""
        return self._seed

    @property
    def specs(self) -> Dict[str, FaultSpec]:
        """The armed specs, by site."""
        return {site: state.spec for site, state in self._sites.items()}

    def arm(self, site, mode: str = "exception", **spec_fields) -> FaultSpec:
        """Arm a fault; returns the normalized spec.

        Accepts either a prebuilt :class:`FaultSpec` or
        ``(site, mode, **spec_fields)`` to build one in place.
        """
        if isinstance(site, FaultSpec):
            if mode != "exception" or spec_fields:
                raise TypeError(
                    "pass either a FaultSpec or site/mode fields, not both"
                )
            spec = site
        else:
            spec = FaultSpec(site=site, mode=mode, **spec_fields)
        site = spec.site
        self._sites[site] = _SiteState(
            spec=spec,
            rng=make_rng([self._seed, zlib.crc32(site.encode("utf-8"))]),
        )
        return spec

    def disarm(self, site: str) -> None:
        """Remove the fault armed at ``site`` (no-op when absent)."""
        self._sites.pop(site, None)

    def decide(self, site: str) -> Optional[FaultSpec]:
        """One invocation of ``site``: fire the armed fault or pass.

        Returns the spec when the fault fires, ``None`` otherwise.  The
        decision (either way) is appended to :attr:`log` for armed
        sites; un-armed sites cost a dict miss and log nothing.
        """
        state = self._sites.get(site)
        if state is None:
            return None
        index = state.invocations
        state.invocations += 1
        spec = state.spec
        fired = index >= spec.after and (
            spec.max_fires is None or state.fires < spec.max_fires
        )
        if fired and spec.probability < 1.0:
            fired = float(state.rng.random()) < spec.probability
        if fired:
            state.fires += 1
        self.log.append((site, index, fired, spec.mode))
        return spec if fired else None

    def counts(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"invocations": ..., "fires": ...}`` totals."""
        return {
            site: {"invocations": state.invocations, "fires": state.fires}
            for site, state in self._sites.items()
        }

    def reset(self) -> None:
        """Rewind the plan to its freshly-armed state (same seed)."""
        self.log.clear()
        for site, state in self._sites.items():
            state.invocations = 0
            state.fires = 0
            state.rng = make_rng([self._seed, zlib.crc32(site.encode("utf-8"))])
