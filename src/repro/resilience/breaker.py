"""A per-dependency circuit breaker.

Classic three-state breaker (closed → open → half-open) guarding a
flaky dependency — here, the serving pool executors: once a pool breaks
``failure_threshold`` times in a row, the breaker opens and
``assess_many`` skips straight down the degradation ladder instead of
paying pool startup just to watch it die again.  After
``reset_after_s`` the breaker half-opens and lets one probe through;
success re-closes it, failure re-opens it.

The clock is injectable so tests (and replayed chaos runs) control time
explicitly instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from . import runtime as _res

__all__ = ["CircuitBreaker"]

_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Failure-counting breaker with monotonic-clock reset."""

    def __init__(
        self,
        name: str = "breaker",
        *,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s <= 0:
            raise ValueError(f"reset_after_s must be positive, got {reset_after_s}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.n_failures = 0
        self.n_successes = 0
        self.n_rejections = 0
        self.n_opens = 0
        from .health import GLOBAL_HEALTH

        GLOBAL_HEALTH.register_breaker(self)

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half_open`` (clock-refreshed)."""
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = "half_open"
            _res.emit("breaker_half_open", breaker=self.name)
        return self._state

    def allow(self) -> bool:
        """May a call go through right now?

        ``closed`` and ``half_open`` admit the call (half-open admits it
        as the probe); ``open`` rejects and counts the rejection.
        """
        if self.state == "open":
            self.n_rejections += 1
            return False
        return True

    def record_success(self) -> None:
        """Report a successful call; closes a half-open breaker."""
        self.n_successes += 1
        self._consecutive_failures = 0
        if self._state == "half_open":
            _res.emit("breaker_closed", breaker=self.name)
        self._state = "closed"

    def record_failure(self) -> None:
        """Report a failed call; may trip the breaker open."""
        self.n_failures += 1
        self._consecutive_failures += 1
        if (
            self._state == "half_open"
            or self._consecutive_failures >= self.failure_threshold
        ):
            if self._state != "open":
                self.n_opens += 1
                _res.emit(
                    "breaker_open",
                    breaker=self.name,
                    consecutive_failures=self._consecutive_failures,
                )
            self._state = "open"
            self._opened_at = self._clock()

    def reset(self) -> None:
        """Force-close the breaker and clear the failure streak."""
        self._state = "closed"
        self._consecutive_failures = 0

    def stats(self) -> dict:
        """State and counters for the health report."""
        return {
            "name": self.name,
            "state": self.state,
            "failure_threshold": self.failure_threshold,
            "consecutive_failures": self._consecutive_failures,
            "failures": self.n_failures,
            "successes": self.n_successes,
            "rejections": self.n_rejections,
            "opens": self.n_opens,
        }
