"""Process-wide resilience health: breakers, quarantines, retries.

Every :class:`~repro.resilience.breaker.CircuitBreaker`,
:class:`~repro.resilience.quarantine.Quarantine`, and
:class:`~repro.resilience.retry.RetryPolicy` registers itself (by weak
reference — the registry never keeps serving objects alive) into
:data:`GLOBAL_HEALTH`; :func:`health_report` aggregates their live
state and ``repro health`` renders it.  For post-hoc analysis,
:func:`summarize_events` folds a structured-event stream (the
``resilience.*`` events a chaos run wrote to JSONL) into the same
shape.
"""

from __future__ import annotations

import weakref
from collections import Counter
from typing import Dict, Iterable, List, Optional

__all__ = [
    "HealthRegistry",
    "GLOBAL_HEALTH",
    "health_report",
    "render_health",
    "summarize_events",
    "render_event_summary",
    "RESILIENCE_EVENTS",
    "P2P_EVENTS",
    "CLUSTER_EVENTS",
]

#: Event names the resilience layer emits (see runtime.emit call sites).
RESILIENCE_EVENTS = (
    "fault_injected",
    "executor_degraded",
    "quarantined",
    "retry",
    "retry_exhausted",
    "breaker_open",
    "breaker_half_open",
    "breaker_closed",
    "cache_load_failed",
    "calibration_degraded",
)

#: Event names the P2P overlay emits through the same funnel (see
#: repro.p2p.chord) — counted by :func:`summarize_events` so chaos/fleet
#: event logs summarize ring repair alongside resilience activity.
P2P_EVENTS = (
    "chord_lookup",
    "chord_successor_rebuild",
    "chord_key_handover",
    "chord_node_leave",
)

#: Event names the sharded assessment cluster emits (see repro.cluster)
#: — quorum reads, read-repair, hinted handoff, anti-entropy, and the
#: node-kill fault site all land in the same event funnel.
CLUSTER_EVENTS = (
    "node_killed",
    "cluster_rpc_failed",
    "cluster_hint_stored",
    "cluster_hint_replayed",
    "cluster_hint_lost",
    "cluster_read_repair",
    "cluster_quorum_lost",
    "cluster_degraded_verdict",
    "cluster_anti_entropy",
    "cluster_snapshot_shipped",
    "cluster_node_recovered",
)


class HealthRegistry:
    """Weak registry of the process's live resilience components."""

    def __init__(self) -> None:
        self._breakers: List[weakref.ref] = []
        self._quarantines: List[weakref.ref] = []
        self._retries: List[weakref.ref] = []
        self._networks: List[weakref.ref] = []
        self._clusters: List[weakref.ref] = []

    def register_breaker(self, breaker) -> None:
        """Track a :class:`~repro.resilience.breaker.CircuitBreaker`."""
        self._breakers.append(weakref.ref(breaker))

    def register_quarantine(self, quarantine) -> None:
        """Track a :class:`~repro.resilience.quarantine.Quarantine`."""
        self._quarantines.append(weakref.ref(quarantine))

    def register_retry(self, policy) -> None:
        """Track a :class:`~repro.resilience.retry.RetryPolicy`."""
        self._retries.append(weakref.ref(policy))

    def register_network(self, network) -> None:
        """Track a :class:`~repro.p2p.network.SimulatedNetwork`."""
        self._networks.append(weakref.ref(network))

    def register_cluster(self, cluster) -> None:
        """Track a :class:`~repro.cluster.ClusterAssessmentService`."""
        self._clusters.append(weakref.ref(cluster))

    @staticmethod
    def _alive(refs: List[weakref.ref]) -> Iterable:
        live = []
        for ref in refs:
            obj = ref()
            if obj is not None:
                live.append(obj)
        refs[:] = [weakref.ref(obj) for obj in live]
        return live

    def report(self) -> Dict[str, object]:
        """Aggregate live state of every registered component."""
        breakers = [b.stats() for b in self._alive(self._breakers)]
        quarantines = [q.stats() for q in self._alive(self._quarantines)]
        retries = [r.stats() for r in self._alive(self._retries)]
        networks = [n.stats_report() for n in self._alive(self._networks)]
        clusters = [c.stats_report() for c in self._alive(self._clusters)]
        return {
            "breakers": breakers,
            "quarantines": quarantines,
            "retries": retries,
            "networks": networks,
            "clusters": clusters,
            "open_breakers": sum(1 for b in breakers if b["state"] != "closed"),
            "quarantine_depth": sum(q["depth"] for q in quarantines),
            "total_retries": sum(r["retries"] for r in retries),
            "network_messages": sum(n["messages"] for n in networks),
            "network_drops": sum(n["drops"] for n in networks),
            "network_retries": sum(n["retries"] for n in networks),
            "open_hints": sum(c["open_hints"] for c in clusters),
        }

    def clear(self) -> None:
        """Drop every registration (test isolation)."""
        self._breakers.clear()
        self._quarantines.clear()
        self._retries.clear()
        self._networks.clear()
        self._clusters.clear()


#: The process-wide registry ``repro health`` reports on.
GLOBAL_HEALTH = HealthRegistry()


def health_report(registry: Optional[HealthRegistry] = None) -> Dict[str, object]:
    """The live health report (of ``registry`` or the global one)."""
    return (registry or GLOBAL_HEALTH).report()


def render_health(report: Dict[str, object]) -> str:
    """Human-readable rendering of a health report."""
    lines = ["resilience health"]
    lines.append(
        f"  breakers: {len(report['breakers'])} "
        f"({report['open_breakers']} not closed)"
    )
    for stats in report["breakers"]:
        lines.append(
            f"    {stats['name']:<28s} {stats['state']:<9s} "
            f"failures={stats['failures']} rejections={stats['rejections']} "
            f"opens={stats['opens']}"
        )
    lines.append(
        f"  quarantines: {len(report['quarantines'])} "
        f"(depth {report['quarantine_depth']})"
    )
    for stats in report["quarantines"]:
        lines.append(
            f"    {stats['name']:<28s} depth={stats['depth']}/{stats['capacity']} "
            f"quarantined={stats['quarantined']} dropped={stats['dropped']}"
        )
    lines.append(
        f"  retry policies: {len(report['retries'])} "
        f"(total retries {report['total_retries']})"
    )
    for stats in report["retries"]:
        lines.append(
            f"    {stats['name']:<28s} calls={stats['calls']} "
            f"retries={stats['retries']} exhausted={stats['exhausted']}"
        )
    networks = report.get("networks", [])
    lines.append(
        f"  networks: {len(networks)} "
        f"(messages {report.get('network_messages', 0)}, "
        f"drops {report.get('network_drops', 0)}, "
        f"retries {report.get('network_retries', 0)})"
    )
    for stats in networks:
        lines.append(
            f"    {stats['name']:<28s} nodes={stats['nodes']} "
            f"messages={stats['messages']} drops={stats['drops']} "
            f"retries={stats['retries']}"
        )
        by_type = stats.get("by_type") or {}
        if by_type:
            ranked = sorted(by_type.items(), key=lambda kv: (-kv[1], kv[0]))
            rendered = " ".join(f"{name}={count}" for name, count in ranked)
            lines.append(f"      by type: {rendered}")
    clusters = report.get("clusters", [])
    if clusters:
        lines.append(
            f"  clusters: {len(clusters)} "
            f"(open hints {report.get('open_hints', 0)})"
        )
    for stats in clusters:
        replication = stats.get("replication", {})
        lines.append(
            f"    {stats['name']:<28s} nodes={stats['alive']}/{stats['nodes']} "
            f"rf={stats['replicas']} quorum={stats['read_quorum']} "
            f"servers={stats['servers']} hints={stats['open_hints']}"
        )
        lines.append(
            f"      replication: satisfied={replication.get('satisfied', 0)} "
            f"violated={replication.get('violated', 0)}"
        )
        ownership = stats.get("ownership") or {}
        if ownership:
            rendered = " ".join(
                f"{node}={count}" for node, count in sorted(ownership.items())
            )
            lines.append(f"      ownership: {rendered}")
    return "\n".join(lines)


def summarize_events(events: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Fold a structured-event stream into a resilience summary.

    Accepts the dict records of :func:`repro.obs.read_events`; events
    outside the resilience vocabulary are ignored, so a full run log
    can be passed as-is.
    """
    counts: Counter = Counter()
    by_site: Counter = Counter()
    degradations: List[Dict[str, object]] = []
    for record in events:
        name = record.get("event")
        if (
            name not in RESILIENCE_EVENTS
            and name not in P2P_EVENTS
            and name not in CLUSTER_EVENTS
        ):
            continue
        counts[str(name)] += 1
        site = record.get("site")
        if site:
            by_site[str(site)] += 1
        if name == "executor_degraded":
            degradations.append(
                {
                    "from": record.get("from"),
                    "to": record.get("to"),
                    "error": record.get("error"),
                }
            )
    return {
        "events": dict(counts),
        "by_site": dict(by_site),
        "degradations": degradations,
    }


def render_event_summary(summary: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`summarize_events` output."""
    lines = ["resilience events"]
    if not summary["events"]:
        lines.append("  (no resilience events in this log)")
        return "\n".join(lines)
    for name, count in sorted(summary["events"].items()):
        lines.append(f"  {name:<24s} {count}")
    if summary["by_site"]:
        lines.append("  by site:")
        for site, count in sorted(summary["by_site"].items()):
            lines.append(f"    {site:<24s} {count}")
    for degradation in summary["degradations"]:
        lines.append(
            f"  degraded: {degradation['from']} -> {degradation['to']} "
            f"({degradation['error']})"
        )
    return "\n".join(lines)
