"""Bounded retry with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is a frozen description of *how* to retry — the
attempt budget, the backoff curve, the per-attempt deadline — plus a
:meth:`~RetryPolicy.call` runner that applies it to any callable.
Jitter is drawn from a generator seeded through the standard
:mod:`repro.stats.rng` plumbing, so two runs of the same seeded chaos
scenario sleep the same schedule and replay identically.

Retry *counters* are process-global (see
:mod:`repro.resilience.health`): every policy reports its attempts,
retries, and exhaustions into the health registry so ``repro health``
can answer "how hard is the service working to stay up".
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type

from ..stats.rng import SeedLike, make_rng
from . import runtime as _res

__all__ = ["RetryPolicy", "RetryExhausted"]


class RetryExhausted(RuntimeError):
    """Every attempt of a retried call failed; carries the last error."""

    def __init__(self, name: str, attempts: int, last_error: BaseException):
        super().__init__(
            f"{name}: all {attempts} attempt(s) failed "
            f"(last: {last_error!r})"
        )
        self.name = name
        self.attempts = attempts
        self.last_error = last_error


class RetryPolicy:
    """Exponential backoff with deterministic jitter and attempt budget.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (1 = no retrying).
    base_delay:
        Sleep before the first retry; subsequent retries multiply it by
        ``multiplier`` up to ``max_delay``.  The default of 0 keeps unit
        tests and the synchronous simulators fast.
    jitter:
        Fractional jitter: each sleep is scaled by ``1 + jitter * u``
        with ``u`` drawn from the policy's seeded generator — spreading
        herd retries without sacrificing replayability.
    deadline_s:
        Per-attempt deadline, enforced by callers that can (the pool
        executors pass it to ``Executor.map(timeout=...)``); exposed
        here so the whole retry contract lives in one object.
    retry_on:
        Exception classes that trigger a retry; anything else
        propagates immediately.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        base_delay: float = 0.0,
        multiplier: float = 2.0,
        max_delay: float = 30.0,
        jitter: float = 0.0,
        deadline_s: Optional[float] = None,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        seed: SeedLike = 0,
        name: str = "retry",
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {jitter}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline_s = deadline_s
        self.retry_on = retry_on
        self.name = name
        self._rng = make_rng(seed)
        self.n_calls = 0
        self.n_attempts = 0
        self.n_retries = 0
        self.n_exhausted = 0
        from .health import GLOBAL_HEALTH

        GLOBAL_HEALTH.register_retry(self)

    def delay_for(self, retry_index: int) -> float:
        """The sleep before retry ``retry_index`` (0 = first retry)."""
        delay = min(self.base_delay * (self.multiplier**retry_index), self.max_delay)
        if delay > 0 and self.jitter > 0:
            delay *= 1.0 + self.jitter * float(self._rng.random())
        return delay

    def call(
        self,
        fn: Callable,
        *args,
        sleep: Callable[[float], None] = time.sleep,
        **kwargs,
    ):
        """Run ``fn`` under this policy; raises :class:`RetryExhausted`
        (from the last error) when the attempt budget runs out."""
        self.n_calls += 1
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            self.n_attempts += 1
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last_error = exc
                if attempt + 1 >= self.max_attempts:
                    break
                self.n_retries += 1
                _res.emit(
                    "retry",
                    policy=self.name,
                    attempt=attempt + 1,
                    error=repr(exc),
                )
                delay = self.delay_for(attempt)
                if delay > 0:
                    sleep(delay)
        self.n_exhausted += 1
        _res.emit("retry_exhausted", policy=self.name, error=repr(last_error))
        raise RetryExhausted(self.name, self.max_attempts, last_error) from last_error

    def stats(self) -> dict:
        """Counters for the health report."""
        return {
            "name": self.name,
            "max_attempts": self.max_attempts,
            "calls": self.n_calls,
            "attempts": self.n_attempts,
            "retries": self.n_retries,
            "exhausted": self.n_exhausted,
        }
