"""Batched incremental assessment service.

:class:`AssessmentService` is the serving facade over the two-phase
pipeline: it keeps one :class:`~repro.core.incremental.IncrementalBehaviorState`
per server, folds feedback as it arrives (directly or via a subscribed
:class:`~repro.feedback.ledger.FeedbackLedger`), memoizes phase-1
verdicts and whole assessments, and answers bulk trust queries through
:meth:`AssessmentService.assess_many`, sharding across a
``concurrent.futures`` pool when that actually helps.

Verdicts are bit-identical to per-call
:meth:`~repro.core.two_phase.TwoPhaseAssessor.assess` — the service
reuses the assessor's own phase logic — with one deliberate difference:
the serving fast path only emits per-decision audit records for *fresh*
assessments while auditing is on (memo hits never re-log; run the
assessor directly when full phase-1 round provenance is needed).

Every ``assess_many`` request runs under a root
:class:`~repro.obs.context.TraceContext` (minted unless the caller
already attached one), serialized across the thread/process executor
boundary so worker shard spans, resilience events, and audit records
all carry the request's trace_id.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, TimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import AssessorConfig
from ..core.incremental import IncrementalBehaviorState
from ..core.two_phase import Assessor, TwoPhaseAssessor
from ..core.vectorized import fold_cold_batch, supports_vectorized
from ..core.verdict import Assessment, AssessmentStatus
from ..feedback.history import TransactionHistory
from ..feedback.ledger import FeedbackLedger
from ..feedback.records import EntityId, Feedback
from ..obs import audit as _audit
from ..obs import context as _ctx
from ..obs import runtime as _obs
from ..resilience import runtime as _res
from ..resilience.breaker import CircuitBreaker
from ..resilience.faults import InjectedFault, ResilienceError
from ..resilience.retry import RetryExhausted, RetryPolicy
from ..trust.base import LedgerTrustFunction
from .cache import CalibrationCache

__all__ = ["AssessmentService"]

_log = logging.getLogger(__name__)

_EXECUTORS = ("auto", "serial", "thread", "process")

#: Fallback order of the degradation ladder, per starting executor: a
#: broken pool (or a shard past its deadline) steps down, never up, and
#: ends at serial — which shares no pool and cannot "break".
_LADDER = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

#: Failures a ladder step may recover from by stepping down.  Anything
#: outside this set (KeyError for an unknown server, ValueError for a
#: misconfigured call) is a caller error and propagates untouched.
_RECOVERABLE = (BrokenProcessPool, TimeoutError, InjectedFault, OSError)

#: Below this many servers, pool startup outweighs any sharding gain.
_MIN_PARALLEL_BATCH = 512

# Per-process worker state for executor="process": the assessor is built
# once per worker from the service's declarative config (initializer),
# then reused for every shard the pool hands that worker.
_PROCESS_STATE: dict = {}


def _worker_env() -> Dict[str, object]:
    """Snapshot the parent's observability settings for worker initargs.

    Spawned workers inherit nothing: without this, worker-side events
    and spans are silently dropped and ``REPRO_LOG_LEVEL`` only governs
    the parent.  Only serializable settings travel — the event-log and
    span-sink *paths*, never the open handles (JSONL appends from many
    processes interleave whole lines safely).
    """
    event_log = _res.events
    return {
        "log_level": os.environ.get("REPRO_LOG_LEVEL"),
        "obs_enabled": _obs.enabled,
        "span_sink_path": (
            str(_obs.span_sink.path) if _obs.span_sink is not None else None
        ),
        "event_log_path": (
            str(event_log.path)
            if event_log is not None and event_log.path is not None
            else None
        ),
    }


def _init_process_worker(
    config: AssessorConfig, worker_env: Optional[Dict[str, object]] = None
) -> None:
    _PROCESS_STATE["assessor"] = Assessor.from_config(config)
    if not worker_env:
        return
    level = worker_env.get("log_level")
    if level:
        from ..obs import configure_logging

        configure_logging(str(level))
    if worker_env.get("obs_enabled"):
        _obs.enable()  # fresh per-worker registry/tracer
    sink_path = worker_env.get("span_sink_path")
    if sink_path:
        _obs.span_sink = _ctx.SpanLog(str(sink_path))
    event_path = worker_env.get("event_log_path")
    if event_path:
        from ..obs.events import EventLog

        _res.events = EventLog(str(event_path))


def _assess_shard_in_process(
    task: Tuple[List[TransactionHistory], Optional[Dict[str, str]], int],
) -> List[Assessment]:
    histories, headers, shard_index = task
    assessor = _PROCESS_STATE["assessor"]
    if headers is None:
        return [assessor.assess(history) for history in histories]
    # rebuild the request context from its serialized headers; the
    # explicit span writes to this worker's own sink/tracer and never
    # touches a (parent-process) tracer stack
    shard_ctx = _ctx.TraceContext.from_headers(headers)
    with _ctx.explicit_span(
        "serve.executor.shard", ctx=shard_ctx, shard=shard_index, executor="process"
    ):
        return [assessor.assess(history) for history in histories]


class AssessmentService:
    """Incremental, batched serving of two-phase assessments.

    Construct from exactly one of:

    * ``assessor=`` — an existing :class:`TwoPhaseAssessor`; or
    * ``config=`` — an :class:`~repro.core.config.AssessorConfig`, which
      additionally enables ``executor="process"`` (workers rebuild the
      assessor from the declarative config).

    Parameters
    ----------
    ledger:
        Attach to a system ledger: existing servers are registered, new
        feedback auto-registers its server via the ledger's subscription
        hook, and phase 2 receives the ledger (required by PeerTrust /
        EigenTrust-style schemes).
    calibration_cache:
        A :class:`~repro.serve.cache.CalibrationCache` to back the
        behavior test's ε-threshold calibrator (shared across services
        and persisted across runs).
    executor:
        Default :meth:`assess_many` sharding mode — ``"auto"``,
        ``"serial"``, ``"thread"`` or ``"process"``.  ``"auto"`` picks
        serial unless the machine has spare cores, the batch is large,
        and (for processes) a declarative config is available.
    max_workers:
        Pool size for the parallel modes (default: the CPU count).
    retry_policy:
        Retry contract for the pool-backed executors: each ladder step
        is attempted this many times (its ``deadline_s``, when set, is
        the per-shard-sweep deadline passed to the pool) before the
        service degrades to the next step.  Default: 2 attempts, no
        sleeping, no deadline.
    vectorized:
        Use the batched cold-path kernel
        (:func:`~repro.core.vectorized.fold_cold_batch`): when an
        ``assess_many`` sweep finds at least ``vector_min_batch`` cold
        states and the tester qualifies, their phase-1 verdicts are
        folded in one vectorized pass and seeded into the incremental
        states before the per-server walk (which then hits the verdict
        cache).  Verdicts are bit-identical either way; PR 4's warm
        incremental path is untouched.
    vector_min_batch:
        Minimum number of cold states before the vectorized pre-fold
        pays for itself; smaller sweeps stay on the scalar path.

    **Degradation ladder.**  When a pool-backed ``assess_many`` sweep
    fails recoverably (``BrokenProcessPool``, a pool deadline, an
    injected worker fault), the service steps down process → thread →
    serial, records the fallback (``last_degradation``, an
    ``executor_degraded`` event, the ``serve.resilience.degradations``
    counter), and returns verdicts **bit-identical** to the healthy
    sweep — serial shares no pool and reuses the same incremental
    states.  A per-executor :class:`CircuitBreaker` remembers repeated
    pool failures so later sweeps skip the known-broken step without
    paying pool startup again.  Only when *every* step fails does the
    sweep raise — a single structured
    :class:`~repro.resilience.faults.ResilienceError` naming the
    originating site, never a bare worker traceback.
    """

    def __init__(
        self,
        assessor: Optional[TwoPhaseAssessor] = None,
        *,
        config: Optional[AssessorConfig] = None,
        ledger: Optional[FeedbackLedger] = None,
        calibration_cache: Optional[CalibrationCache] = None,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        vectorized: bool = True,
        vector_min_batch: int = 32,
    ):
        if (assessor is None) == (config is None):
            raise ValueError("pass exactly one of assessor= or config=")
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        self._config = config
        self._retry_policy = retry_policy or RetryPolicy(
            max_attempts=2,
            base_delay=0.0,
            retry_on=_RECOVERABLE,
            name="serve.executor",
        )
        self._breakers = {
            mode: CircuitBreaker(name=f"serve.executor.{mode}")
            for mode in ("process", "thread")
        }
        self.n_degradations = 0
        #: ``{"from", "to", "error"}`` of the most recent executor
        #: fallback, ``None`` while everything is healthy.
        self.last_degradation: Optional[Dict[str, str]] = None
        self._assessor = assessor if assessor is not None else Assessor.from_config(config)
        self._executor = executor
        self._max_workers = max_workers
        self._calibration_cache = calibration_cache
        if calibration_cache is not None:
            behavior = self._assessor.behavior_test
            calibrator = getattr(behavior, "calibrator", None)
            if calibrator is not None:
                calibrator.attach_store(calibration_cache)
        self._states: Dict[EntityId, IncrementalBehaviorState] = {}
        # Whole-assessment memo (history length -> Assessment); only valid
        # when phase 2 depends on nothing but the server's own history.
        self._assessment_cache: Dict[EntityId, tuple] = {}
        self._cacheable_trust = not isinstance(
            self._assessor.trust_function, LedgerTrustFunction
        )
        self.n_assessments = 0
        self.n_assessment_cache_hits = 0
        self._vectorized = vectorized
        self._vector_min_batch = vector_min_batch
        self.n_vector_prefolds = 0
        self.n_vector_seeded = 0
        self._ledger: Optional[FeedbackLedger] = None
        self._ledger_callback = None
        if ledger is not None:
            self.attach_ledger(ledger)

    # ------------------------------------------------------------------ #
    # registration and ingest

    @property
    def assessor(self) -> TwoPhaseAssessor:
        """The wrapped two-phase assessor."""
        return self._assessor

    @property
    def config(self) -> Optional[AssessorConfig]:
        """The declarative config, when the service was built from one."""
        return self._config

    @property
    def ledger(self) -> Optional[FeedbackLedger]:
        """The attached system ledger, if any."""
        return self._ledger

    def servers(self) -> List[EntityId]:
        """Registered server ids, in registration order."""
        return list(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def attach_ledger(self, ledger: FeedbackLedger) -> None:
        """Track a system ledger: register its servers, follow new feedback."""
        if self._ledger is not None:
            raise ValueError("a ledger is already attached")
        self._ledger = ledger
        for server in sorted(ledger.servers()):
            self._register(ledger.history(server))

        def _on_feedback(feedback: Feedback) -> None:
            if feedback.server not in self._states:
                self._register(ledger.history(feedback.server))

        self._ledger_callback = _on_feedback
        ledger.subscribe(_on_feedback)

    def add_server(self, server) -> EntityId:
        """Register a server; returns its id.

        ``server`` is either a :class:`TransactionHistory` (registered
        as-is, sharing the live object) or a bare server id (registered
        with a fresh empty history).  Registering an id twice is a no-op;
        registering a *different* history under an existing id is an
        error.
        """
        if isinstance(server, TransactionHistory):
            return self._register(server)
        existing = self._states.get(server)
        if existing is not None:
            return server
        return self._register(TransactionHistory(server))

    def _register(self, history: TransactionHistory) -> EntityId:
        server = history.server
        existing = self._states.get(server)
        if existing is not None:
            if existing.history is not history:
                raise ValueError(
                    f"server {server!r} is already registered with a "
                    "different history"
                )
            return server
        self._states[server] = IncrementalBehaviorState(
            self._assessor.behavior_test
            if self._assessor.behavior_test is not None
            else _NullTester(),
            history,
        )
        if _obs.enabled:
            _obs.registry.inc("serve.service.servers_registered")
        return server

    def observe(self, feedback: Feedback) -> None:
        """Ingest one feedback record.

        With a ledger attached this records through the ledger (which
        also notifies every other subscriber); standalone services fold
        directly into the server's state, registering it on first sight.
        """
        if self._ledger is not None:
            self._ledger.record(feedback)
            return
        state = self._states.get(feedback.server)
        if state is None:
            self.add_server(feedback.server)
            state = self._states[feedback.server]
        state.fold_feedback(feedback)

    def observe_outcome(self, server: EntityId, outcome: int) -> None:
        """Ingest one bare 0/1 outcome for ``server`` (standalone mode only)."""
        if self._ledger is not None:
            raise ValueError("ledger-attached services ingest via the ledger")
        state = self._states.get(server)
        if state is None:
            self.add_server(server)
            state = self._states[server]
        state.fold(outcome)

    def invalidate(self, server: EntityId) -> None:
        """Drop every cache for ``server``; next assessment recomputes."""
        self._states[server].invalidate()
        self._assessment_cache.pop(server, None)

    def replace_server(self, history: TransactionHistory) -> EntityId:
        """Swap in a rebuilt history for an existing (or new) server.

        The repair counterpart of :meth:`add_server`: anti-entropy and
        read-repair replace a server's ledger history wholesale (see
        :meth:`~repro.feedback.ledger.FeedbackLedger.reset_server`), which
        invalidates the incremental state and memoized assessment built
        over the old object.  Both are dropped and the replacement is
        registered fresh; the next assessment recomputes from scratch.
        """
        server = history.server
        self._states.pop(server, None)
        self._assessment_cache.pop(server, None)
        if _obs.enabled:
            _obs.registry.inc("serve.service.server_replacements")
        return self._register(history)

    # ------------------------------------------------------------------ #
    # assessment

    def assess(self, server: EntityId) -> Assessment:
        """Assess one server, reusing incremental state and memos."""
        state = self._states.get(server)
        if state is None:
            raise KeyError(f"server {server!r} is not registered")
        history = state.history
        n = len(history)
        if self._cacheable_trust:
            cached = self._assessment_cache.get(server)
            if cached is not None and cached[0] == n:
                self.n_assessment_cache_hits += 1
                if _obs.enabled:
                    _obs.registry.inc("serve.service.assessment_cache_hits")
                return cached[1]
        start = time.perf_counter() if _obs.enabled else 0.0
        assessment = self._assess_fresh(state, history)
        self.n_assessments += 1
        # degraded answers (stale calibration threshold) are served but
        # never memoized: the next query retries the real computation
        if self._cacheable_trust and not assessment.degraded:
            self._assessment_cache[server] = (n, assessment)
        if _obs.enabled:
            _obs.registry.inc("serve.service.assessments")
            # a plain histogram observation, not a span: the latency SLO
            # needs the distribution, a span per assessment would not
            # stay bounded across 100k-server sweeps
            _obs.registry.observe(
                "serve.assess.seconds", time.perf_counter() - start
            )
        return assessment

    def _assess_fresh(
        self, state: IncrementalBehaviorState, history: TransactionHistory
    ) -> Assessment:
        if _audit.enabled:
            with _audit.trail.decision_scope(server=history.server):
                assessment = self._assess_fresh_inner(state, history)
                if _audit.trail.want_record():
                    self._emit_serve_audit(assessment)
                return assessment
        return self._assess_fresh_inner(state, history)

    def _emit_serve_audit(self, assessment: Assessment) -> None:
        """Serve-path decision provenance (summary only, no phase-1 rounds)."""
        provenance = getattr(self._assessor.trust_function, "provenance", None)
        trust_name = (
            provenance()["name"]
            if callable(provenance)
            else type(self._assessor.trust_function).__name__
        )
        _audit.trail.emit(
            _audit.assessment_record(
                server=assessment.server,
                status=assessment.status.value,
                trust_value=assessment.trust_value,
                trust_threshold=self._assessor.trust_threshold,
                trust_function=trust_name,
            )
        )

    def _assess_fresh_inner(
        self, state: IncrementalBehaviorState, history: TransactionHistory
    ) -> Assessment:
        behavior = None
        degraded = False
        calibrator = getattr(self._assessor.behavior_test, "calibrator", None)
        stale_before = (
            calibrator.degraded_calibrations if calibrator is not None else 0
        )
        if self._assessor.behavior_test is not None:
            behavior = state.verdict()
            if calibrator is not None:
                # phase 1 answered off a stale calibration threshold —
                # usable, but flagged so the caller can re-derive later
                degraded = calibrator.degraded_calibrations > stale_before
            if not behavior.passed:
                return Assessment(
                    status=AssessmentStatus.SUSPICIOUS,
                    trust_value=None,
                    behavior=behavior,
                    server=history.server,
                    degraded=degraded,
                )
        trust_value = self._assessor.trust_value(history, ledger=self._ledger)
        status = (
            AssessmentStatus.TRUSTED
            if trust_value >= self._assessor.trust_threshold
            else AssessmentStatus.UNTRUSTED
        )
        return Assessment(
            status=status,
            trust_value=trust_value,
            behavior=behavior,
            server=history.server,
            degraded=degraded,
        )

    def assess_many(
        self,
        server_ids: Optional[Iterable[EntityId]] = None,
        *,
        executor: Optional[str] = None,
    ) -> Dict[EntityId, Assessment]:
        """Assess a batch of servers (default: every registered server).

        Sharding follows the service's executor mode unless overridden
        per call.  Results come back as ``{server_id: Assessment}`` in
        input order.
        """
        ids = list(server_ids) if server_ids is not None else list(self._states)
        mode = executor if executor is not None else self._executor
        if mode not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {mode!r}")
        if mode == "auto":
            mode = self._choose_executor(len(ids))
        # surface caller errors before any pool is paid for — these are
        # not faults and must not enter the degradation ladder
        if mode == "process":
            self._check_process_preconditions()
        from ..obs import span as _span

        # every request runs under a trace context when collection is on:
        # the caller's, or a freshly minted root — spans, resilience
        # events, and audit records downstream all inherit its trace_id
        ctx = _ctx.current()
        if ctx is None and _obs.enabled:
            ctx = _ctx.new_root(op="assess_many")
        with _ctx.use(ctx):
            if _obs.enabled:
                _obs.registry.inc("serve.requests")
            with _span("serve.assess_many", mode=mode, batch=len(ids)):
                if mode in ("serial", "thread"):
                    # process workers rebuild their own states; seeds
                    # would never reach them
                    self._prefold_cold(ids)
                result = self._assess_with_ladder(ids, mode)
            # drive the metrics scraper from the serving loop itself —
            # one wall-clock slot check per request, no background
            # thread; still inside the request context so anomaly
            # events are stamped with the triggering request's trace_id
            if _obs.scraper is not None:
                _obs.scraper.maybe_scrape()
        return result

    def _prefold_cold(self, ids: Sequence[EntityId]) -> None:
        """Batch-fold every cold state's phase 1 through the vectorized
        kernel and seed the results, so the per-server walk below turns
        into verdict-cache hits.

        Skipped entirely when faults are armed: the kernel computes
        thresholds for *all* suffix rounds up front, which would consume
        injected calibration faults in a different order than the scalar
        walk — chaos runs must replay bit-identically.  Likewise, seeds
        are discarded when the kernel answered off a stale calibration
        threshold, so the scalar path can re-derive and flag the
        assessment as degraded.
        """
        if not self._vectorized or _res.armed:
            return
        tester = self._assessor.behavior_test
        if tester is None or not supports_vectorized(tester):
            return
        cold: List[IncrementalBehaviorState] = []
        seen = set()
        for sid in ids:
            state = self._states.get(sid)
            if state is None or sid in seen:
                continue  # unknown ids fail in assess(), with context
            seen.add(sid)
            if state.needs_phase1():
                cold.append(state)
        if len(cold) < self._vector_min_batch:
            return
        calibrator = getattr(tester, "calibrator", None)
        stale_before = (
            calibrator.degraded_calibrations if calibrator is not None else 0
        )
        folded = fold_cold_batch(
            [state.history.outcomes() for state in cold], tester
        )
        if (
            calibrator is not None
            and calibrator.degraded_calibrations > stale_before
        ):
            return
        for state, (report, counts) in zip(cold, folded):
            state.seed_phase1(report, counts)
        self.n_vector_prefolds += 1
        self.n_vector_seeded += len(cold)
        if _obs.enabled:
            _obs.registry.inc("serve.service.vector_prefolds")
            _obs.registry.inc("serve.service.vector_seeded", len(cold))

    def _run_step(self, step: str, ids: Sequence[EntityId]) -> Dict[EntityId, Assessment]:
        if step == "serial":
            return {sid: self.assess(sid) for sid in ids}
        if step == "thread":
            return self._assess_many_threaded(ids)
        return self._assess_many_process(ids)

    def _assess_with_ladder(
        self, ids: Sequence[EntityId], mode: str
    ) -> Dict[EntityId, Assessment]:
        """Walk the degradation ladder from ``mode`` down to serial."""
        attempts: List[Tuple[str, str]] = []
        origin_site = "serve.executor.worker"
        for step in _LADDER[mode]:
            breaker = self._breakers.get(step)
            if breaker is not None and not breaker.allow():
                attempts.append((step, "circuit breaker open"))
                _res.emit("breaker_rejection", breaker=breaker.name, step=step)
                continue
            try:
                result = self._retry_policy.call(self._run_step, step, ids)
            except RetryExhausted as exc:
                cause = exc.last_error
                if not isinstance(cause, _RECOVERABLE):
                    raise cause from exc
                if breaker is not None:
                    breaker.record_failure()
                attempts.append((step, repr(cause)))
                if isinstance(cause, InjectedFault):
                    origin_site = cause.site
                _log.warning("assess_many %s step failed (%r); degrading", step, cause)
                continue
            if breaker is not None:
                breaker.record_success()
            if step != mode:
                self._record_degradation(mode, step, attempts)
            return result
        # the ladder is exhausted: capture the system's last moments
        # before the structured error unwinds the caller's stack
        if _obs.flight_recorder is not None:
            _obs.flight_recorder.dump(
                reason="resilience_error",
                site=origin_site,
                attempts="; ".join(f"{step}: {err}" for step, err in attempts),
            )
        raise ResilienceError(origin_site, attempts)

    def _record_degradation(
        self, requested: str, served: str, attempts: List[Tuple[str, str]]
    ) -> None:
        self.n_degradations += 1
        error = attempts[-1][1] if attempts else ""
        self.last_degradation = {"from": requested, "to": served, "error": error}
        _res.emit("executor_degraded", **self.last_degradation)
        if _obs.enabled:
            _obs.registry.inc(
                "serve.resilience.degradations", requested=requested, served=served
            )

    def _check_process_preconditions(self) -> None:
        if self._config is None:
            raise ValueError(
                "executor='process' needs a service built from config= "
                "(workers rebuild the assessor from the declarative config)"
            )
        if self._ledger is not None or not self._cacheable_trust:
            raise ValueError(
                "executor='process' supports history-based trust functions "
                "only; ledger-backed schemes cannot be sharded across processes"
            )

    def _choose_executor(self, batch_size: int) -> str:
        cores = os.cpu_count() or 1
        if cores <= 2 or batch_size < _MIN_PARALLEL_BATCH:
            return "serial"
        if self._config is not None and self._ledger is None:
            return "process"
        # threads keep the incremental caches but contend on the GIL;
        # they only pay off for the pure-python fallback testers
        return "serial"

    def _workers(self) -> int:
        return self._max_workers or (os.cpu_count() or 1)

    def _shards(self, ids: Sequence[EntityId]) -> List[List[EntityId]]:
        n_shards = min(self._workers(), max(1, len(ids)))
        size = (len(ids) + n_shards - 1) // n_shards
        return [list(ids[i : i + size]) for i in range(0, len(ids), size)]

    @staticmethod
    def _inject_worker_fault() -> None:
        """Consult the plan at the pool-worker site (pool-parent side).

        Worker processes do not inherit the parent's armed plan, so the
        chaos framework models worker death here, where the pool's
        native failures (``BrokenProcessPool``) surface anyway: a
        ``crash`` fault becomes a broken pool, anything else an
        :class:`InjectedFault`.
        """
        spec = _res.check("serve.executor.worker")
        if spec is None:
            return
        if spec.mode == "crash":
            raise BrokenProcessPool(
                "injected worker crash at serve.executor.worker"
            )
        raise InjectedFault("serve.executor.worker", spec.mode, 0)

    def _assess_many_threaded(
        self, ids: Sequence[EntityId]
    ) -> Dict[EntityId, Assessment]:
        # injection happens pool-parent-side (not inside the shard
        # lambda) so the per-site fault sequence never depends on thread
        # interleaving — chaos runs must replay bit-identically
        if _res.armed:
            self._inject_worker_fault()
        # contextvars do not flow into pool threads: serialize the
        # request context here and re-attach it per shard, exactly as
        # the process executor does across its harder boundary
        parent_ctx = _ctx.current()
        headers = parent_ctx.to_headers() if parent_ctx is not None else None

        def _run_shard(task: Tuple[int, List[EntityId]]):
            index, shard = task
            if headers is None:
                return [(sid, self.assess(sid)) for sid in shard]
            shard_ctx = _ctx.TraceContext.from_headers(headers)
            with _ctx.explicit_span(
                "serve.executor.shard", ctx=shard_ctx, shard=index, executor="thread"
            ):
                return [(sid, self.assess(sid)) for sid in shard]

        results: Dict[EntityId, Assessment] = {}
        with ThreadPoolExecutor(max_workers=self._workers()) as pool:
            shard_results = pool.map(
                _run_shard,
                list(enumerate(self._shards(ids))),
                timeout=self._retry_policy.deadline_s,
            )
            for shard in shard_results:
                results.update(shard)
        return {sid: results[sid] for sid in ids}

    def _assess_many_process(
        self, ids: Sequence[EntityId]
    ) -> Dict[EntityId, Assessment]:
        self._check_process_preconditions()
        if _res.armed:
            self._inject_worker_fault()
        shards = self._shards(ids)
        parent_ctx = _ctx.current()
        headers = parent_ctx.to_headers() if parent_ctx is not None else None
        tasks = [
            ([self._states[sid].history for sid in shard], headers, index)
            for index, shard in enumerate(shards)
        ]
        results: Dict[EntityId, Assessment] = {}
        with ProcessPoolExecutor(
            max_workers=self._workers(),
            initializer=_init_process_worker,
            initargs=(self._config, _worker_env()),
        ) as pool:
            assessed_shards = pool.map(
                _assess_shard_in_process,
                tasks,
                timeout=self._retry_policy.deadline_s,
            )
            for shard, assessed in zip(shards, assessed_shards):
                for sid, assessment in zip(shard, assessed):
                    results[sid] = assessment
        return {sid: results[sid] for sid in ids}

    # ------------------------------------------------------------------ #
    # maintenance

    def stats(self) -> Dict[str, object]:
        """Serving counters: states, memo hits, calibration reuse."""
        folds = sum(s.n_folds for s in self._states.values())
        verdict_hits = sum(s.n_cache_hits for s in self._states.values())
        extensions = sum(s.n_count_extensions for s in self._states.values())
        recomputes = sum(s.n_count_recomputes for s in self._states.values())
        calibrator = getattr(self._assessor.behavior_test, "calibrator", None)
        payload: Dict[str, object] = {
            "servers": len(self._states),
            "assessments": self.n_assessments,
            "assessment_cache_hits": self.n_assessment_cache_hits,
            "folds": folds,
            "verdict_cache_hits": verdict_hits,
            "count_extensions": extensions,
            "count_recomputes": recomputes,
        }
        if calibrator is not None:
            hits, misses = calibrator.cache_stats
            payload["calibration_hits"] = hits
            payload["calibration_misses"] = misses
            payload["degraded_calibrations"] = calibrator.degraded_calibrations
        if self._calibration_cache is not None:
            payload["calibration_cache"] = self._calibration_cache.stats()
        payload["degradations"] = self.n_degradations
        payload["last_degradation"] = self.last_degradation
        payload["breakers"] = {
            mode: breaker.state for mode, breaker in self._breakers.items()
        }
        payload["executor_retries"] = self._retry_policy.stats()
        return payload

    def save_cache(self, path: Optional[str] = None) -> Optional[str]:
        """Persist the calibration cache (no-op without one attached)."""
        if self._calibration_cache is None:
            return None
        return self._calibration_cache.save(path)

    def close(self) -> None:
        """Detach from the ledger; the service can be garbage collected."""
        if self._ledger is not None and self._ledger_callback is not None:
            self._ledger.unsubscribe(self._ledger_callback)
        self._ledger = None
        self._ledger_callback = None


class _NullTester:
    """Stand-in tester for screening-disabled assessors (never consulted)."""

    name = "null"

    def test(self, history):
        raise AssertionError("null tester must never be consulted")
