"""Persistent LRU store of calibrated ε-thresholds.

Calibration is the dominant cold-start cost of an assessment sweep: every
new ``(m, k, p_hat-bucket)`` combination pays a Monte-Carlo pass.  The
combinations are heavily shared across servers (histories of similar
length and quality) and across runs (the paper's config rarely changes),
so a process-wide LRU with JSON persistence makes repeated calibrations
free — attach one :class:`CalibrationCache` to any number of
:class:`~repro.core.calibration.ThresholdCalibrator` instances via
``calibrator.attach_store(cache)``.

Keys are the full calibration identity
``(m, k, p_key, confidence, n_sets, distance)``, so calibrators with
different settings can safely share one store.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..obs import runtime as _obs

__all__ = ["CalibrationCache"]

#: (m, k, p_key, confidence, n_sets, distance_name)
CacheKey = Tuple[int, int, float, float, int, str]

_SCHEMA = "repro.serve.calibration_cache/v1"


class CalibrationCache:
    """LRU ε-threshold store with optional on-disk JSON persistence.

    Parameters
    ----------
    maxsize:
        Entry budget; least-recently-used entries are evicted beyond it.
    path:
        Default persistence location.  When given and the file exists,
        the cache warm-starts from it immediately; :meth:`save` writes
        back to the same place unless overridden.
    """

    def __init__(self, maxsize: int = 4096, path: Optional[str] = None):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._path = path
        self._entries: "OrderedDict[CacheKey, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        """The entry budget."""
        return self._maxsize

    def get(self, key: CacheKey) -> Optional[float]:
        """The stored threshold for ``key``, refreshing its recency."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            if _obs.enabled:
                _obs.registry.inc("serve.calibration_cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if _obs.enabled:
            _obs.registry.inc("serve.calibration_cache.hits")
        return value

    def put(self, key: CacheKey, value: float) -> None:
        """Store a threshold, evicting the least-recently-used overflow."""
        self._entries[key] = float(value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            if _obs.enabled:
                _obs.registry.inc("serve.calibration_cache.evictions")

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        return {
            "size": len(self._entries),
            "maxsize": self._maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------ #
    # persistence

    def save(self, path: Optional[str] = None) -> str:
        """Write the cache to JSON; returns the path written."""
        target = path or self._path
        if target is None:
            raise ValueError("no path given and the cache has no default path")
        payload = {
            "schema": _SCHEMA,
            "entries": [[list(key), value] for key, value in self._entries.items()],
        }
        directory = os.path.dirname(target)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return target

    def load(self, path: Optional[str] = None) -> int:
        """Merge entries from a JSON snapshot; returns how many loaded.

        Loaded entries count as least-recently-used relative to entries
        already present, and malformed files raise ``ValueError`` rather
        than silently serving wrong thresholds.
        """
        source = path or self._path
        if source is None:
            raise ValueError("no path given and the cache has no default path")
        with open(source, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
            raise ValueError(f"{source}: not a {_SCHEMA} snapshot")
        loaded = 0
        for raw_key, value in payload.get("entries", []):
            m, k, p_key, confidence, n_sets, distance = raw_key
            key = (
                int(m),
                int(k),
                float(p_key),
                float(confidence),
                int(n_sets),
                str(distance),
            )
            if key not in self._entries:
                self._entries[key] = float(value)
                self._entries.move_to_end(key, last=False)
                loaded += 1
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return loaded
