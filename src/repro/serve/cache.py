"""Persistent LRU store of calibrated ε-thresholds.

Calibration is the dominant cold-start cost of an assessment sweep: every
new ``(m, k, p_hat-bucket)`` combination pays a Monte-Carlo pass.  The
combinations are heavily shared across servers (histories of similar
length and quality) and across runs (the paper's config rarely changes),
so a process-wide LRU with JSON persistence makes repeated calibrations
free — attach one :class:`CalibrationCache` to any number of
:class:`~repro.core.calibration.ThresholdCalibrator` instances via
``calibrator.attach_store(cache)``.

Keys are the full calibration identity
``(m, k, p_key, confidence, n_sets, distance)``, so calibrators with
different settings can safely share one store.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..obs import runtime as _obs
from ..resilience import runtime as _res

_log = logging.getLogger(__name__)

__all__ = ["CalibrationCache"]

#: (m, k, p_key, confidence, n_sets, distance_name)
CacheKey = Tuple[int, int, float, float, int, str]

_SCHEMA = "repro.serve.calibration_cache/v1"


class CalibrationCache:
    """LRU ε-threshold store with optional on-disk JSON persistence.

    Parameters
    ----------
    maxsize:
        Entry budget; least-recently-used entries are evicted beyond it.
    path:
        Default persistence location.  When given and the file exists,
        the cache warm-starts from it immediately; :meth:`save` writes
        back to the same place unless overridden.
    """

    def __init__(self, maxsize: int = 4096, path: Optional[str] = None):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._path = path
        self._entries: "OrderedDict[CacheKey, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        """The entry budget."""
        return self._maxsize

    def get(self, key: CacheKey) -> Optional[float]:
        """The stored threshold for ``key``, refreshing its recency."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            if _obs.enabled:
                _obs.registry.inc("serve.calibration_cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if _obs.enabled:
            _obs.registry.inc("serve.calibration_cache.hits")
        return value

    def put(self, key: CacheKey, value: float) -> None:
        """Store a threshold, evicting the least-recently-used overflow."""
        self._entries[key] = float(value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            if _obs.enabled:
                _obs.registry.inc("serve.calibration_cache.evictions")

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        return {
            "size": len(self._entries),
            "maxsize": self._maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------ #
    # persistence

    def save(self, path: Optional[str] = None) -> str:
        """Write the cache to JSON atomically; returns the path written.

        The snapshot lands in a temp file in the target directory and is
        moved into place with :func:`os.replace`, so a crash mid-write
        leaves the previous snapshot intact instead of a truncated file.
        """
        target = path or self._path
        if target is None:
            raise ValueError("no path given and the cache has no default path")
        payload = {
            "schema": _SCHEMA,
            "entries": [[list(key), value] for key, value in self._entries.items()],
        }
        directory = os.path.dirname(target)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory or "."
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp_path, target)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return target

    def load(self, path: Optional[str] = None) -> int:
        """Merge entries from a JSON snapshot; returns how many loaded.

        Loaded entries count as least-recently-used relative to entries
        already present.  A truncated or otherwise corrupt snapshot (a
        crashed writer, a bad disk) yields **0 entries and a warning
        event** — a cold cache recalibrates correctly, whereas aborting
        the service start turns one bad file into an outage.  A file
        that parses but carries a *different schema* still raises
        ``ValueError``: that is a wrong path, not corruption, and
        silently ignoring it would hide a configuration bug.
        """
        source = path or self._path
        if source is None:
            raise ValueError("no path given and the cache has no default path")
        try:
            with open(source, "r", encoding="utf-8") as fh:
                raw = fh.read()
            if _res.armed:
                raw = _res.inject("serve.cache.load", value=raw)
            payload = json.loads(raw)
            if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
                raise _SchemaMismatch(f"{source}: not a {_SCHEMA} snapshot")
            entries = []
            for raw_key, value in payload.get("entries", []):
                m, k, p_key, confidence, n_sets, distance = raw_key
                entries.append(
                    (
                        (
                            int(m),
                            int(k),
                            float(p_key),
                            float(confidence),
                            int(n_sets),
                            str(distance),
                        ),
                        float(value),
                    )
                )
        except FileNotFoundError:
            raise
        except _SchemaMismatch as exc:
            raise ValueError(str(exc)) from None
        except (json.JSONDecodeError, ValueError, TypeError, OSError, _res.InjectedFault) as exc:
            _log.warning("calibration cache %s unreadable (%s); starting cold", source, exc)
            _res.emit("cache_load_failed", site="serve.cache.load", path=str(source), error=repr(exc))
            if _obs.enabled:
                _obs.registry.inc("serve.calibration_cache.load_failures")
            return 0
        loaded = 0
        for key, value in entries:
            if key not in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key, last=False)
                loaded += 1
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return loaded


class _SchemaMismatch(Exception):
    """Internal marker: parsed fine but is not our snapshot format."""
