"""repro.serve — incremental, batched assessment serving.

The serving layer amortizes the two-phase pipeline for continuous
operation: per-server incremental phase-1 state
(:class:`~repro.core.incremental.IncrementalBehaviorState`), a
persistent ε-threshold cache (:class:`CalibrationCache`), and a batch
facade (:class:`AssessmentService`) whose ``assess_many`` answers bulk
trust queries with verdicts bit-identical to per-call
``TwoPhaseAssessor.assess``.  See ``docs/SERVING.md`` for architecture
and tuning knobs.
"""

from .cache import CalibrationCache
from .service import AssessmentService

__all__ = ["AssessmentService", "CalibrationCache"]
