"""``repro`` — the umbrella command line for the whole package.

One front door over the existing entry points plus the observability
tooling::

    repro assess feedback.csv --test multi          # = repro-assess
    repro experiments fig9 --quick                  # = repro-experiments
    repro obs report BENCH_fig9.json                # render a bench artifact
    repro obs report PROFILE_fig9.json              # render a phase profile
    repro obs report run_events.jsonl               # summarize an event log
    repro obs diff baseline.json candidate.json     # bench regression gate
    repro obs diff candidate.json                   # vs committed BENCH_<bench>.json
    repro obs top run_events.jsonl                  # live dashboard of a run
    repro obs trend benchmarks/baselines            # multi-run bench time series
    repro obs validate run_audit.jsonl              # schema-check audit records
    repro obs validate BENCH_fig7.json              # schema-check a bench artifact
    repro obs trace run_spans.jsonl                 # list trace ids in a span log
    repro obs trace run_spans.jsonl 3f2a            # render one trace's span tree
    repro obs slo run_events.jsonl --out BENCH_slo.json  # error-budget report/gate
    repro obs fleet fleet-out/                      # per-node metrics + ring consistency
    repro explain mallory run_audit.jsonl           # why was this server rejected?
    repro health                                    # live breaker/quarantine/retry state
    repro health run_events.jsonl                   # resilience events of a finished run
    repro --log-level DEBUG assess feedback.csv     # opt into repro.* logging

``assess`` and ``experiments`` forward their remaining arguments
verbatim to the dedicated parsers, so every flag documented there works
here unchanged.  ``REPRO_LOG_LEVEL`` in the environment acts as the
default for ``--log-level``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from . import obs
from .cli import main as assess_main
from .experiments.__main__ import main as experiments_main

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-phase trust assessment toolkit (honest-player modeling)",
    )
    parser.add_argument(
        "--log-level",
        type=str,
        default=None,
        help=(
            "enable repro.* logging at this level (DEBUG, INFO, ...); "
            "defaults to $REPRO_LOG_LEVEL"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_assess = sub.add_parser(
        "assess",
        help="two-phase assessment of a feedback log (see repro-assess)",
        add_help=False,
    )
    p_assess.add_argument("rest", nargs=argparse.REMAINDER)

    p_exp = sub.add_parser(
        "experiments",
        help="regenerate the paper's figures (see repro-experiments)",
        add_help=False,
    )
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)

    p_obs = sub.add_parser("obs", help="observability artifact tooling")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_report = obs_sub.add_parser(
        "report", help="render a BENCH_*.json, JSONL event log, or artifact directory"
    )
    p_report.add_argument(
        "artifact", help="path to a bench JSON, JSONL event log, or directory"
    )
    p_diff = obs_sub.add_parser(
        "diff", help="compare two bench artifacts; exit 2 on regression"
    )
    p_diff.add_argument("baseline", help="baseline BENCH_*.json (or the candidate)")
    p_diff.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="candidate BENCH_*.json; omitted, the single path is the "
        "candidate and the committed BENCH_<bench>.json in the current "
        "directory is the baseline",
    )
    p_diff.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional slowdown per benchmark (default: 0.20)",
    )
    p_top = obs_sub.add_parser(
        "top", help="tail a live run's JSONL event log as a text dashboard"
    )
    p_top.add_argument("events", help="path to the run's JSONL event log")
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2.0)",
    )
    p_top.add_argument(
        "--once", action="store_true", help="render one snapshot and exit"
    )
    p_trend = obs_sub.add_parser(
        "trend",
        help="per-metric time series across a directory of BENCH_*.json runs",
    )
    p_trend.add_argument("directory", help="directory holding BENCH_*.json files")
    p_trend.add_argument(
        "--bench", default=None, help="only consider artifacts for this bench name"
    )
    p_trend.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="flag (exit 2) when the latest point exceeds the median of "
        "earlier points by this fraction (default: 0.20)",
    )
    p_validate = obs_sub.add_parser(
        "validate",
        help="schema-validate an artifact: JSONL audit log, BENCH_*.json, "
        "or PROFILE_*.json",
    )
    p_validate.add_argument("artifact", help="path to the artifact")
    p_trace = obs_sub.add_parser(
        "trace",
        help="render one trace's span tree from a JSONL span log "
        "(or list the trace ids it holds)",
    )
    p_trace.add_argument("spans", help="path to a span JSONL file (tracing_session)")
    p_trace.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace id (a unique prefix suffices); omitted, lists all trace ids",
    )
    p_trace.add_argument(
        "--otlp",
        default=None,
        metavar="PATH",
        help="additionally write the spans as OTLP/JSON to PATH",
    )
    p_slo = obs_sub.add_parser(
        "slo",
        help="error-budget/burn-rate report from a run's metric snapshots; "
        "exit 2 when any budget is burning",
    )
    p_slo.add_argument(
        "source",
        help="JSONL event log with metric snapshots, or an existing BENCH_slo.json",
    )
    p_slo.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the evaluation as a BENCH_slo.json artifact to PATH",
    )
    p_slo.add_argument(
        "--latency-threshold",
        type=float,
        default=0.050,
        metavar="SECONDS",
        help="latency SLO bound for serve.assess.seconds (default: 0.050)",
    )
    p_slo.add_argument(
        "--latency-objective",
        type=float,
        default=0.99,
        help="fraction of assessments that must meet the bound (default: 0.99)",
    )

    p_tsdb = obs_sub.add_parser(
        "tsdb",
        help="inspect a dumped metric time-series store: list series, "
        "query one with downsampling, or export as Prometheus text",
    )
    p_tsdb.add_argument("store", help="path to a TSDB JSONL dump (e.g. --tsdb-dir)")
    p_tsdb.add_argument(
        "series",
        nargs="?",
        default=None,
        help="series to query, as name or name.field (e.g. "
        "serve.assess.seconds.p95); omitted, lists every series",
    )
    p_tsdb.add_argument(
        "--start", type=float, default=None, help="window start (unix seconds)"
    )
    p_tsdb.add_argument(
        "--end", type=float, default=None, help="window end (unix seconds)"
    )
    p_tsdb.add_argument(
        "--step",
        type=float,
        default=None,
        help="downsample onto this epoch-aligned bucket width (seconds)",
    )
    p_tsdb.add_argument(
        "--agg",
        default="last",
        choices=("last", "mean", "min", "max", "sum"),
        help="bucket reducer used with --step (default: last)",
    )
    p_tsdb.add_argument(
        "--export-prom",
        default=None,
        metavar="PATH",
        help="write the newest retained snapshot as Prometheus exposition "
        "text (timestamped with the snapshot instant); '-' for stdout",
    )
    p_fleet = obs_sub.add_parser(
        "fleet",
        help="fleet view of a p2p run: topology table, per-node metrics "
        "with sparklines, ring-consistency report; exit 2 when the ring "
        "is inconsistent",
    )
    p_fleet.add_argument(
        "source",
        help="FLEET_*.json artifact, or a directory holding one "
        "(e.g. the --fleet-dir of a p2p_scale run; a TSDB_fleet.jsonl "
        "sibling feeds the sparklines)",
    )
    p_fleet.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write a schema-validated BENCH_fleet.json to PATH",
    )
    p_postmortem = obs_sub.add_parser(
        "postmortem",
        help="render a flight-recorder post-mortem bundle (POSTMORTEM_*.json)",
    )
    p_postmortem.add_argument("bundle", help="path to the bundle")
    p_postmortem.add_argument(
        "--tail",
        type=int,
        default=20,
        help="events to show from the end of the ring (default: 20)",
    )

    p_explain = sub.add_parser(
        "explain", help="explain a server's latest audit verdict from a JSONL log"
    )
    p_explain.add_argument("server", help="server id to explain")
    p_explain.add_argument("audit_log", help="JSONL event log containing audit records")

    p_health = sub.add_parser(
        "health",
        help="resilience health: breaker states, quarantine depth, retry counters",
    )
    p_health.add_argument(
        "events",
        nargs="?",
        default=None,
        help="optional JSONL event log to summarize instead of the live "
        "in-process registry (which is empty unless this process built "
        "serving components)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script.

    Wraps the dispatcher in the BrokenPipeError guard so *every*
    subcommand — ``obs report | head`` included, however it was
    launched — exits quietly with the conventional SIGPIPE status
    instead of a traceback.
    """
    try:
        return _run(argv)
    except BrokenPipeError:
        # the reader closed the pipe mid-print: point stdout at devnull
        # so the interpreter's exit flush stays quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


def _run(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log_level = args.log_level or os.environ.get("REPRO_LOG_LEVEL")
    if log_level:
        obs.configure_logging(log_level)
    if args.command == "assess":
        return assess_main(args.rest)
    if args.command == "experiments":
        return experiments_main(args.rest)
    if args.command == "explain":
        return _explain(args.server, args.audit_log)
    if args.command == "health":
        return _health(args.events)
    if args.obs_command == "diff":
        return _obs_diff(args.baseline, args.candidate, args.max_regression)
    if args.obs_command == "top":
        try:
            return obs.tail_dashboard(
                args.events, interval=args.interval, once=args.once
            )
        except BrokenPipeError:
            raise
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.obs_command == "trend":
        return _obs_trend(args.directory, args.bench, args.max_regression)
    if args.obs_command == "validate":
        return _obs_validate(args.artifact)
    if args.obs_command == "trace":
        return _obs_trace(args.spans, args.trace_id, args.otlp)
    if args.obs_command == "slo":
        return _obs_slo(
            args.source, args.out, args.latency_threshold, args.latency_objective
        )
    if args.obs_command == "tsdb":
        return _obs_tsdb(
            args.store,
            args.series,
            start=args.start,
            end=args.end,
            step=args.step,
            agg=args.agg,
            export_prom=args.export_prom,
        )
    if args.obs_command == "fleet":
        return _obs_fleet(args.source, args.out)
    if args.obs_command == "postmortem":
        return _obs_postmortem(args.bundle, args.tail)
    # obs report
    try:
        print(obs.render_artifact(args.artifact))
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _explain(server: str, audit_log: str) -> int:
    try:
        records = obs.read_audit_jsonl(audit_log)
        print(obs.explain_server(records, server))
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _health(events: Optional[str]) -> int:
    from . import resilience

    if events is None:
        print(resilience.render_health(resilience.health_report()))
        return 0
    try:
        records = obs.read_events(events)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = resilience.summarize_events(records)
    print(resilience.render_event_summary(summary))
    return 0


def _obs_diff(baseline: str, candidate: Optional[str], max_regression: float) -> int:
    try:
        if candidate is None:
            # single-path form: the argument is the candidate; diff it
            # against the committed BENCH_<bench>.json baseline in cwd.
            cand_payload = obs.read_bench_json(baseline)
            default = Path(f"BENCH_{cand_payload['bench']}.json")
            if not default.exists():
                print(
                    f"error: no committed baseline {default} for bench "
                    f"{cand_payload['bench']!r}; pass an explicit baseline",
                    file=sys.stderr,
                )
                return 1
            base_payload = obs.read_bench_json(default)
        else:
            base_payload = obs.read_bench_json(baseline)
            cand_payload = obs.read_bench_json(candidate)
        diff = obs.compare_bench_payloads(
            base_payload, cand_payload, max_regression=max_regression
        )
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(obs.render_bench_diff(diff))
    return 0 if diff["ok"] else 2


def _obs_trend(directory: str, bench: Optional[str], max_regression: float) -> int:
    try:
        history = obs.load_bench_history(directory, bench=bench)
        trend = obs.bench_trend(history, max_regression=max_regression)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(obs.render_bench_trend(trend))
    return 0 if trend["ok"] else 2


def _obs_trace(spans_path: str, trace_id: Optional[str], otlp: Optional[str]) -> int:
    import json

    try:
        spans = obs.read_span_jsonl(spans_path)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if otlp is not None:
        with open(otlp, "w", encoding="utf-8") as handle:
            json.dump(obs.spans_to_otlp(spans), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote OTLP JSON export to {otlp}")
    if trace_id is None:
        ids = obs.trace_ids(spans)
        if not ids:
            print(f"error: no spans in {spans_path}", file=sys.stderr)
            return 1
        counts: dict = {}
        for span in spans:
            counts[span["trace_id"]] = counts.get(span["trace_id"], 0) + 1
        print(f"{len(ids)} trace(s) in {spans_path}:")
        for tid in ids:
            print(f"  {tid}  ({counts[tid]} spans)")
        return 0
    try:
        print(obs.render_trace_tree(spans, trace_id))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _obs_slo(
    source: str,
    out: Optional[str],
    latency_threshold: float,
    latency_objective: float,
) -> int:
    from .obs import slo as _slo

    path = Path(source)
    if path.suffix.lower() == ".json":
        # an already-written BENCH_slo.json: validate and re-report burn
        try:
            payload = obs.read_bench_json(path)
            obs.validate_slo_payload(payload)
        except BrokenPipeError:
            raise
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        burning = [
            str(row["name"])
            for row in payload["results"]
            if row["slo"].get("burning")
        ]
        total = len(payload["results"])
        if burning:
            print(f"{source}: {len(burning)}/{total} budgets burning: " + ", ".join(burning))
            return 2
        print(f"{source}: all {total} SLOs within budget")
        return 0
    specs = _slo.default_serve_slos(
        latency_threshold_s=latency_threshold,
        latency_objective=latency_objective,
    )
    try:
        evaluation = _slo.evaluate_events(source, specs)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(obs.render_slo_report(evaluation))
    if out is not None:
        payload = obs.write_bench_json(
            out,
            "slo",
            obs.evaluation_to_bench_rows(evaluation),
            meta=obs.run_metadata(source=str(source)),
        )
        obs.validate_slo_payload(payload)
        print(f"wrote {out}")
    return 0 if evaluation.ok else 2


def _obs_tsdb(
    store_path: str,
    series: Optional[str],
    *,
    start: Optional[float],
    end: Optional[float],
    step: Optional[float],
    agg: str,
    export_prom: Optional[str],
) -> int:
    from .obs import tsdb as _tsdb

    try:
        store = _tsdb.TimeSeriesStore.load(store_path)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if export_prom is not None:
        latest = store.latest_time()
        snapshot = store.snapshot_at(latest)
        stamp = None if latest is None else int(latest * 1000)
        text = obs.render_prometheus(
            _SnapshotRegistry(snapshot), timestamp_ms=stamp
        )
        if export_prom == "-":
            sys.stdout.write(text)
        else:
            with open(export_prom, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {export_prom}")
        return 0
    if series is None:
        print(_tsdb.render_series_table(store))
        return 0
    # a bare family name selects every series under it (all fields and
    # label sets); a fully rendered key selects exactly one
    matches = [
        key for key in store.series() if key.render() == series or key.name == series
    ]
    if not matches:
        known = ", ".join(k.render() for k in store.series()[:8])
        print(
            f"error: no series {series!r} in {store_path} (known: {known}, ...)",
            file=sys.stderr,
        )
        return 1
    for key in matches:
        samples = store.query(
            key.name,
            labels=dict(key.labels),
            field=key.field,
            start=start,
            end=end,
            step=step,
            agg=agg,
        )
        print(f"{key.render()}  ({len(samples)} samples)")
        for t, value in samples:
            print(f"  {t:.3f}  {value:.6g}")
    return 0


class _SnapshotRegistry:
    """A snapshot-shaped mapping wearing the registry's ``collect()``
    face, so the Prometheus renderer works on reconstructed history."""

    def __init__(self, snapshot):
        self._snapshot = snapshot

    def collect(self):
        samples = []
        for name in sorted(self._snapshot):
            for entry in self._snapshot[name]:
                labels = tuple(sorted(
                    (str(k), str(v)) for k, v in (entry.get("labels") or {}).items()
                ))
                kind = str(entry.get("kind", "gauge"))
                if kind == "histogram":
                    samples.append(
                        obs.MetricSample(
                            name, labels, kind, None, dict(entry.get("summary") or {})
                        )
                    )
                else:
                    samples.append(
                        obs.MetricSample(name, labels, kind, entry.get("value"))
                    )
        return samples


def _obs_fleet(source: str, out: Optional[str]) -> int:
    from .obs import tsdb as _tsdb

    path = Path(source)
    store_path = None
    try:
        if path.is_dir():
            candidates = sorted(path.glob("FLEET_*.json"))
            if not candidates:
                print(f"error: no FLEET_*.json in {source}", file=sys.stderr)
                return 1
            fleet_path = candidates[0]
        else:
            fleet_path = path
        sibling = fleet_path.parent / "TSDB_fleet.jsonl"
        if sibling.exists():
            store_path = sibling
        payload = obs.read_fleet_json(fleet_path)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    store = None
    if store_path is not None:
        try:
            store = _tsdb.TimeSeriesStore.load(store_path)
        except BrokenPipeError:
            raise
        except (OSError, ValueError) as exc:
            print(f"notice: ignoring {store_path}: {exc}", file=sys.stderr)
    print(obs.render_fleet(payload, store=store))
    if out is not None:
        bench = obs.write_bench_json(
            out,
            "fleet",
            obs.fleet_to_bench_rows(payload),
            meta=payload.get("meta") or obs.run_metadata(source=str(fleet_path)),
        )
        obs.validate_fleet_bench_payload(bench)
        print(f"wrote {out}")
    return 0 if payload["consistency"].get("ok") else 2


def _obs_postmortem(bundle_path: str, tail: int) -> int:
    try:
        bundle = obs.read_postmortem(bundle_path)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(obs.render_postmortem(bundle, tail=tail))
    return 0


def _obs_validate(artifact: str) -> int:
    import json

    path = Path(artifact)
    if path.suffix.lower() == ".json":
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except BrokenPipeError:
            raise
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for kind, validate in (
            ("bench", obs.validate_bench_payload),
            ("profile", obs.validate_profile_payload),
            ("fleet", obs.validate_fleet_payload),
            ("postmortem", obs.validate_postmortem_bundle),
        ):
            try:
                validate(payload)
            except ValueError:
                continue
            print(f"{artifact}: valid {kind} artifact")
            return 0
        print(
            f"error: {artifact} is not a valid bench, profile, fleet, "
            f"or postmortem artifact",
            file=sys.stderr,
        )
        return 1
    try:
        records = obs.read_audit_jsonl(artifact)
    except BrokenPipeError:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"error: no audit records in {artifact}", file=sys.stderr)
        return 1
    print(f"{artifact}: {len(records)} audit record(s), all valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
