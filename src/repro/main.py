"""``repro`` — the umbrella command line for the whole package.

One front door over the existing entry points plus the observability
tooling::

    repro assess feedback.csv --test multi          # = repro-assess
    repro experiments fig9 --quick                  # = repro-experiments
    repro obs report BENCH_fig9.json                # render a bench artifact
    repro obs report run_events.jsonl               # summarize an event log
    repro --log-level DEBUG assess feedback.csv     # opt into repro.* logging

``assess`` and ``experiments`` forward their remaining arguments
verbatim to the dedicated parsers, so every flag documented there works
here unchanged.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import obs
from .cli import main as assess_main
from .experiments.__main__ import main as experiments_main

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-phase trust assessment toolkit (honest-player modeling)",
    )
    parser.add_argument(
        "--log-level",
        type=str,
        default=None,
        help="enable repro.* logging at this level (DEBUG, INFO, ...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_assess = sub.add_parser(
        "assess",
        help="two-phase assessment of a feedback log (see repro-assess)",
        add_help=False,
    )
    p_assess.add_argument("rest", nargs=argparse.REMAINDER)

    p_exp = sub.add_parser(
        "experiments",
        help="regenerate the paper's figures (see repro-experiments)",
        add_help=False,
    )
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)

    p_obs = sub.add_parser("obs", help="observability artifact tooling")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_report = obs_sub.add_parser(
        "report", help="render a BENCH_*.json or JSONL event log"
    )
    p_report.add_argument(
        "artifact", help="path to a bench JSON or JSONL event-log file"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        obs.configure_logging(args.log_level)
    if args.command == "assess":
        return assess_main(args.rest)
    if args.command == "experiments":
        return experiments_main(args.rest)
    # obs report
    try:
        print(obs.render_artifact(args.artifact))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
