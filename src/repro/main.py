"""``repro`` — the umbrella command line for the whole package.

One front door over the existing entry points plus the observability
tooling::

    repro assess feedback.csv --test multi          # = repro-assess
    repro experiments fig9 --quick                  # = repro-experiments
    repro obs report BENCH_fig9.json                # render a bench artifact
    repro obs report run_events.jsonl               # summarize an event log
    repro obs diff baseline.json candidate.json     # bench regression gate
    repro obs validate run_audit.jsonl              # schema-check audit records
    repro explain mallory run_audit.jsonl           # why was this server rejected?
    repro --log-level DEBUG assess feedback.csv     # opt into repro.* logging

``assess`` and ``experiments`` forward their remaining arguments
verbatim to the dedicated parsers, so every flag documented there works
here unchanged.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import obs
from .cli import main as assess_main
from .experiments.__main__ import main as experiments_main

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-phase trust assessment toolkit (honest-player modeling)",
    )
    parser.add_argument(
        "--log-level",
        type=str,
        default=None,
        help="enable repro.* logging at this level (DEBUG, INFO, ...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_assess = sub.add_parser(
        "assess",
        help="two-phase assessment of a feedback log (see repro-assess)",
        add_help=False,
    )
    p_assess.add_argument("rest", nargs=argparse.REMAINDER)

    p_exp = sub.add_parser(
        "experiments",
        help="regenerate the paper's figures (see repro-experiments)",
        add_help=False,
    )
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)

    p_obs = sub.add_parser("obs", help="observability artifact tooling")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_report = obs_sub.add_parser(
        "report", help="render a BENCH_*.json, JSONL event log, or artifact directory"
    )
    p_report.add_argument(
        "artifact", help="path to a bench JSON, JSONL event log, or directory"
    )
    p_diff = obs_sub.add_parser(
        "diff", help="compare two bench artifacts; exit 2 on regression"
    )
    p_diff.add_argument("baseline", help="baseline BENCH_*.json")
    p_diff.add_argument("candidate", help="candidate BENCH_*.json")
    p_diff.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional slowdown per benchmark (default: 0.20)",
    )
    p_validate = obs_sub.add_parser(
        "validate", help="schema-validate every audit record in a JSONL log"
    )
    p_validate.add_argument("artifact", help="path to a JSONL event log")

    p_explain = sub.add_parser(
        "explain", help="explain a server's latest audit verdict from a JSONL log"
    )
    p_explain.add_argument("server", help="server id to explain")
    p_explain.add_argument("audit_log", help="JSONL event log containing audit records")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        obs.configure_logging(args.log_level)
    if args.command == "assess":
        return assess_main(args.rest)
    if args.command == "experiments":
        return experiments_main(args.rest)
    if args.command == "explain":
        return _explain(args.server, args.audit_log)
    if args.obs_command == "diff":
        return _obs_diff(args.baseline, args.candidate, args.max_regression)
    if args.obs_command == "validate":
        return _obs_validate(args.artifact)
    # obs report
    try:
        print(obs.render_artifact(args.artifact))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _explain(server: str, audit_log: str) -> int:
    try:
        records = obs.read_audit_jsonl(audit_log)
        print(obs.explain_server(records, server))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _obs_diff(baseline: str, candidate: str, max_regression: float) -> int:
    import json

    try:
        with open(baseline, "r", encoding="utf-8") as fh:
            base_payload = json.load(fh)
        with open(candidate, "r", encoding="utf-8") as fh:
            cand_payload = json.load(fh)
        diff = obs.compare_bench_payloads(
            base_payload, cand_payload, max_regression=max_regression
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(obs.render_bench_diff(diff))
    return 0 if diff["ok"] else 2


def _obs_validate(artifact: str) -> int:
    try:
        records = obs.read_audit_jsonl(artifact)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"error: no audit records in {artifact}", file=sys.stderr)
        return 1
    print(f"{artifact}: {len(records)} audit record(s), all valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
