"""Replicated sharded assessment over the P2P substrate.

The paper's assessment algebra is a pure fold over per-server feedback
streams, which makes it shard-friendly: partition servers across nodes
by consistent hashing, replicate each server's ledger on its owner's
successor set, and any replica can answer for its servers.  This
package supplies that deployment shape:

* :class:`~repro.cluster.partition.HashRingView` — preference lists by
  consistent hashing on the Chord identifier circle;
* :class:`~repro.cluster.node.ClusterNode` — one member: Chord overlay
  node + private ledger + incremental assessment shard + hint store;
* :class:`~repro.cluster.antientropy.MerkleTree` — replica comparison
  in O(log n) exchanged hashes;
* :class:`~repro.cluster.service.ClusterAssessmentService` — the
  facade: quorum reads with read-repair, hinted handoff, anti-entropy,
  and snapshot-shipping membership changes.

See ``docs/CLUSTER.md`` for the full protocol walk-through and the
degradation matrix.
"""

from .antientropy import MerkleTree
from .node import ClusterNode, ShardState, event_digest
from .partition import HashRingView
from .service import ClusterAssessmentService, PeerUnavailable

__all__ = [
    "ClusterAssessmentService",
    "ClusterNode",
    "HashRingView",
    "MerkleTree",
    "PeerUnavailable",
    "ShardState",
    "event_digest",
]
