"""Replicated sharded assessment: the cluster facade.

:class:`ClusterAssessmentService` presents the single-node
:class:`~repro.serve.AssessmentService` surface (``record_batch`` /
``assess_many``) over a fleet of :class:`~repro.cluster.node.ClusterNode`
shards.  Servers are consistent-hashed onto a Chord identifier circle
(:class:`~repro.cluster.partition.HashRingView`) and replicated on the
K-member successor set of their owner; the facade is the coordinator:

* **writes** go to all K replicas of a server's preference list; an
  unreachable replica's share is parked on a *hint holder* (the first
  alive member past the preference list) and replayed when the replica
  recovers — hinted handoff;
* **reads** are quorum reads: replicas are asked in successor order
  until R of K answer; divergent replica digests trigger *read-repair*
  (pull, merge by event digest, reset the stragglers) before the
  verdict is returned; fewer than R answers degrade the verdict
  (``Assessment.degraded=True``), zero answers yield the fail-safe
  UNTRUSTED verdict rather than an exception;
* **anti-entropy** compares replicas pairwise through Merkle trees over
  per-server content digests and repairs exactly the divergent servers;
* **membership changes** ship binlog-packed ledger snapshots to the
  new replica set, then replay the log tail recorded after the
  snapshot cut.

Every inter-shard RPC runs under the resilience stack: a shared
:class:`~repro.resilience.retry.RetryPolicy` absorbs message loss, a
per-peer :class:`~repro.resilience.breaker.CircuitBreaker` stops
hammering dead members, and every hop carries the ambient
:class:`~repro.obs.context.TraceContext` so cluster traffic lands in
the fleet view alongside single-node serving.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.calibration import ThresholdCalibrator
from ..core.config import AssessorConfig
from ..core.verdict import Assessment, AssessmentStatus
from ..feedback.records import Feedback
from ..obs import context as _ctx
from ..obs import runtime as _obs
from ..p2p.network import NodeUnreachable, SimulatedNetwork
from ..resilience import runtime as _res
from ..resilience.breaker import CircuitBreaker
from ..resilience.health import GLOBAL_HEALTH
from ..resilience.retry import RetryExhausted, RetryPolicy
from .node import ClusterNode, ShardState, event_digest
from .partition import HashRingView

__all__ = ["ClusterAssessmentService", "PeerUnavailable"]


class PeerUnavailable(RuntimeError):
    """A request to a cluster peer timed out (retryable)."""


class _RingAdapter:
    """Duck-typed ring view for :mod:`repro.obs.fleet` topology capture."""

    def __init__(self, cluster: "ClusterAssessmentService"):
        self._cluster = cluster

    @property
    def nodes(self) -> Dict[str, Any]:
        return {
            name: member.chord
            for name, member in self._cluster._members.items()
            if name not in self._cluster._dead
        }

    @property
    def _m(self) -> int:
        return self._cluster._m_bits

    @property
    def _replicas(self) -> int:
        return self._cluster._replicas


class ClusterAssessmentService:
    """Assessment over N shards with K-way replication and R-quorum reads."""

    def __init__(
        self,
        config: AssessorConfig,
        *,
        calibrator: Optional[ThresholdCalibrator] = None,
        n_nodes: int = 4,
        replicas: int = 3,
        read_quorum: int = 2,
        network: Optional[SimulatedNetwork] = None,
        m_bits: int = 32,
        node_prefix: str = "shard",
        name: str = "cluster",
        retry_policy: Optional[RetryPolicy] = None,
        stabilize_rounds: int = 3,
    ):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if not 1 <= read_quorum <= replicas:
            raise ValueError(
                f"read_quorum must lie in [1, {replicas}], got {read_quorum}"
            )
        self.name = name
        self._config = config
        # ONE calibrator across every shard (and any single-node
        # reference built with it): the ε-threshold Monte-Carlo draws
        # from a shared stream, so sharing the calibrator's cache is
        # what makes cluster and single-node verdicts bit-identical.
        self._calibrator = calibrator or ThresholdCalibrator(
            confidence=config.test_config.confidence,
            n_sets=config.test_config.calibration_sets,
            distance=config.test_config.distance,
            p_quantum=config.test_config.p_quantum,
        )
        self._network = network or SimulatedNetwork(name=f"{name}-net")
        self._m_bits = m_bits
        self._replicas = replicas
        self.read_quorum = read_quorum
        self._retry = retry_policy or RetryPolicy(
            max_attempts=3,
            base_delay=0.0,
            retry_on=(PeerUnavailable,),
            name=f"{name}.rpc",
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._members: Dict[str, ClusterNode] = {}
        self._dead: set = set()
        #: every server ever recorded, in first-appearance order (the
        #: default assess_many batch, and the anti-entropy sweep domain)
        self._servers: Dict[str, None] = {}
        for i in range(n_nodes):
            self._spawn(f"{node_prefix}-{i:02d}")
            # stabilize per join (as ChordRing does) — one sweep at the
            # end does not converge pointers for every join order
            self._stabilize(rounds=stabilize_rounds)
        self._ring = self._build_ring()
        GLOBAL_HEALTH.register_cluster(self)

    # ------------------------------------------------------------------ #
    # membership plumbing

    def _spawn(self, name: str) -> ClusterNode:
        node = ClusterNode(
            name,
            self._network,
            m_bits=self._m_bits,
            replicas=self._replicas,
            config=self._config,
            calibrator=self._calibrator,
        )
        bootstrap = self._any_alive(exclude=name)
        if bootstrap is not None:
            node.chord.join(bootstrap)
        self._members[name] = node
        return node

    def _build_ring(self) -> HashRingView:
        return HashRingView(
            self._members, m_bits=self._m_bits, replicas=self._replicas
        )

    def _alive_members(self) -> List[str]:
        return [
            name
            for name in self._members
            if name not in self._dead and self._network.is_alive(name)
        ]

    def _any_alive(self, *, exclude: Optional[str] = None) -> Optional[str]:
        for name in self._members:
            if name != exclude and name not in self._dead and self._network.is_alive(name):
                return name
        return None

    def _stabilize(self, rounds: int = 3) -> None:
        for _ in range(rounds):
            alive = self._alive_members()
            for name in alive:
                self._members[name].chord.stabilize()
            for name in alive:
                self._members[name].chord.fix_fingers()

    @property
    def ring(self) -> _RingAdapter:
        """Duck-typed view for ``topology_snapshot`` / ``check_ring``."""
        return _RingAdapter(self)

    @property
    def network(self) -> SimulatedNetwork:
        return self._network

    @property
    def members(self) -> List[str]:
        return list(self._members)

    @property
    def servers(self) -> List[str]:
        return list(self._servers)

    # ------------------------------------------------------------------ #
    # the RPC layer: retry + per-peer breaker + timeout semantics

    def _breaker(self, peer: str) -> CircuitBreaker:
        breaker = self._breakers.get(peer)
        if breaker is None:
            breaker = self._breakers[peer] = CircuitBreaker(
                name=f"{self.name}.peer.{peer}"
            )
        return breaker

    def _send_once(self, dst: str, message_type: str, payload: Dict[str, Any]):
        reply = self._network.send(dst, message_type, payload)
        if reply is None:
            # dropped request or reply: retryable timeout.
            # NodeUnreachable propagates — a dead peer does not come
            # back because we ask again; the breaker handles it.
            raise PeerUnavailable(dst)
        return reply

    def _call(
        self, dst: str, message_type: str, payload: Dict[str, Any]
    ) -> Optional[Any]:
        """One guarded RPC; ``None`` means the peer could not serve it."""
        breaker = self._breaker(dst)
        if not breaker.allow():
            _res.emit(
                "cluster_rpc_failed",
                node=dst,
                type=message_type,
                reason="breaker_open",
            )
            return None
        try:
            reply = self._retry.call(self._send_once, dst, message_type, payload)
        except (RetryExhausted, NodeUnreachable) as exc:
            breaker.record_failure()
            _res.emit(
                "cluster_rpc_failed",
                node=dst,
                type=message_type,
                reason=type(exc).__name__,
            )
            if _obs.enabled:
                _obs.registry.inc("cluster.rpc.failed", type=message_type)
            return None
        breaker.record_success()
        return reply

    # ------------------------------------------------------------------ #
    # write path

    def record_batch(self, feedbacks: Iterable[Feedback]) -> Dict[str, int]:
        """Route a feedback batch to every replica of each server.

        Returns ``{"events", "servers", "replica_writes", "hinted"}``.
        An unreachable replica never loses its share: the events park on
        a hint holder and replay on recovery (or, failing even that, the
        loss is emitted as ``cluster_hint_lost`` — surviving replicas
        still hold the data, anti-entropy restores the factor later).
        """
        by_server: Dict[str, List[Feedback]] = {}
        for feedback in feedbacks:
            by_server.setdefault(feedback.server, []).append(feedback)
            self._servers.setdefault(feedback.server, None)
        ctx = _ctx.current()
        if ctx is None and _obs.enabled:
            ctx = _ctx.new_root(op="cluster_record_batch")
        writes = hinted = 0
        with _ctx.use(ctx):
            with _obs.span("cluster.record_batch", servers=len(by_server)):
                groups = self._ring.partition(list(by_server))
                for pref, servers in groups.items():
                    events = [fb for s in servers for fb in by_server[s]]
                    for member in pref:
                        reply = self._call(
                            member, "cluster_record", {"events": events}
                        )
                        if reply is None:
                            hinted += self._hint(member, pref, events)
                        else:
                            writes += 1
        return {
            "events": sum(len(v) for v in by_server.values()),
            "servers": len(by_server),
            "replica_writes": writes,
            "hinted": hinted,
        }

    def _hint(
        self, target: str, pref: Tuple[str, ...], events: List[Feedback]
    ) -> int:
        """Park a failed replica write on the first member past ``pref``."""
        holder = self._hint_holder(pref)
        reply = None
        if holder is not None:
            reply = self._call(
                holder, "cluster_hint_store", {"target": target, "events": events}
            )
        if reply is None:
            _res.emit(
                "cluster_hint_lost", target=target, events=len(events)
            )
            return 0
        _res.emit(
            "cluster_hint_stored",
            holder=holder,
            target=target,
            events=len(events),
        )
        return len(events)

    def _hint_holder(self, pref: Tuple[str, ...]) -> Optional[str]:
        members = self._ring.members  # ring order
        start = members.index(pref[0])
        n = len(members)
        for i in range(1, n):
            candidate = members[(start + i) % n]
            if candidate in pref or candidate in self._dead:
                continue
            if self._network.is_alive(candidate):
                return candidate
        return None

    # ------------------------------------------------------------------ #
    # read path

    def assess_many(
        self, server_ids: Optional[Iterable[str]] = None
    ) -> Dict[str, Assessment]:
        """Quorum-read assessments for a batch (default: every server).

        Healthy cluster: verdicts are bit-identical to a single-node
        service sharing this cluster's calibrator.  Replicas lost below
        the read quorum degrade the verdict; a server with *no* reachable
        replica gets the fail-safe UNTRUSTED verdict — never an
        exception.  Unknown servers raise :class:`KeyError`.
        """
        ids = list(server_ids) if server_ids is not None else list(self._servers)
        unknown = [s for s in ids if s not in self._servers]
        if unknown:
            raise KeyError(f"unknown servers {unknown[:3]!r}")
        ctx = _ctx.current()
        if ctx is None and _obs.enabled:
            ctx = _ctx.new_root(op="cluster_assess_many")
        results: Dict[str, Assessment] = {}
        with _ctx.use(ctx):
            if _obs.enabled:
                _obs.registry.inc("cluster.requests")
            with _obs.span("cluster.assess_many", batch=len(ids)):
                for pref, group in self._ring.partition(ids).items():
                    results.update(self._assess_group(pref, group))
        return {s: results[s] for s in ids}

    def _assess_group(
        self, pref: Tuple[str, ...], servers: List[str]
    ) -> Dict[str, Assessment]:
        answers: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {
            s: [] for s in servers
        }
        # pass 1 — the preference list in successor order, asking each
        # replica only about the servers still short of quorum
        for member in pref:
            needed = [s for s in servers if len(answers[s]) < self.read_quorum]
            if not needed:
                break
            reply = self._call(member, "cluster_assess", {"servers": needed})
            if reply is None:
                continue
            for server, result in reply["results"].items():
                if result["n"] > 0:
                    answers[server].append((member, result))
        # pass 2 — servers with no answer at all: scan members outside
        # the preference list (stale copies from an older ring layout
        # beat a fail-safe verdict)
        orphans = [s for s in servers if not answers[s]]
        if orphans:
            for member in self._ring.members:
                if member in pref or member in self._dead:
                    continue
                still = [s for s in orphans if not answers[s]]
                if not still:
                    break
                reply = self._call(member, "cluster_assess", {"servers": still})
                if reply is None:
                    continue
                for server, result in reply["results"].items():
                    if result["n"] > 0:
                        answers[server].append((member, result))
        return {
            s: self._finalize(s, pref, answers[s]) for s in servers
        }

    def _finalize(
        self,
        server: str,
        pref: Tuple[str, ...],
        answers: List[Tuple[str, Dict[str, Any]]],
    ) -> Assessment:
        if not answers:
            _res.emit("cluster_quorum_lost", server=server)
            if _obs.enabled:
                _obs.registry.inc("cluster.quorum_lost")
            return Assessment(
                status=AssessmentStatus.UNTRUSTED,
                trust_value=None,
                behavior=None,
                server=server,
                degraded=True,
            )
        digests = {result["digest"] for _, result in answers}
        assessment: Optional[Assessment] = answers[0][1]["assessment"]
        if len(digests) > 1:
            repaired = self._read_repair(server, pref)
            if repaired is not None:
                assessment = repaired
        if assessment is None:
            # divergence we could not reconcile — fall back to the
            # first respondent's answer, degraded below
            assessment = answers[0][1]["assessment"]
        if len(answers) < self.read_quorum:
            _res.emit(
                "cluster_degraded_verdict", server=server, answers=len(answers)
            )
            if _obs.enabled:
                _obs.registry.inc("cluster.degraded_verdicts")
            assessment = replace(assessment, degraded=True)
        return assessment

    def _read_repair(
        self, server: str, pref: Sequence[str]
    ) -> Optional[Assessment]:
        """Merge divergent replicas of ``server`` and reset stragglers.

        Pulls every reachable preference-list replica, unions the event
        streams by content digest, resets each replica whose digest
        differs from the merged stream's, and returns the re-assessment
        from the first repaired replica (``None`` if nothing reachable).
        """
        pulls: List[Tuple[str, Dict[str, Any]]] = []
        for member in pref:
            if member in self._dead:
                continue
            reply = self._call(member, "cluster_pull", {"server": server})
            if reply is not None:
                pulls.append((member, reply))
        if not pulls:
            return None
        merged: Dict[str, Feedback] = {}
        for _, reply in pulls:
            for feedback in reply["events"]:
                merged[event_digest(feedback)] = feedback
        ordered = sorted(
            merged.values(), key=lambda fb: (fb.time, event_digest(fb))
        )
        state = ShardState()
        for feedback in ordered:
            state.applied(feedback, event_digest(feedback))
        expected = state.content_hash
        reset = 0
        for member, reply in pulls:
            if reply["digest"] != expected:
                if self._call(
                    member,
                    "cluster_reset",
                    {"server": server, "events": ordered},
                ) is not None:
                    reset += 1
        _res.emit(
            "cluster_read_repair",
            server=server,
            replicas=len(pulls),
            reset=reset,
            events=len(ordered),
        )
        if _obs.enabled:
            _obs.registry.inc("cluster.read_repairs")
        reply = self._call(
            pulls[0][0], "cluster_assess", {"servers": [server]}
        )
        if reply is None:
            return None
        result = reply["results"][server]
        return result["assessment"] if result["n"] > 0 else None

    # ------------------------------------------------------------------ #
    # anti-entropy

    def anti_entropy(self) -> Dict[str, int]:
        """Merkle-sweep every replica group; repair divergent servers.

        Each preference group with at least two reachable replicas is
        compared pairwise against its first reachable replica: equal
        roots settle the whole group in one RPC each; mismatches descend
        the tree and read-repair exactly the divergent servers.
        """
        ctx = _ctx.current()
        if ctx is None and _obs.enabled:
            ctx = _ctx.new_root(op="cluster_anti_entropy")
        summary = {"groups": 0, "synced": 0, "diverged": 0, "repaired": 0, "skipped": 0}
        with _ctx.use(ctx):
            with _obs.span("cluster.anti_entropy"):
                for pref, group in self._ring.partition(list(self._servers)).items():
                    summary["groups"] += 1
                    alive = [
                        m
                        for m in pref
                        if m not in self._dead and self._network.is_alive(m)
                    ]
                    if len(alive) < 2:
                        summary["skipped"] += 1
                        continue
                    divergent: set = set()
                    reference = alive[0]
                    clean = True
                    for other in alive[1:]:
                        diff = self._merkle_diff(reference, other, group)
                        if diff is None:
                            clean = False
                            continue
                        divergent.update(diff)
                    if not divergent:
                        summary["synced" if clean else "skipped"] += 1
                        continue
                    summary["diverged"] += 1
                    for server in sorted(divergent):
                        if self._read_repair(server, pref) is not None:
                            summary["repaired"] += 1
        _res.emit("cluster_anti_entropy", **summary)
        return summary

    def _merkle_diff(
        self, a: str, b: str, servers: List[str]
    ) -> Optional[List[str]]:
        """Servers whose digests differ between replicas ``a`` and ``b``.

        ``None`` when either side stopped answering mid-descent.
        """
        divergent: List[str] = []
        queue: List[Tuple[int, ...]] = [()]
        while queue:
            path = queue.pop(0)
            payload = {"servers": servers, "path": list(path)}
            node_a = self._call(a, "cluster_merkle", payload)
            node_b = self._call(b, "cluster_merkle", payload)
            if node_a is None or node_b is None:
                return None
            if node_a["hash"] == node_b["hash"]:
                continue
            if node_a["leaf"]:
                items_a = {s: d for s, d in node_a["items"]}
                items_b = {s: d for s, d in node_b["items"]}
                for server in set(items_a) | set(items_b):
                    if items_a.get(server) != items_b.get(server):
                        divergent.append(server)
                continue
            for step, (ha, hb) in enumerate(
                zip(node_a["children"], node_b["children"])
            ):
                if ha != hb:
                    queue.append(path + (step,))
        return divergent

    # ------------------------------------------------------------------ #
    # membership operations

    def add_node(self, name: str, *, stabilize_rounds: int = 3) -> None:
        """Join a node and ship it the shards it now replicates.

        Transfer is snapshot + tail: the source packs the moving
        servers' ledgers in the binlog wire format, the new node
        installs the snapshot, then replays whatever the source recorded
        after the snapshot cut — the same recovery contract as a real
        log-shipping system, collapsed by the synchronous simulator.
        """
        if name in self._members:
            raise ValueError(f"node {name!r} already in the cluster")
        old_ring = self._ring
        self._spawn(name)
        self._stabilize(rounds=stabilize_rounds)
        self._ring = self._build_ring()
        by_source: Dict[str, List[str]] = {}
        for server in self._servers:
            if name not in self._ring.preference_list(server):
                continue
            source = next(
                (
                    m
                    for m in old_ring.preference_list(server)
                    if m not in self._dead and self._network.is_alive(m)
                ),
                None,
            )
            if source is not None:
                by_source.setdefault(source, []).append(server)
        for source, servers in by_source.items():
            self._ship(source, name, servers)

    def remove_node(
        self, name: str, *, graceful: bool = True, stabilize_rounds: int = 3
    ) -> None:
        """Retire a member; graceful removal re-homes its shards first."""
        if name not in self._members:
            raise KeyError(f"node {name!r} not in the cluster")
        old_ring = self._ring
        leaving_alive = (
            name not in self._dead and self._network.is_alive(name)
        )
        new_members = [m for m in self._members if m != name]
        if not new_members:
            raise ValueError("cannot remove the last cluster member")
        new_ring = HashRingView(
            new_members, m_bits=self._m_bits, replicas=self._replicas
        )
        if graceful and leaving_alive:
            by_target: Dict[str, List[str]] = {}
            for server in self._servers:
                old_pref = old_ring.preference_list(server)
                if name not in old_pref:
                    continue
                for target in new_ring.preference_list(server):
                    if target not in old_pref:
                        by_target.setdefault(target, []).append(server)
            for target, servers in by_target.items():
                self._ship(name, target, servers)
        if self._network.is_alive(name):
            self._network.unregister(name)
        del self._members[name]
        self._dead.discard(name)
        self._breakers.pop(name, None)
        self._ring = new_ring
        self._stabilize(rounds=stabilize_rounds)

    def _ship(self, source: str, target: str, servers: List[str]) -> None:
        snapshot = self._call(source, "cluster_snapshot", {"servers": servers})
        if snapshot is None:
            _res.emit(
                "cluster_rpc_failed",
                node=source,
                type="cluster_snapshot",
                reason="unreachable",
            )
            return
        self._call(target, "cluster_install", {"payload": snapshot["payload"]})
        tailed = 0
        for server in servers:
            cut = snapshot["counts"].get(server, 0)
            tail = self._call(
                source, "cluster_tail", {"server": server, "after": cut}
            )
            if tail and tail["events"]:
                self._call(target, "cluster_record", {"events": tail["events"]})
                tailed += len(tail["events"])
        _res.emit(
            "cluster_snapshot_shipped",
            source=source,
            target=target,
            servers=len(servers),
            events=int(snapshot["payload"]["n"]),
            tail_events=tailed,
        )
        if _obs.enabled:
            _obs.registry.inc("cluster.snapshots_shipped")

    # ------------------------------------------------------------------ #
    # failure and recovery

    def kill(self, name: str, *, stabilize_rounds: int = 2) -> None:
        """Crash a member (keeps its ring position; hints will queue)."""
        if name not in self._members:
            raise KeyError(f"node {name!r} not in the cluster")
        if self._network.is_alive(name):
            self._network.unregister(name)
            _res.emit("node_killed", node=name, site="cluster.kill")
        self._dead.add(name)
        self._stabilize(rounds=stabilize_rounds)

    def recover(self, name: str, *, stabilize_rounds: int = 3) -> int:
        """Bring a crashed member back and replay its queued hints.

        Returns the number of hinted events replayed onto the node.
        """
        if name not in self._members:
            raise KeyError(f"node {name!r} not in the cluster")
        node = self._members[name]
        self._dead.discard(name)
        if not self._network.is_alive(name):
            node.rejoin(self._any_alive(exclude=name))
        self._breaker(name).reset()
        self._stabilize(rounds=stabilize_rounds)
        replayed = 0
        for member in self._alive_members():
            if member == name:
                continue
            if not self._members[member].hints.get(name):
                continue
            reply = self._call(member, "cluster_hint_replay", {"target": name})
            if reply is not None:
                replayed += reply["replayed"]
        if replayed:
            _res.emit("cluster_hint_replayed", node=name, events=replayed)
        _res.emit("cluster_node_recovered", node=name, replayed=replayed)
        return replayed

    # ------------------------------------------------------------------ #
    # health

    def open_hints(self) -> int:
        """Hinted events currently parked anywhere in the cluster."""
        return sum(node.open_hints() for node in self._members.values())

    def stats_report(self) -> Dict[str, Any]:
        """One row for ``repro health`` (shard ownership, replication)."""
        alive = set(self._alive_members())
        ownership: Counter = Counter()
        satisfied = violated = 0
        required = min(self._replicas, len(alive)) if alive else 0
        for server in self._servers:
            pref = self._ring.preference_list(server)
            ownership[pref[0]] += 1
            holders = sum(
                1
                for m in pref
                if m in alive and server in self._members[m].shards
            )
            if holders >= required and required > 0:
                satisfied += 1
            else:
                violated += 1
        return {
            "name": self.name,
            "nodes": len(self._members),
            "alive": len(alive),
            "replicas": self._replicas,
            "read_quorum": self.read_quorum,
            "servers": len(self._servers),
            "open_hints": self.open_hints(),
            "ownership": dict(ownership),
            "replication": {"satisfied": satisfied, "violated": violated},
        }
