"""Merkle trees over per-server ledger digests for anti-entropy.

Replica reconciliation must not ship whole ledgers to discover that
nothing diverged.  Each replica summarizes its copy of a server group as
a binary hash tree: leaves bucket ``leaf_size`` consecutive servers (in
sorted server order) and hash their ``server=digest`` lines, inner nodes
hash their children's hashes.  Two replicas holding identical data have
identical roots — one RPC settles the whole group; when roots differ the
coordinator descends only into mismatching children, reaching the
divergent servers in O(log n) exchanged hashes.

The tree's *shape* depends only on the sorted server list and
``leaf_size``, never on the digests, so two replicas asked about the
same group always agree on which path is a leaf — the descent protocol
needs no shape negotiation.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["MerkleTree"]


def _hash_lines(lines: Sequence[str]) -> str:
    return hashlib.sha1("\n".join(lines).encode("utf-8")).hexdigest()


class MerkleTree:
    """Binary hash tree over sorted ``(server, digest)`` items."""

    def __init__(
        self, items: Sequence[Tuple[str, str]], *, leaf_size: int = 8
    ):
        if leaf_size <= 0:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self._items = sorted(items)
        self._leaf_size = leaf_size
        buckets = [
            self._items[i : i + leaf_size]
            for i in range(0, len(self._items), leaf_size)
        ] or [[]]  # an empty group still has one (empty) leaf
        # level 0 = leaves; each node is (hash, bucket_start, bucket_stop)
        leaves = []
        for index, bucket in enumerate(buckets):
            digest = _hash_lines([f"{server}={value}" for server, value in bucket])
            leaves.append((digest, index, index + 1))
        levels: List[List[Tuple[str, int, int]]] = [leaves]
        while len(levels[-1]) > 1:
            below = levels[-1]
            above: List[Tuple[str, int, int]] = []
            for i in range(0, len(below), 2):
                pair = below[i : i + 2]
                if len(pair) == 1:
                    above.append(pair[0])  # odd node promoted unchanged
                else:
                    digest = _hash_lines([pair[0][0], pair[1][0]])
                    above.append((digest, pair[0][1], pair[1][2]))
            levels.append(above)
        self._levels = levels  # [leaves, ..., [root]]
        self._buckets = buckets

    @property
    def root(self) -> str:
        """The tree's root hash (equal iff the item sets are equal)."""
        return self._levels[-1][0][0]

    def node(self, path: Sequence[int]) -> Dict[str, object]:
        """Describe the tree node at ``path`` (child indices from the root).

        Returns ``{"hash": ..., "leaf": False, "children": [h, ...]}``
        for inner nodes and ``{"hash": ..., "leaf": True, "items":
        [[server, digest], ...]}`` for leaves — exactly the reply shape
        of the ``cluster_merkle`` RPC.  Raises :class:`KeyError` for a
        path that does not exist (shape mismatch means the two sides
        disagree on the server list itself).
        """
        level = len(self._levels) - 1
        index = 0
        for step in path:
            if level == 0:
                raise KeyError(f"path {list(path)!r} descends below a leaf")
            if step not in (0, 1):
                raise KeyError(f"path step must be 0 or 1, got {step!r}")
            child = 2 * index + step
            level -= 1
            if child >= len(self._levels[level]):
                # odd promoted node: child 0 is the promoted node itself
                if step == 0 and 2 * index < len(self._levels[level]):
                    child = 2 * index
                else:
                    raise KeyError(f"path {list(path)!r} not in tree")
            index = child
        digest, start, stop = self._levels[level][index]
        if level == 0:
            items = [list(item) for bucket in self._buckets[start:stop] for item in bucket]
            return {"hash": digest, "leaf": True, "items": items}
        below = self._levels[level - 1]
        children = []
        for step in (0, 1):
            child = 2 * index + step
            if child < len(below):
                children.append(below[child][0])
        if len(children) == 1:
            # promoted node: report it as its own single child so the
            # descent re-converges on the same node one level down
            pass
        return {"hash": digest, "leaf": False, "children": children}
