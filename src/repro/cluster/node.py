"""One cluster member: a Chord overlay node plus an assessment shard.

A :class:`ClusterNode` wraps a :class:`~repro.p2p.chord.ChordNode` (ring
maintenance, O(log n) lookups) and adds the assessment data plane: a
private :class:`~repro.feedback.ledger.FeedbackLedger` holding this
replica's copy of every server assigned to it, an
:class:`~repro.serve.AssessmentService` folding that ledger
incrementally, and per-server :class:`ShardState` bookkeeping (event
count, high-water timestamp, rolling content digest) that makes
duplicate suppression O(1) and replica comparison O(1) per server.

The simulated network allows one handler per name, so the cluster node
*multiplexes*: it takes over the chord node's registration and routes
``cluster_*`` message types to its own dispatch (attributed to this node
in the fleet view via ``node_scope``), delegating everything else to the
chord protocol unchanged.

Write-path semantics: ``cluster_record`` is the in-order ingest path —
events at or below a server's high-water mark are treated as duplicate
deliveries and skipped (exact re-sends from retries, hint replays, and
tail replays collapse idempotently).  Divergence *repair* never goes
through it: read-repair and anti-entropy install a merged stream via
``cluster_reset``, which rebuilds the server's ledger history, serving
state, and shard digest from scratch.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import AssessorConfig
from ..core.two_phase import Assessor
from ..feedback.binlog import pack_feedbacks, unpack_feedbacks
from ..feedback.ledger import FeedbackLedger
from ..feedback.records import Feedback
from ..obs import runtime as _obs
from ..obs import scope as _scope
from ..p2p.chord import ChordNode
from ..p2p.network import SimulatedNetwork
from ..serve import AssessmentService
from .antientropy import MerkleTree

__all__ = ["ClusterNode", "ShardState", "event_digest"]


def event_digest(feedback: Feedback) -> str:
    """Content digest of one feedback event (the dedup/merge key).

    Two events with identical ``(time, server, client, rating, category,
    authentic)`` are indistinguishable under at-least-once delivery and
    collapse into one — the standard trade-off.
    """
    canonical = (
        f"{feedback.time!r}|{feedback.server}|{feedback.client}|"
        f"{int(feedback.rating)}|{feedback.category}|{int(feedback.authentic)}"
    )
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16]


class ShardState:
    """Per-server replica bookkeeping: dedup watermark + content digest."""

    __slots__ = ("n", "last_time", "tie_digests", "content_hash")

    def __init__(self) -> None:
        self.n = 0
        self.last_time = float("-inf")
        #: digests of the events at exactly ``last_time`` — the only
        #: region where time alone cannot distinguish new from replayed
        self.tie_digests: set = set()
        self.content_hash = ""

    def is_duplicate(self, feedback: Feedback, digest: str) -> bool:
        if feedback.time < self.last_time:
            return True  # inside the already-applied region
        if feedback.time == self.last_time and digest in self.tie_digests:
            return True
        return False

    def applied(self, feedback: Feedback, digest: str) -> None:
        if feedback.time > self.last_time:
            self.last_time = feedback.time
            self.tie_digests = {digest}
        else:
            self.tie_digests.add(digest)
        self.n += 1
        self.content_hash = hashlib.sha1(
            (self.content_hash + digest).encode("utf-8")
        ).hexdigest()


class ClusterNode:
    """One member of the assessment cluster (overlay node + shard)."""

    def __init__(
        self,
        name: str,
        network: SimulatedNetwork,
        *,
        m_bits: int,
        replicas: int,
        config: AssessorConfig,
        calibrator=None,
    ):
        self.name = name
        self._network = network
        self._config = config
        self.chord = ChordNode(name, network, m_bits, replicas)
        # take over the registration: one handler per name, so the
        # cluster vocabulary and the chord protocol share the wire
        network.unregister(name)
        network.register(name, self._handle)
        self.ledger = FeedbackLedger(backend="memory")
        self.service = AssessmentService(
            assessor=Assessor.from_config(config, calibrator=calibrator),
            ledger=self.ledger,
            executor="serial",
        )
        self.shards: Dict[str, ShardState] = {}
        #: hinted writes held for unreachable ring positions:
        #: target node name -> time-ordered event list
        self.hints: Dict[str, List[Feedback]] = {}
        #: bumped on every applied/reset event; versions the merkle cache
        self.state_version = 0
        self._merkle_cache: Dict[Tuple[str, int], MerkleTree] = {}

    # ------------------------------------------------------------------ #
    # lifecycle

    def rejoin(self, bootstrap: Optional[str]) -> None:
        """Re-register after a crash and rejoin the overlay.

        Shard state survives the crash (a restarted node reloads its
        ledger); what it missed while dark arrives through hint replay
        and the next anti-entropy sweep.
        """
        self._network.register(self.name, self._handle)
        if bootstrap is not None and bootstrap != self.name:
            self.chord.join(bootstrap)

    # ------------------------------------------------------------------ #
    # data plane

    def apply_events(self, events: List[Feedback]) -> int:
        """Fold events into this shard, skipping duplicate deliveries."""
        applied = 0
        for feedback in events:
            state = self.shards.get(feedback.server)
            if state is None:
                state = self.shards[feedback.server] = ShardState()
            digest = event_digest(feedback)
            if state.is_duplicate(feedback, digest):
                continue
            self.ledger.record(feedback)
            state.applied(feedback, digest)
            applied += 1
        if applied:
            self.state_version += 1
            if _obs.enabled:
                _obs.registry.inc("cluster.shard.events_applied", applied)
        return applied

    def reset_server(self, server: str, events: List[Feedback]) -> str:
        """Install a reconciled stream for ``server`` from scratch."""
        ordered = sorted(events, key=lambda fb: (fb.time, event_digest(fb)))
        self.ledger.reset_server(server, ordered)
        state = ShardState()
        for feedback in ordered:
            state.applied(feedback, event_digest(feedback))
        if ordered:
            self.shards[server] = state
            self.service.replace_server(self.ledger.history(server))
        else:
            self.shards.pop(server, None)
        self.state_version += 1
        if _obs.enabled:
            _obs.registry.inc("cluster.shard.resets")
        return state.content_hash

    def digest_of(self, server: str) -> str:
        """The replica's content digest for ``server`` ("" when unknown)."""
        state = self.shards.get(server)
        return state.content_hash if state is not None else ""

    def events_of(self, server: str) -> List[Feedback]:
        """This replica's copy of ``server``'s event stream."""
        return self.ledger.feedbacks_for_server(server)

    # ------------------------------------------------------------------ #
    # RPC handling

    def _scoped(self):
        if _obs.enabled:
            return _scope.node_scope(self.name)
        return _scope.NOOP

    def _handle(self, message_type: str, payload: Dict[str, Any]) -> Any:
        if not message_type.startswith("cluster_"):
            return self.chord._handle(message_type, payload)
        with self._scoped():
            return self._dispatch(message_type, payload)

    def _dispatch(self, message_type: str, payload: Dict[str, Any]) -> Any:
        if message_type == "cluster_record":
            return {"applied": self.apply_events(payload["events"])}
        if message_type == "cluster_assess":
            return {"node": self.name, "results": self._assess(payload["servers"])}
        if message_type == "cluster_pull":
            server = payload["server"]
            return {
                "events": self.events_of(server),
                "digest": self.digest_of(server),
            }
        if message_type == "cluster_reset":
            return {
                "digest": self.reset_server(payload["server"], payload["events"])
            }
        if message_type == "cluster_merkle":
            tree = self._merkle_tree(payload["servers"])
            return tree.node(payload.get("path", ()))
        if message_type == "cluster_snapshot":
            return self._snapshot(payload["servers"])
        if message_type == "cluster_install":
            return self._install(payload["payload"])
        if message_type == "cluster_tail":
            events = self.events_of(payload["server"])
            return {"events": events[int(payload.get("after", 0)) :]}
        if message_type == "cluster_hint_store":
            target = payload["target"]
            self.hints.setdefault(target, []).extend(payload["events"])
            if _obs.enabled:
                _obs.registry.inc("cluster.hints.stored", len(payload["events"]))
            return {"held": len(self.hints[target])}
        if message_type == "cluster_hint_replay":
            return self._replay_hints(payload["target"])
        if message_type == "cluster_stats":
            return self.shard_stats()
        raise ValueError(f"unknown message type {message_type!r}")

    # ------------------------------------------------------------------ #
    # handler bodies

    def _assess(self, servers: List[str]) -> Dict[str, Dict[str, Any]]:
        """Per-server assessment + replica digest for a quorum read.

        Servers this replica has no data for answer ``n == 0`` with no
        assessment — the coordinator treats that as a non-answer, not as
        a verdict.
        """
        known = [s for s in servers if s in self.shards]
        assessments = self.service.assess_many(known) if known else {}
        results: Dict[str, Dict[str, Any]] = {}
        for server in servers:
            state = self.shards.get(server)
            if state is None:
                results[server] = {"assessment": None, "digest": "", "n": 0}
            else:
                results[server] = {
                    "assessment": assessments[server],
                    "digest": state.content_hash,
                    "n": state.n,
                }
        return results

    def _merkle_tree(self, servers: List[str]) -> MerkleTree:
        group_key = hashlib.sha1(
            "\n".join(sorted(servers)).encode("utf-8")
        ).hexdigest()
        cached = self._merkle_cache.get((group_key, self.state_version))
        if cached is None:
            cached = MerkleTree(
                [(server, self.digest_of(server)) for server in servers]
            )
            # one live version per group is enough; stale versions drop
            self._merkle_cache = {(group_key, self.state_version): cached}
        return cached

    def _snapshot(self, servers: List[str]) -> Dict[str, Any]:
        """Binlog-packed snapshot of the requested servers (join/leave)."""
        events: List[Feedback] = []
        counts: Dict[str, int] = {}
        for server in servers:
            copy = self.events_of(server)
            if copy:
                counts[server] = len(copy)
                events.extend(copy)
        return {"payload": pack_feedbacks(events), "counts": counts}

    def _install(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Unpack a snapshot and fold it through the dedup path."""
        events = unpack_feedbacks(payload)
        by_server: Dict[str, List[Feedback]] = {}
        for feedback in events:
            by_server.setdefault(feedback.server, []).append(feedback)
        applied = 0
        for stream in by_server.values():
            stream.sort(key=lambda fb: (fb.time, event_digest(fb)))
            applied += self.apply_events(stream)
        return {"applied": applied, "servers": len(by_server)}

    def _replay_hints(self, target: str) -> Dict[str, int]:
        """Push held hints to their recovered target (cluster_record)."""
        events = self.hints.pop(target, [])
        if not events:
            return {"replayed": 0, "remaining": 0}
        try:
            reply = self._network.send(
                target, "cluster_record", {"events": events}
            )
        except Exception:
            reply = None
        if reply is None:
            # target still unreachable (or the replay was dropped):
            # keep holding, the next recovery pass tries again
            self.hints[target] = events + self.hints.pop(target, [])
            return {"replayed": 0, "remaining": len(self.hints[target])}
        if _obs.enabled:
            _obs.registry.inc("cluster.hints.replayed", len(events))
        return {"replayed": len(events), "remaining": 0}

    # ------------------------------------------------------------------ #
    # introspection

    def open_hints(self) -> int:
        """Total hinted events currently held for unreachable targets."""
        return sum(len(events) for events in self.hints.values())

    def shard_stats(self) -> Dict[str, Any]:
        return {
            "node": self.name,
            "servers": len(self.shards),
            "events": sum(state.n for state in self.shards.values()),
            "open_hints": self.open_hints(),
            "hint_targets": sorted(self.hints),
            "state_version": self.state_version,
        }
