"""Consistent-hash partitioning of servers onto cluster members.

The cluster's data placement follows the Chord/Dynamo convention: server
ids and member names hash onto the same ``2^m`` identifier circle (via
:func:`repro.p2p.chord.key_of`), the *owner* of a server is the first
member clockwise from its key, and the server's **preference list** is
the owner plus the next ``K - 1`` distinct members clockwise — the
successor set that holds its replicas.

Preference lists are computed over the full *membership*, dead members
included: a crashed node keeps its ring position (its replicas keep
serving reads, hints queue for its writes) until it is administratively
removed.  This is what makes hinted handoff meaningful — the hint's
target is a position on the ring, not whichever node happens to be up.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

from ..p2p.chord import key_of

__all__ = ["HashRingView"]


class HashRingView:
    """Preference lists over a fixed membership set.

    Immutable by design: the cluster facade rebuilds the view on every
    membership change, so a view in hand always answers consistently —
    mid-rebalance races cannot produce two different owners for one
    server within a single routing decision.
    """

    def __init__(self, members: Iterable[str], *, m_bits: int, replicas: int):
        names = list(members)
        if not names:
            raise ValueError("a ring view needs at least one member")
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        pairs = sorted((key_of(name, m_bits), name) for name in names)
        for (id_a, name_a), (id_b, name_b) in zip(pairs, pairs[1:]):
            if id_a == id_b:
                raise ValueError(
                    f"id collision: {name_a!r} and {name_b!r} both hash to "
                    f"{id_a} with m_bits={m_bits}"
                )
        self._m = m_bits
        self._replicas = replicas
        self._ids = [node_id for node_id, _ in pairs]
        self._names = [name for _, name in pairs]

    @property
    def members(self) -> List[str]:
        """Member names in ring (id) order."""
        return list(self._names)

    @property
    def replicas(self) -> int:
        """The replication factor K this view was built for."""
        return self._replicas

    def __len__(self) -> int:
        return len(self._names)

    def owner(self, server: str) -> str:
        """The member responsible for ``server`` (first clockwise)."""
        return self._names[self._owner_index(server)]

    def preference_list(self, server: str) -> List[str]:
        """The ``min(K, n)`` distinct members replicating ``server``.

        Successor order: element 0 is the owner, element ``i`` the
        ``i``-th replica — the deterministic read/write/repair order.
        """
        start = self._owner_index(server)
        n = len(self._names)
        return [self._names[(start + i) % n] for i in range(min(self._replicas, n))]

    def partition(
        self, servers: Sequence[str]
    ) -> Dict[Tuple[str, ...], List[str]]:
        """Group ``servers`` by preference list (one RPC batch per group).

        Groups preserve the input's server order; the dict preserves
        first-appearance group order — both matter for deterministic
        routing and calibration order.
        """
        groups: Dict[Tuple[str, ...], List[str]] = {}
        for server in servers:
            key = tuple(self.preference_list(server))
            groups.setdefault(key, []).append(server)
        return groups

    def _owner_index(self, server: str) -> int:
        key = key_of(server, self._m)
        index = bisect_left(self._ids, key)
        return index % len(self._ids)
