"""Simulated message-passing network for the P2P substrate.

The paper assumes transaction feedback is available "through special
data organization schemes in P2P systems" (it cites P-Grid) and
discusses gossip-based reputation aggregation as related work.  The
:mod:`repro.p2p` package makes that assumption concrete; this module is
its transport: a synchronous request/reply network with seeded,
injectable unreliability (message drops) and per-message accounting, so
overlay algorithms can be tested for both correctness and message
complexity.

The network is deliberately synchronous — a ``send`` delivers the
request to the destination's handler and returns its reply — because
the overlay protocols built on top (iterative Chord lookups, push-pull
gossip rounds) are step-based; asynchrony would add machinery without
changing what the paper needs from the substrate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..obs import context as _ctx
from ..obs import runtime as _obs
from ..obs import scope as _scope
from ..resilience import runtime as _res
from ..resilience.health import GLOBAL_HEALTH
from ..stats.rng import SeedLike, make_rng

__all__ = ["NetworkStats", "NodeUnreachable", "SimulatedNetwork"]

Handler = Callable[[str, Dict[str, Any]], Any]


class NodeUnreachable(Exception):
    """Raised when sending to an id with no registered handler."""


@dataclass
class NetworkStats:
    """Message accounting for complexity assertions in tests/benches."""

    messages: int = 0
    drops: int = 0
    retries: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)

    def record(self, message_type: str, dropped: bool) -> None:
        """Count one message (and its drop status)."""
        self.messages += 1
        self.by_type[message_type] = self.by_type.get(message_type, 0) + 1
        if dropped:
            self.drops += 1
        if _obs.enabled:
            _obs.registry.inc("p2p.network.messages", type=message_type)
            if dropped:
                _obs.registry.inc("p2p.network.drops", type=message_type)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe view of the accounting (health report / exports)."""
        return {
            "messages": self.messages,
            "drops": self.drops,
            "retries": self.retries,
            "by_type": dict(self.by_type),
        }


class SimulatedNetwork:
    """Registry of node handlers with lossy synchronous delivery.

    ``drop_rate`` is the probability that a request is lost; a dropped
    request returns ``None`` to the sender (timeout semantics).  Replies
    are never dropped separately — a lost reply is indistinguishable
    from a lost request at this abstraction level.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        seed: SeedLike = None,
        *,
        name: str = "simnet",
        link_metrics: bool = False,
    ):
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must lie in [0, 1), got {drop_rate}")
        self._drop_rate = drop_rate
        self._rng = make_rng(seed)
        self._handlers: Dict[str, Handler] = {}
        self._stats = NetworkStats()
        self.name = name
        # Per-link series are quadratic in fleet size (src × dst), so
        # they are opt-in: fleet captures and e2e tests turn them on,
        # ambient benches keep the type-only families.
        self.link_metrics = link_metrics
        GLOBAL_HEALTH.register_network(self)

    @property
    def stats(self) -> NetworkStats:
        return self._stats

    def stats_report(self) -> Dict[str, Any]:
        """One row for the resilience health report (``repro health``)."""
        report = self._stats.as_dict()
        report["name"] = self.name
        report["nodes"] = len(self._handlers)
        return report

    @property
    def node_ids(self):
        return set(self._handlers)

    def register(self, node_id: str, handler: Handler) -> None:
        """Attach a node; its handler receives ``(message_type, payload)``."""
        if not node_id:
            raise ValueError("node_id must be non-empty")
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler
        if _obs.enabled:
            _obs.registry.set("p2p.network.nodes", len(self._handlers))

    def unregister(self, node_id: str) -> None:
        """Detach a node (crash/leave); later sends raise NodeUnreachable."""
        if node_id not in self._handlers:
            raise KeyError(f"node {node_id!r} not registered")
        del self._handlers[node_id]
        if _obs.enabled:
            _obs.registry.set("p2p.network.nodes", len(self._handlers))

    def send(
        self, dst: str, message_type: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        """Deliver a request and return the handler's reply.

        Returns ``None`` when the message is dropped; raises
        :class:`NodeUnreachable` when the destination does not exist —
        callers distinguish "lossy" from "gone".
        """
        handler = self._handlers.get(dst)
        if handler is None:
            raise NodeUnreachable(dst)
        dropped = self._drop_rate > 0 and self._rng.random() < self._drop_rate
        if _res.armed:
            # node-kill fault: the destination dies before this request
            # lands — its handler is dropped, so this send *and every
            # later one* sees NodeUnreachable until the node re-registers.
            # Checked only for live destinations so each fire kills a
            # distinct node (deterministic under the plan seed).
            spec = _res.check("p2p.network.kill")
            if spec is not None:
                self._stats.record(message_type, True)
                self.unregister(dst)
                _res.emit("node_killed", node=dst, site="p2p.network.kill")
                raise NodeUnreachable(dst)
        if _res.armed and not dropped:
            # an armed network fault forces a loss (corrupt/crash modes)
            # or an explicit transport error (exception mode)
            spec = _res.check("p2p.network.send")
            if spec is not None:
                if spec.mode == "exception":
                    raise _res.InjectedFault("p2p.network.send", spec.mode, 0)
                dropped = True
        self._stats.record(message_type, dropped)
        if self.link_metrics and _obs.enabled and _scope.active:
            # src comes from the ambient node scope (the sender), dst is
            # explicit; stamping node=src keeps the series attributed to
            # the sending node when the snapshot is split per node.
            src = _scope.attribution_node()
            if src is not None:
                _obs.registry.inc(
                    "p2p.network.link.messages", src=src, dst=dst, node=src
                )
                if dropped:
                    _obs.registry.inc(
                        "p2p.network.link.drops", src=src, dst=dst, node=src
                    )
        ctx = _ctx.current()
        if ctx is None:
            # untraced hop: zero envelope/serialization overhead — this
            # path carries the million-message overlay benches
            if dropped:
                return None
            return self._deliver(handler, message_type, payload or {})
        # traced hop: the context crosses as serialized headers on the
        # message envelope — exactly what a real wire would carry — and
        # is rebuilt on the delivery side before the handler runs
        envelope = ctx.to_headers()
        if dropped:
            _obs.span_event("p2p.message_dropped", dst=dst, type=message_type)
            return None
        remote_ctx = _ctx.TraceContext.from_headers(envelope)
        with _ctx.use(remote_ctx):
            with _obs.span("p2p.network.deliver", dst=dst, type=message_type):
                return self._deliver(handler, message_type, payload or {})

    def _deliver(
        self, handler: Handler, message_type: str, payload: Dict[str, Any]
    ) -> Any:
        """Run a handler, timing delivery per message type when obs is on."""
        if not _obs.enabled:
            return handler(message_type, payload)
        start = time.perf_counter()
        reply = handler(message_type, payload)
        _obs.registry.observe(
            "p2p.network.send_seconds",
            time.perf_counter() - start,
            type=message_type,
        )
        return reply

    def send_reliable(
        self,
        dst: str,
        message_type: str,
        payload: Optional[Dict[str, Any]] = None,
        *,
        max_attempts: int = 3,
    ) -> Any:
        """Send with bounded retry on loss: re-send up to ``max_attempts``
        times while delivery keeps timing out (``None``).

        Returns the first reply, or ``None`` when every attempt was
        dropped — the caller still owns the giving-up decision, the
        wrapper just bounds how much lossiness it absorbs.  Retries are
        counted in :attr:`NetworkStats.retries`.  ``NodeUnreachable``
        propagates immediately: a missing node will not come back
        because we ask again.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        reply = self.send(dst, message_type, payload)
        attempts = 1
        while reply is None and attempts < max_attempts:
            attempts += 1
            self._stats.retries += 1
            if _obs.enabled:
                _obs.registry.inc("p2p.network.retries", type=message_type)
            if _ctx.current() is not None:
                _obs.span_event(
                    "p2p.retry", dst=dst, type=message_type, attempt=attempts
                )
            reply = self.send(dst, message_type, payload)
        return reply

    def is_alive(self, node_id: str) -> bool:
        """Is a handler currently registered under ``node_id``?"""
        return node_id in self._handlers
