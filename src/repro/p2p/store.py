"""DHT-backed feedback storage.

The glue between the overlay and the trust layer: a
:class:`DistributedFeedbackStore` exposes the subset of the
:class:`~repro.feedback.ledger.FeedbackLedger` interface the behavior
tests and trust functions consume, but keeps every feedback in the Chord
ring, keyed by the server it concerns.  Retrieving a server's history is
one DHT ``get`` (plus replica fallbacks), which is exactly the paper's
"special data organization schemes in P2P systems" assumption made
executable: the same two-phase assessment runs unchanged whether the
store is a central ledger or this.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..feedback.history import TransactionHistory
from ..feedback.records import EntityId, Feedback
from .chord import ChordRing

__all__ = ["DistributedFeedbackStore"]

_KEY_PREFIX = "feedback/"


class DistributedFeedbackStore:
    """Feedback persistence on a Chord ring, queryable per server."""

    def __init__(self, ring: Optional[ChordRing] = None, n_nodes: int = 8):
        if ring is None:
            ring = ChordRing(seed=0)
            for i in range(n_nodes):
                ring.add_node(f"storage-{i}")
        if not ring.nodes:
            raise ValueError("the ring must contain at least one node")
        self._ring = ring
        self._servers: Set[EntityId] = set()

    @property
    def ring(self) -> ChordRing:
        return self._ring

    def servers(self) -> Set[EntityId]:
        """Servers with at least one recorded feedback (local index)."""
        return set(self._servers)

    def record(self, feedback: Feedback) -> str:
        """Store one feedback in the DHT; returns the owning node."""
        self._servers.add(feedback.server)
        return self._ring.put(_KEY_PREFIX + feedback.server, feedback)

    def record_many(self, feedbacks) -> None:
        """Store a batch of feedback records."""
        for fb in feedbacks:
            self.record(fb)

    def feedbacks_for_server(self, server: EntityId) -> List[Feedback]:
        """All stored feedback about ``server``, time-ordered.

        Replication means a value can surface more than once after a
        failover; duplicates are removed before ordering.
        """
        raw = self._ring.get(_KEY_PREFIX + server)
        unique = {
            (fb.time, fb.client, fb.rating, fb.category, fb.authentic): fb
            for fb in raw
        }
        return sorted(unique.values(), key=lambda fb: fb.time)

    def history(self, server: EntityId) -> TransactionHistory:
        """Materialize a server's :class:`TransactionHistory` from the DHT."""
        feedbacks = self.feedbacks_for_server(server)
        if not feedbacks:
            raise KeyError(f"no feedback stored for server {server!r}")
        return TransactionHistory.from_feedbacks(feedbacks)
