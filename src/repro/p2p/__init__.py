"""Decentralized substrate: simulated network, Chord DHT, gossip aggregation.

The paper assumes a server's full feedback record is retrievable even in
a P2P deployment (citing P-Grid for storage and gossip protocols for
aggregation).  This package supplies both halves so that assumption is
implemented rather than assumed:

* :class:`ChordRing` / :class:`DistributedFeedbackStore` — structured-
  overlay feedback storage with replication and O(log n)-hop lookups;
* :class:`ReputationGossip` — push-pull averaging that converges every
  peer's reputation estimate to the global average trust value.
"""

from .chord import ChordNode, ChordRing, LookupResult, in_interval, key_of
from .gossip import GossipAggregator, ReputationGossip, push_pull_round
from .network import NetworkStats, NodeUnreachable, SimulatedNetwork
from .store import DistributedFeedbackStore
from .unstructured import SearchResult, UnstructuredOverlay

__all__ = [
    "ChordNode",
    "ChordRing",
    "LookupResult",
    "in_interval",
    "key_of",
    "GossipAggregator",
    "ReputationGossip",
    "push_pull_round",
    "NetworkStats",
    "NodeUnreachable",
    "SimulatedNetwork",
    "DistributedFeedbackStore",
    "SearchResult",
    "UnstructuredOverlay",
]
