"""A Chord-style structured overlay for decentralized feedback storage.

The paper's trust assessment assumes all feedback about a server can be
retrieved; in a decentralized deployment that job falls to a P2P data
organization scheme (the paper cites P-Grid).  This module implements
the canonical alternative, a Chord ring (Stoica et al.):

* node and data ids live on a ``2^m`` identifier circle (SHA-1 based);
* the node *responsible* for a key is the first node clockwise from it;
* each node keeps a successor list (fault tolerance), a predecessor
  pointer, and a finger table giving O(log n)-hop lookups;
* data is replicated on the ``r`` nodes succeeding the responsible one,
  so single-node crashes lose nothing.

Lookups are *iterative*: the initiating node queries fingers over the
simulated network, so hop counts equal message counts and the O(log n)
claim is assertable in tests.  Ring maintenance follows Chord's
``stabilize``/``notify``/``fix_fingers`` protocol, driven in rounds by
:class:`ChordRing` (the test-harness view of the deployment).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Set, Tuple

from ..obs import runtime as _obs
from ..obs import scope as _scope
from ..resilience import runtime as _res
from ..stats.rng import SeedLike, make_rng
from .network import NodeUnreachable, SimulatedNetwork

__all__ = [
    "key_of",
    "in_interval",
    "value_digest",
    "ChordNode",
    "ChordRing",
    "LookupResult",
]

DEFAULT_M_BITS = 16


def key_of(name: str, m_bits: int = DEFAULT_M_BITS) -> int:
    """Hash an arbitrary name onto the identifier circle."""
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << m_bits)


def value_digest(value: Any) -> str:
    """Content digest of a stored value — the store's idempotency key.

    At-least-once delivery (``_rpc_retry``, hand-over cascades, replica
    repair) may present the same value to a node many times; stores keyed
    by this digest collapse every re-delivery into one copy at the write
    side.  JSON canonicalization (sorted keys) makes the digest stable
    across payload dict orderings; non-JSON values fall back to ``repr``.
    """
    try:
        canonical = json.dumps(value, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        canonical = repr(value)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


def in_interval(x: int, left: int, right: int, *, inclusive_right: bool = False) -> bool:
    """Is ``x`` in the circular interval ``(left, right)`` / ``(left, right]``?

    On a ring the interval may wrap; ``left == right`` denotes the full
    circle (a single-node ring owns everything).
    """
    if left == right:
        return True  # full circle: a single-node ring owns every key
    if left < right:
        return (left < x < right) or (inclusive_right and x == right)
    return (x > left) or (x < right) or (inclusive_right and x == right)


class LookupResult(Tuple[str, int]):
    """``(node_name, hops)`` returned by lookups."""

    __slots__ = ()

    def __new__(cls, node: str, hops: int):
        return super().__new__(cls, (node, hops))

    @property
    def node(self) -> str:
        return self[0]

    @property
    def hops(self) -> int:
        return self[1]


class ChordNode:
    """One overlay node: ring pointers, finger table, replicated storage."""

    def __init__(self, name: str, network: SimulatedNetwork, m_bits: int, replicas: int):
        self.name = name
        self.node_id = key_of(name, m_bits)
        self._network = network
        self._m = m_bits
        self._replicas = replicas
        self.successors: List[str] = [name]  # successor list, self when alone
        self.predecessor: Optional[str] = None
        self.fingers: List[str] = [name] * m_bits
        self.storage: Dict[int, List[Any]] = {}
        # write-side idempotency: content digests of everything stored,
        # so at-least-once re-deliveries never duplicate a value
        self._store_digests: Dict[int, Set[str]] = {}
        network.register(name, self._handle)

    # ------------------------------------------------------------------ #
    # public queries

    def _scoped(self):
        """Node-attribution scope for work done *as* this node.

        A shared no-op when obs collection is off, so the overlay hot
        path pays one flag read — the same discipline as every other
        ``_obs.enabled`` site.
        """
        if _obs.enabled:
            return _scope.node_scope(self.name)
        return _scope.NOOP

    @property
    def successor(self) -> str:
        return self.successors[0]

    def responsible_for(self, key: int) -> bool:
        """Does this node own ``key``? (first node clockwise from the key)"""
        if self.predecessor is None:
            return True
        pred_id = key_of(self.predecessor, self._m)
        return in_interval(key, pred_id, self.node_id, inclusive_right=True)

    def find_successor(self, key: int, *, max_hops: int = 64) -> LookupResult:
        """Iterative lookup: walk fingers until the owner is found."""
        with self._scoped():
            result = self._find_successor(key, max_hops=max_hops)
            if _obs.enabled:
                # hops are message counts (iterative lookup), so this
                # histogram *is* the O(log n) routing claim, per node
                _obs.registry.observe("p2p.chord.lookup_hops", result.hops)
                _res.emit(
                    "chord_lookup", key=key, hops=result.hops, owner=result.node
                )
        return result

    def _find_successor(self, key: int, *, max_hops: int) -> LookupResult:
        current = self.name
        hops = 0
        while hops <= max_hops:
            info = self._rpc(current, "lookup_step", {"key": key})
            if info is None:  # dropped or dead: fall back to our successor list
                current = self._next_alive_successor(exclude=current)
                hops += 1
                continue
            if info["done"]:
                return LookupResult(info["node"], hops)
            next_node = info["node"]
            if next_node == current:  # safety: no progress possible
                return LookupResult(current, hops)
            current = next_node
            hops += 1
        raise RuntimeError(f"lookup for key {key} exceeded {max_hops} hops")

    # ------------------------------------------------------------------ #
    # ring maintenance (Chord's join / stabilize / notify / fix_fingers)

    def join(self, bootstrap: str, *, attempts: int = 5) -> None:
        """Join the ring known to ``bootstrap`` (retrying dropped RPCs)."""
        with self._scoped():
            result = None
            for _ in range(attempts):
                result = self._rpc(
                    bootstrap, "find_successor_rpc", {"key": self.node_id}
                )
                if result is not None:
                    break
                if not self._network.is_alive(bootstrap):
                    break
            if result is None:
                raise NodeUnreachable(bootstrap)
            self.successors = [result["node"]]
            self.predecessor = None
            # claim the keys we now own straight away: notify-driven
            # hand-over cannot fire when the successor's stale
            # predecessor pointer already carries our name (a rejoin)
            if self.successor != self.name:
                self._rpc_retry(
                    self.successor, "request_handover", {"node": self.name}
                )

    def stabilize(self) -> None:
        """Verify the successor, adopt a closer one, and notify it."""
        with self._scoped():
            if _obs.enabled:
                _obs.registry.inc("p2p.chord.stabilize_runs")
            # check_predecessor (Chord §E.1): a dead predecessor must be
            # cleared, or responsible_for keeps honoring its stale
            # interval — a ring collapsed to one node would own nothing
            if self.predecessor is not None and not self._network.is_alive(
                self.predecessor
            ):
                self.predecessor = None
            successor = self._first_alive_successor()
            pred_of_succ = self._rpc(successor, "get_predecessor", {})
            if pred_of_succ and pred_of_succ.get("node"):
                candidate = pred_of_succ["node"]
                if candidate != self.name and self._network.is_alive(candidate):
                    cid = key_of(candidate, self._m)
                    sid = key_of(successor, self._m)
                    if in_interval(cid, self.node_id, sid):
                        successor = candidate
            before = self.successor
            self._rebuild_successor_list(successor)
            if self.successor != before and self.successor != self.name:
                # adopting a closer successor moves our ownership
                # boundary: pull the keys it holds in our range
                self._rpc_retry(
                    self.successor, "request_handover", {"node": self.name}
                )
            self._rpc(successor, "notify", {"node": self.name})

    def fix_fingers(self) -> None:
        """Recompute the finger table with fresh lookups."""
        with self._scoped():
            repaired = 0
            for i in range(self._m):
                target = (self.node_id + (1 << i)) % (1 << self._m)
                try:
                    finger = self.find_successor(target).node
                except (RuntimeError, NodeUnreachable):
                    finger = self.successor
                if finger != self.fingers[i]:
                    repaired += 1
                self.fingers[i] = finger
            if repaired and _obs.enabled:
                _obs.registry.inc("p2p.chord.finger_repairs", repaired)

    def leave(self) -> None:
        """Graceful departure: hand storage to the successor, detach."""
        with self._scoped():
            if self.successor != self.name and self._network.is_alive(self.successor):
                for key, values in self.storage.items():
                    for value in values:
                        self._rpc(
                            self.successor, "store", {"key": key, "value": value}
                        )
            if _obs.enabled or _res.events is not None:
                _res.emit(
                    "chord_node_leave",
                    node=self.name,
                    keys=len(self.storage),
                    successor=self.successor,
                )
            self._network.unregister(self.name)

    # ------------------------------------------------------------------ #
    # data operations

    def put(self, key: int, value: Any) -> str:
        """Store ``value`` under ``key`` on its owner + replicas; returns owner.

        The value's content digest travels with every store message, so
        ``_rpc_retry`` re-sends and replica forwards are idempotent at the
        write side — no reader-side deduplication needed.
        """
        owner = self.find_successor(key).node
        with self._scoped():
            self._rpc_retry(
                owner,
                "store_replicated",
                {"key": key, "value": value, "digest": value_digest(value)},
            )
        return owner

    def get(self, key: int) -> List[Any]:
        """Fetch all values under ``key`` (owner first, replica fallback)."""
        return self.fetch(key)["values"]

    def fetch(self, key: int) -> Dict[str, Any]:
        """Fetch values under ``key`` with read-path metadata.

        Returns ``{"values", "owner", "replica", "attempts"}`` where
        ``owner`` is the lookup's answer, ``replica`` is the node that
        actually answered (``None`` when nobody did), and ``attempts``
        lists every node tried, in order.  The fallback is deterministic:
        when the owner does not answer, its replica set — the nodes
        succeeding it on the ring, derived by fresh lookups, *not* this
        node's own successor list — is tried in successor order, so the
        same failure state always reads from the same replica and
        quorum/read-repair decisions are reproducible under chaos seeds.
        """
        owner = self.find_successor(key).node
        with self._scoped():
            attempts = [owner]
            reply = self._rpc_retry(owner, "fetch", {"key": key})
            if reply is not None:
                return {
                    "values": list(reply["values"]),
                    "owner": owner,
                    "replica": owner,
                    "attempts": attempts,
                }
            for replica in self._replica_chain(owner)[1:]:
                if replica in attempts:
                    continue
                attempts.append(replica)
                reply = self._rpc(replica, "fetch", {"key": key})
                if reply is not None and reply["values"]:
                    return {
                        "values": list(reply["values"]),
                        "owner": owner,
                        "replica": replica,
                        "attempts": attempts,
                    }
            return {
                "values": [],
                "owner": owner,
                "replica": None,
                "attempts": attempts,
            }

    def _replica_chain(self, owner: str) -> List[str]:
        """The nodes succeeding ``owner`` clockwise — its replica set.

        Derived by fresh lookups from the owner's ring position rather
        than this node's successor list, which describes *our* replicas,
        not the owner's.
        """
        chain = [owner]
        for _ in range(self._replicas - 1):
            probe = (key_of(chain[-1], self._m) + 1) % (1 << self._m)
            try:
                nxt = self._find_successor(probe, max_hops=4 * self._m).node
            except RuntimeError:
                break
            if nxt in chain:
                break
            chain.append(nxt)
        return chain

    # ------------------------------------------------------------------ #
    # RPC handling

    def _handle(self, message_type: str, payload: Dict[str, Any]) -> Any:
        with self._scoped():
            # delivery-side attribution: whatever this RPC makes the node
            # do (forward stores, cascade hand-overs) is *its* work
            return self._dispatch(message_type, payload)

    def _dispatch(self, message_type: str, payload: Dict[str, Any]) -> Any:
        if message_type == "lookup_step":
            return self._lookup_step(payload["key"])
        if message_type == "find_successor_rpc":
            result = self.find_successor(payload["key"])
            return {"node": result.node}
        if message_type == "get_predecessor":
            return {"node": self.predecessor}
        if message_type == "get_successor":
            return {"node": self.successor}
        if message_type == "notify":
            self._notify(payload["node"])
            return {}
        if message_type == "request_handover":
            if payload["node"] != self.name:
                self._hand_over_upstream_keys(payload["node"])
            return {}
        if message_type == "store":
            self._store_value(
                payload["key"], payload["value"], payload.get("digest")
            )
            return {}
        if message_type == "store_replicated":
            key, value = payload["key"], payload["value"]
            digest = payload.get("digest") or value_digest(value)
            self._store_value(key, value, digest)
            for replica in self.successors[: self._replicas - 1]:
                if replica != self.name:
                    self._rpc(
                        replica,
                        "store",
                        {"key": key, "value": value, "digest": digest},
                    )
            return {}
        if message_type == "fetch":
            return {"values": list(self.storage.get(payload["key"], []))}
        raise ValueError(f"unknown message type {message_type!r}")

    # ------------------------------------------------------------------ #
    # internals

    def _store_value(
        self, key: int, value: Any, digest: Optional[str] = None
    ) -> bool:
        """Idempotent store keyed by the value's content digest.

        Returns ``True`` when the value was new.  The equality check on
        the bucket stays as a second guard for values written into
        ``storage`` directly (test setup, external repair tooling) whose
        digests this node never saw.
        """
        bucket = self.storage.setdefault(key, [])
        digests = self._store_digests.setdefault(key, set())
        if digest is None:
            digest = value_digest(value)
        if digest in digests:
            if value in bucket:
                return False  # confirmed duplicate delivery
            # a known digest whose value is *not* in the bucket means the
            # bucket was rewound externally (repair tooling, test setup);
            # the bucket is authoritative, so store again
        elif value in bucket:
            # direct bucket write this node never digested
            digests.add(digest)
            return False
        bucket.append(value)
        digests.add(digest)
        return True

    def _lookup_step(self, key: int) -> Dict[str, Any]:
        successor = self._first_alive_successor()
        sid = key_of(successor, self._m)
        if in_interval(key, self.node_id, sid, inclusive_right=True):
            return {"done": True, "node": successor}
        return {"done": False, "node": self._closest_preceding(key)}

    def _closest_preceding(self, key: int) -> str:
        for finger in reversed(self.fingers):
            if finger == self.name or not self._network.is_alive(finger):
                continue
            fid = key_of(finger, self._m)
            if in_interval(fid, self.node_id, key):
                return finger
        return self._first_alive_successor()

    def _notify(self, candidate: str) -> None:
        if candidate == self.name:
            return
        adopted = False
        if self.predecessor is None or not self._network.is_alive(self.predecessor):
            self.predecessor = candidate
            adopted = True
        else:
            pid = key_of(self.predecessor, self._m)
            cid = key_of(candidate, self._m)
            if in_interval(cid, pid, self.node_id):
                self.predecessor = candidate
                adopted = True
        if adopted:
            self._hand_over_upstream_keys()

    def _hand_over_upstream_keys(self, target: Optional[str] = None) -> None:
        """Copy keys this node no longer owns to the new predecessor.

        When a node joins between P and S, the keys in (old-P, new-P]
        stop being S's: without this transfer a lookup routed to the new
        owner finds nothing (data is not lost, just unreachable).  The
        copy cascades — if the predecessor does not own a key either, its
        own next notify pushes it further upstream.  The local copy is
        kept as a replica; readers deduplicate.

        ``target`` serves ``request_handover``: a joining node claims
        its range explicitly, which notify-driven hand-over cannot cover
        when the joiner reuses the name of a crashed predecessor (the
        stale pointer masks the rejoin).  Transfers ride ``_rpc_retry``:
        a dropped hand-over message would strand the key at its replicas
        (the owner answers lookups with nothing), and ``store`` is an
        idempotent append.
        """
        predecessor = target if target is not None else self.predecessor
        if predecessor is None or not self._network.is_alive(predecessor):
            return
        pid = key_of(predecessor, self._m)
        handed = 0
        for key, values in list(self.storage.items()):
            if in_interval(key, pid, self.node_id, inclusive_right=True):
                continue  # still ours
            for value in values:
                self._rpc_retry(predecessor, "store", {"key": key, "value": value})
                handed += 1
        if handed:
            if _obs.enabled:
                _obs.registry.inc("p2p.chord.key_handovers", handed)
            if _obs.enabled or _res.events is not None:
                _res.emit(
                    "chord_key_handover",
                    node=self.name,
                    to=predecessor,
                    values=handed,
                )

    def _first_alive_successor(self) -> str:
        for succ in self.successors:
            if succ == self.name or self._network.is_alive(succ):
                return succ
        return self.name

    def _next_alive_successor(self, exclude: str) -> str:
        for succ in self.successors:
            if succ != exclude and (succ == self.name or self._network.is_alive(succ)):
                return succ
        return self.name

    def _rebuild_successor_list(self, first: str) -> None:
        chain = [first]
        current = first
        for _ in range(self._replicas):
            reply = self._rpc(current, "get_successor", {})
            if reply is None:
                break
            nxt = reply["node"]
            if nxt in chain or nxt == self.name:
                break
            chain.append(nxt)
            current = nxt
        changed = chain != self.successors
        self.successors = chain
        if changed:
            if _obs.enabled:
                _obs.registry.inc("p2p.chord.successor_rebuilds")
            if _obs.enabled or _res.events is not None:
                _res.emit(
                    "chord_successor_rebuild",
                    node=self.name,
                    first=first,
                    size=len(chain),
                )

    def _rpc_retry(
        self, dst: str, message_type: str, payload: Dict[str, Any], attempts: int = 4
    ) -> Any:
        """Retry an idempotent RPC across message drops.

        Store messages carry the value's content digest, so a retried
        ``store_replicated`` whose first delivery landed (only the reply
        was lost) collapses into the already-stored copy at the write
        side — at-least-once delivery without duplicates.
        """
        for _ in range(attempts):
            reply = self._rpc(dst, message_type, payload)
            if reply is not None:
                return reply
            if not self._network.is_alive(dst):
                return None
        return None

    def _rpc(self, dst: str, message_type: str, payload: Dict[str, Any]) -> Any:
        if dst == self.name:
            return self._handle(message_type, payload)
        try:
            return self._network.send(dst, message_type, payload)
        except NodeUnreachable:
            return None


class ChordRing:
    """Deployment harness: builds and maintains a ring of ChordNodes."""

    def __init__(
        self,
        network: Optional[SimulatedNetwork] = None,
        m_bits: int = DEFAULT_M_BITS,
        replicas: int = 3,
        seed: SeedLike = None,
    ):
        if m_bits <= 0 or m_bits > 60:
            raise ValueError(f"m_bits must lie in (0, 60], got {m_bits}")
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.network = network or SimulatedNetwork()
        self._m = m_bits
        self._replicas = replicas
        self._rng = make_rng(seed)
        self.nodes: Dict[str, ChordNode] = {}

    def add_node(self, name: str, *, stabilize_rounds: int = 3) -> ChordNode:
        """Create a node, join it through a random member, repair the ring."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already in the ring")
        new_id = key_of(name, self._m)
        for existing in self.nodes:
            if key_of(existing, self._m) == new_id:
                # two names on one ring position make ownership intervals
                # ill-defined; refuse loudly instead of corrupting routing
                # (at 2^16 positions, birthday collisions are realistic —
                # widen m_bits or rename the node)
                raise ValueError(
                    f"id collision: {name!r} and {existing!r} both hash to "
                    f"{new_id} with m_bits={self._m}"
                )
        node = ChordNode(name, self.network, self._m, self._replicas)
        if self.nodes:
            bootstrap = self._random_member()
            node.join(bootstrap)
        self.nodes[name] = node
        self.stabilize_all(rounds=stabilize_rounds)
        if len(self.nodes) > 1:
            # the join hand-over moves owned keys but the newcomer joins
            # every replica set empty-handed — push current owners' keys
            # so the factor holds for the *next* failure, not just this one
            self.repair_replication()
        return node

    def remove_node(self, name: str, *, graceful: bool = True, stabilize_rounds: int = 3) -> None:
        """Remove a node — gracefully (data handoff) or as a crash."""
        node = self.nodes.pop(name, None)
        if node is None:
            raise KeyError(f"node {name!r} not in the ring")
        if graceful:
            node.leave()
        else:
            self.network.unregister(name)
        self.stabilize_all(rounds=stabilize_rounds)
        if self.nodes:
            # any removal erodes the replication factor: a crash drops
            # one copy of everything the victim held, and a graceful
            # leave concentrates its storage on a single successor —
            # restore the factor while the ring is healthy
            self.repair_replication()

    def stabilize_all(self, rounds: int = 1) -> None:
        """Run stabilize + fix_fingers on every node, ``rounds`` times."""
        for _ in range(rounds):
            for node in self.nodes.values():
                node.stabilize()
            for node in self.nodes.values():
                node.fix_fingers()

    def repair_replication(self) -> None:
        """Re-push every owned key to its current replica set.

        Crashes erode the replication factor (a dead replica is not
        automatically replaced); deployments run this periodically — the
        harness calls it after crash removals so durability holds across
        repeated failures.  Idempotent: stores deduplicate.
        """
        for node in list(self.nodes.values()):
            for key, values in list(node.storage.items()):
                if not node.responsible_for(key):
                    continue
                for replica in node.successors[: self._replicas - 1]:
                    if replica == node.name or not self.network.is_alive(replica):
                        continue
                    for value in values:
                        self.network.send(replica, "store", {"key": key, "value": value})

    def lookup(self, name_or_key) -> LookupResult:
        """Find the owner of a key (string names are hashed first)."""
        key = name_or_key if isinstance(name_or_key, int) else key_of(name_or_key, self._m)
        return self._any_node().find_successor(key)

    def put(self, name: str, value: Any) -> str:
        """Store ``value`` under a string key; returns the owning node."""
        return self._any_node().put(key_of(name, self._m), value)

    def get(self, name: str) -> List[Any]:
        """Fetch every value stored under a string key."""
        return self._any_node().get(key_of(name, self._m))

    def responsible_node(self, name: str) -> str:
        """Ground truth owner, computed centrally (for tests)."""
        key = key_of(name, self._m)
        ids = sorted((key_of(n, self._m), n) for n in self.nodes)
        for node_id, node_name in ids:
            if node_id >= key:
                return node_name
        return ids[0][1]

    def _any_node(self) -> ChordNode:
        if not self.nodes:
            raise RuntimeError("ring is empty")
        return self.nodes[self._random_member()]

    def _random_member(self) -> str:
        names = sorted(self.nodes)
        return names[int(self._rng.integers(0, len(names)))]
