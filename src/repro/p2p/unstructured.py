"""Unstructured overlay: flooding and random-walk feedback search.

The paper's motivating systems include Gnutella-style resource-sharing
networks, which have no DHT: peers hold their *own* feedback locally and
queries spread over a random overlay.  This module provides that
substrate as the contrast case to :mod:`repro.p2p.chord`:

* :class:`UnstructuredOverlay` — a connected random ``degree``-regular-ish
  graph of peers, each holding the feedback it issued;
* **flooding** search: a TTL-bounded breadth-first query, complete within
  its horizon but O(degree^TTL) messages;
* **random-walk** search: ``k`` walkers of bounded length, O(k·len)
  messages but probabilistic coverage.

The trade-off (flooding finds everything but costs orders of magnitude
more messages) is exactly the argument for structured storage, asserted
by the test suite and benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..feedback.records import EntityId, Feedback
from ..stats.rng import SeedLike, make_rng

__all__ = ["SearchResult", "UnstructuredOverlay"]


@dataclass(frozen=True)
class SearchResult:
    """Feedback gathered by a query, plus its cost."""

    feedbacks: Tuple[Feedback, ...]
    messages: int
    peers_reached: int


class UnstructuredOverlay:
    """Random overlay of peers, each storing its locally issued feedback."""

    def __init__(self, n_peers: int, degree: int = 4, seed: SeedLike = None):
        if n_peers < 2:
            raise ValueError(f"need at least 2 peers, got {n_peers}")
        if not 1 <= degree < n_peers:
            raise ValueError(f"degree must lie in [1, n_peers), got {degree}")
        self._rng = make_rng(seed)
        self._peers = [f"peer-{i}" for i in range(n_peers)]
        self._neighbors: Dict[str, Set[str]] = {p: set() for p in self._peers}
        self._local: Dict[str, List[Feedback]] = {p: [] for p in self._peers}
        self._build_graph(degree)

    # ------------------------------------------------------------------ #
    # topology

    def _build_graph(self, degree: int) -> None:
        """A connected random graph: ring backbone + random chords."""
        n = len(self._peers)
        for i in range(n):  # ring guarantees connectivity
            self._link(self._peers[i], self._peers[(i + 1) % n])
        attempts = 0
        while attempts < 20 * n:
            if all(len(nbrs) >= degree for nbrs in self._neighbors.values()):
                break
            a, b = self._rng.choice(n, size=2, replace=False)
            self._link(self._peers[int(a)], self._peers[int(b)])
            attempts += 1

    def _link(self, a: str, b: str) -> None:
        if a != b:
            self._neighbors[a].add(b)
            self._neighbors[b].add(a)

    @property
    def peers(self) -> List[str]:
        return list(self._peers)

    def neighbors(self, peer: str) -> Set[str]:
        """The peer's overlay neighbors."""
        try:
            return set(self._neighbors[peer])
        except KeyError:
            raise KeyError(f"unknown peer {peer!r}") from None

    def is_connected(self) -> bool:
        """Whole-overlay reachability check (sanity invariant)."""
        seen = {self._peers[0]}
        frontier = deque(seen)
        while frontier:
            for nxt in self._neighbors[frontier.popleft()]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self._peers)

    # ------------------------------------------------------------------ #
    # data

    def record(self, peer: str, feedback: Feedback) -> None:
        """Store a feedback at the peer that issued it."""
        if peer not in self._local:
            raise KeyError(f"unknown peer {peer!r}")
        self._local[peer].append(feedback)

    def total_feedback_about(self, server: EntityId) -> int:
        """Ground truth count across all peers (for coverage assertions)."""
        return sum(
            sum(1 for fb in items if fb.server == server)
            for items in self._local.values()
        )

    # ------------------------------------------------------------------ #
    # queries

    def flood_query(self, origin: str, server: EntityId, *, ttl: int = 4) -> SearchResult:
        """TTL-bounded flooding: complete within the horizon, expensive.

        Message count models one query message per edge traversal (the
        Gnutella cost), not per unique peer.
        """
        if origin not in self._local:
            raise KeyError(f"unknown peer {origin!r}")
        if ttl < 0:
            raise ValueError(f"ttl must be non-negative, got {ttl}")
        visited = {origin}
        frontier = deque([(origin, ttl)])
        messages = 0
        gathered: List[Feedback] = [
            fb for fb in self._local[origin] if fb.server == server
        ]
        while frontier:
            peer, budget = frontier.popleft()
            if budget == 0:
                continue
            for neighbor in self._neighbors[peer]:
                messages += 1  # the query travels this edge regardless
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                gathered.extend(
                    fb for fb in self._local[neighbor] if fb.server == server
                )
                frontier.append((neighbor, budget - 1))
        return SearchResult(
            feedbacks=tuple(sorted(gathered, key=lambda fb: fb.time)),
            messages=messages,
            peers_reached=len(visited),
        )

    def random_walk_query(
        self,
        origin: str,
        server: EntityId,
        *,
        walkers: int = 4,
        walk_length: int = 20,
        seed: SeedLike = None,
    ) -> SearchResult:
        """``walkers`` independent random walks: cheap, probabilistic coverage."""
        if origin not in self._local:
            raise KeyError(f"unknown peer {origin!r}")
        if walkers <= 0 or walk_length <= 0:
            raise ValueError("walkers and walk_length must be positive")
        rng = self._rng if seed is None else make_rng(seed)
        visited = {origin}
        messages = 0
        for _ in range(walkers):
            current = origin
            for _ in range(walk_length):
                neighbors = sorted(self._neighbors[current])
                current = neighbors[int(rng.integers(0, len(neighbors)))]
                messages += 1
                visited.add(current)
        gathered = [
            fb
            for peer in visited
            for fb in self._local[peer]
            if fb.server == server
        ]
        return SearchResult(
            feedbacks=tuple(sorted(gathered, key=lambda fb: fb.time)),
            messages=messages,
            peers_reached=len(visited),
        )
