"""Gossip-based reputation aggregation.

Sec. 6 of the paper cites gossip protocols (Zhou & Hwang, IPDPS 2007) as
the way unstructured P2P systems aggregate reputation without a central
server.  This module implements the standard **push-pull averaging**
primitive: every peer holds a local value; each round, peers pair up
with random partners and both adopt the pair's average.  The vector of
values converges exponentially fast to the global mean, which — when the
local value is a (sum, count) feedback summary for a server — yields
exactly the average trust function's output, decentralized.

:class:`ReputationGossip` packages that: peers contribute their local
feedback about each server, rounds of gossip run, and every peer ends up
able to answer "what is server X's global reputation?" within a small
error, no ledger required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..obs import runtime as _obs
from ..stats.rng import SeedLike, make_rng

__all__ = ["push_pull_round", "GossipAggregator", "ReputationGossip"]


def push_pull_round(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One synchronous push-pull averaging round over all peers.

    Peers are matched in random disjoint pairs (one peer idles when the
    population is odd); each pair averages.  Returns the new value
    vector; the sum (and therefore the mean) is invariant.
    """
    values = np.asarray(values, dtype=np.float64).copy()
    order = rng.permutation(values.size)
    for i in range(0, values.size - 1, 2):
        a, b = order[i], order[i + 1]
        mean = 0.5 * (values[a] + values[b])
        values[a] = mean
        values[b] = mean
    if _obs.enabled:
        _obs.registry.inc("p2p.gossip.rounds")
        # push-pull: each matched pair exchanges one message in each direction
        _obs.registry.inc("p2p.gossip.messages", 2 * (values.size // 2))
    return values


class GossipAggregator:
    """Push-pull averaging of one scalar per peer."""

    def __init__(self, initial_values: Sequence[float], seed: SeedLike = None):
        values = np.asarray(list(initial_values), dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("need a non-empty 1-D vector of initial values")
        self._values = values
        self._rng = make_rng(seed)
        self._rounds = 0

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def true_mean(self) -> float:
        return float(self._values.mean())

    def max_error(self) -> float:
        """Worst-case distance of any peer's estimate from the mean."""
        return float(np.abs(self._values - self._values.mean()).max())

    def run_round(self) -> None:
        """One synchronous push-pull averaging round."""
        with _obs.timer("p2p.gossip.round_seconds", peers=self._values.size):
            self._values = push_pull_round(self._values, self._rng)
        self._rounds += 1
        if _obs.enabled:
            # convergence gauges: dashboards watch the worst-case error
            # shrink geometrically round over round
            _obs.registry.set("p2p.gossip.peers", self._values.size)
            _obs.registry.set("p2p.gossip.convergence_error", self.max_error())

    def run_until(self, tolerance: float, max_rounds: int = 1000) -> int:
        """Gossip until every peer is within ``tolerance`` of the mean."""
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        while self.max_error() > tolerance:
            if self._rounds >= max_rounds:
                raise RuntimeError(
                    f"did not converge to {tolerance} within {max_rounds} rounds"
                )
            self.run_round()
        return self._rounds


@dataclass
class _Summary:
    """A peer's local feedback summary about one server."""

    positives: float = 0.0
    total: float = 0.0


class ReputationGossip:
    """Decentralized average-reputation computation via paired gossip.

    Each peer holds, per server, a (positives, total) summary of the
    feedback *it* issued.  Gossiping the two components separately (sum
    aggregation is implemented as mean aggregation times the fixed peer
    count) converges every peer's ratio estimate to the global average
    reputation — the decentralized counterpart of
    :class:`repro.trust.average.AverageTrust`.
    """

    def __init__(self, n_peers: int, seed: SeedLike = None):
        if n_peers < 2:
            raise ValueError(f"need at least 2 peers, got {n_peers}")
        self._n = n_peers
        self._rng = make_rng(seed)
        # per server: two vectors of per-peer local components
        self._positives: Dict[str, np.ndarray] = {}
        self._totals: Dict[str, np.ndarray] = {}
        self._rounds = 0

    @property
    def n_peers(self) -> int:
        return self._n

    @property
    def rounds(self) -> int:
        return self._rounds

    def servers(self) -> List[str]:
        """Servers with at least one recorded feedback."""
        return sorted(self._positives)

    def record_feedback(self, peer: int, server: str, outcome: int) -> None:
        """Peer ``peer`` locally records one transaction outcome for ``server``."""
        if not 0 <= peer < self._n:
            raise ValueError(f"peer index {peer} outside [0, {self._n})")
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        if server not in self._positives:
            self._positives[server] = np.zeros(self._n)
            self._totals[server] = np.zeros(self._n)
        self._positives[server][peer] += outcome
        self._totals[server][peer] += 1.0

    def run_rounds(self, rounds: int) -> None:
        """Run synchronous push-pull rounds over every tracked component."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            with _obs.timer("p2p.gossip.round_seconds", peers=self._n):
                for server in self._positives:
                    # one shared pairing per round keeps components consistent
                    order = self._rng.permutation(self._n)
                    self._positives[server] = _paired_average(
                        self._positives[server], order
                    )
                    self._totals[server] = _paired_average(
                        self._totals[server], order
                    )
                    if _obs.enabled:
                        _obs.registry.inc("p2p.gossip.messages", 2 * (self._n // 2))
            self._rounds += 1
            if _obs.enabled:
                _obs.registry.inc("p2p.gossip.rounds")
        if rounds and _obs.enabled:
            _obs.registry.set("p2p.gossip.peers", self._n)
            _obs.registry.set("p2p.gossip.tracked_servers", len(self._positives))

    def estimate(self, peer: int, server: str) -> float:
        """Peer ``peer``'s current estimate of ``server``'s reputation."""
        if server not in self._positives:
            raise KeyError(f"no feedback recorded for server {server!r}")
        total = self._totals[server][peer]
        if total <= 0:
            return 0.0
        return float(self._positives[server][peer] / total)

    def global_reputation(self, server: str) -> float:
        """Ground-truth average reputation (centralized, for comparison)."""
        if server not in self._positives:
            raise KeyError(f"no feedback recorded for server {server!r}")
        total = self._totals[server].sum()
        if total <= 0:
            return 0.0
        return float(self._positives[server].sum() / total)

    def estimation_spread(self, server: str) -> float:
        """Max disagreement between any peer's estimate and the truth."""
        truth = self.global_reputation(server)
        estimates = [
            self.estimate(peer, server)
            for peer in range(self._n)
            if self._totals[server][peer] > 0
        ]
        if not estimates:
            return 0.0
        return float(max(abs(e - truth) for e in estimates))


def _paired_average(values: np.ndarray, order: np.ndarray) -> np.ndarray:
    updated = values.copy()
    for i in range(0, order.size - 1, 2):
        a, b = order[i], order[i + 1]
        mean = 0.5 * (updated[a] + updated[b])
        updated[a] = mean
        updated[b] = mean
    return updated
