"""Extension experiments beyond the paper's figures.

Three analyses the paper motivates but does not plot, packaged as
first-class runners (``python -m repro.experiments ext-roc`` etc.):

* **ext-roc** — operating-point sweep of the single and multi tests on
  the Fig. 7 workload: FPR/TPR per confidence level plus AUC, the
  deployment-facing view of the detection/false-alarm trade-off.
* **ext-cheat-rate** — maximum sustainable iid cheat rate per scheme and
  history length: quantifies the paper's conclusion that a perfectly
  camouflaged attacker is bounded by the trust threshold, not by any
  pattern test.
* **ext-sybil** — cost of a sybil/whitewashing campaign versus the
  joining cost, the paper's Sec. 3.1 economic counter-measure as a
  curve (with the break-even fee for a given per-cheat gain).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..adversary.periodic import periodic_attack_history
from ..adversary.sybil import sybil_campaign_cost
from ..analysis.cheat_rate import max_sustainable_cheat_rate
from ..analysis.roc import auc, roc_curve
from ..core.model import generate_honest_outcomes
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from .common import PAPER_CONFIG, ExperimentResult, make_shared_calibrator

__all__ = ["run_ext_roc", "run_ext_cheat_rate", "run_ext_sybil"]


def run_ext_roc(
    *,
    confidences: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99),
    trials: int = 80,
    history_length: int = 800,
    attack_window: int = 30,
    base_seed: int = 2008,
    quick: bool = False,
) -> ExperimentResult:
    """Operating points of single vs. multi testing on the Fig. 7 workload."""
    if quick:
        trials = min(trials, 25)
        confidences = tuple(confidences)[::2]

    def honest_gen(rng):
        return generate_honest_outcomes(history_length, 0.95, seed=rng)

    def attack_gen(rng):
        return periodic_attack_history(history_length, attack_window, seed=rng)

    result = ExperimentResult(
        experiment="ext-roc",
        title="Operating points: single vs. multi testing (periodic workload)",
        columns=["confidence", "single_fpr", "single_tpr", "multi_fpr", "multi_tpr"],
        notes=(
            f"{trials} trials/point; honest p=0.95 vs periodic attack window "
            f"{attack_window}; history {history_length}"
        ),
    )
    curves = {}
    for name, factory in [
        ("single", lambda cfg: SingleBehaviorTest(cfg)),
        ("multi", lambda cfg: MultiBehaviorTest(cfg)),
    ]:
        curves[name] = roc_curve(
            honest_gen,
            attack_gen,
            test_factory=factory,
            confidences=confidences,
            trials=trials,
            seed=base_seed,
        )
    for single_pt, multi_pt in zip(curves["single"], curves["multi"]):
        result.add_row(
            confidence=single_pt.confidence,
            single_fpr=single_pt.false_positive_rate,
            single_tpr=single_pt.detection_rate,
            multi_fpr=multi_pt.false_positive_rate,
            multi_tpr=multi_pt.detection_rate,
        )
    result.notes += (
        f"; AUC single={auc(curves['single']):.3f} multi={auc(curves['multi']):.3f}"
    )
    return result


def run_ext_cheat_rate(
    *,
    history_lengths: Sequence[int] = (200, 400, 800, 1600),
    trials: int = 25,
    trust_threshold: float = 0.9,
    base_seed: int = 2008,
    quick: bool = False,
) -> ExperimentResult:
    """Max sustainable iid cheat rate per scheme and history length."""
    if quick:
        history_lengths = tuple(history_lengths)[:2]
        trials = min(trials, 10)
    config = PAPER_CONFIG
    calibrator = make_shared_calibrator(config)
    single = SingleBehaviorTest(config, calibrator)
    multi = MultiBehaviorTest(config, calibrator)
    result = ExperimentResult(
        experiment="ext-cheat-rate",
        title="Max sustainable iid cheat rate (camouflaged attacker)",
        columns=["history_length", "single", "multi", "trust_cap"],
        notes=(
            f"bisection at >=90% pass rate, {trials} trials/probe; the trust "
            f"threshold {trust_threshold} caps the rate at "
            f"{1 - trust_threshold:.2f} regardless of pattern testing"
        ),
    )
    for n in history_lengths:
        result.add_row(
            history_length=n,
            single=max_sustainable_cheat_rate(
                single,
                history_length=n,
                trust_threshold=trust_threshold,
                trials=trials,
                seed=base_seed,
            ),
            multi=max_sustainable_cheat_rate(
                multi,
                history_length=n,
                trust_threshold=trust_threshold,
                trials=trials,
                seed=base_seed,
            ),
            trust_cap=1.0 - trust_threshold,
        )
    return result


def run_ext_sybil(
    *,
    joining_costs: Sequence[float] = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0),
    target_bads: int = 20,
    warmup: int = 5,
    gain_per_cheat: float = 10.0,
    base_seed: int = 2008,  # accepted for CLI uniformity; model is closed-form
    quick: bool = False,
) -> ExperimentResult:
    """Sybil campaign cost vs. joining cost (the economic counter-measure)."""
    if quick:
        joining_costs = tuple(joining_costs)[::2]
    result = ExperimentResult(
        experiment="ext-sybil",
        title="Sybil campaign cost vs. joining cost",
        columns=["joining_cost", "campaign_cost", "campaign_gain", "profitable"],
        notes=(
            f"{target_bads} cheats, one per identity, {warmup}-transaction "
            f"warmup each, gain {gain_per_cheat}/cheat; behavior testing is "
            "structurally blind to sub-minimum histories — pricing identities "
            "is the defense (Sec. 3.1)"
        ),
    )
    gain = target_bads * gain_per_cheat
    for fee in joining_costs:
        cost = sybil_campaign_cost(
            target_bads, fee, warmup=warmup, cheats_each=1
        )
        result.add_row(
            joining_cost=fee,
            campaign_cost=cost,
            campaign_gain=gain,
            profitable=str(gain > cost),
        )
    return result
