"""Dependency-free SVG line charts for experiment results.

The evaluation figures are line charts; this module renders an
:class:`~repro.experiments.common.ExperimentResult` into a standalone
SVG (no matplotlib required — the reproduction environment is offline),
so ``python -m repro.experiments all --svg-dir figs/`` regenerates the
paper's figures as figures, not just tables.

The renderer is deliberately small: linear axes, ticks, per-series
polylines + markers, a legend.  NaN values (e.g. the naive-multi column
of Fig. 9 at large sizes) break the polyline, matching how such gaps are
plotted.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .common import ExperimentResult

__all__ = ["render_svg", "write_svg"]

# a colorblind-friendly cycle (Okabe-Ito)
_COLORS = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00")

_WIDTH, _HEIGHT = 640, 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 24, 48, 56


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not (
        isinstance(value, float) and math.isnan(value)
    )


def _ticks(low: float, high: float, target: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(target, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if span / step <= target + 1:
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9 * span:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def render_svg(
    result: ExperimentResult,
    *,
    x_column: Optional[str] = None,
    series: Optional[Sequence[str]] = None,
    log_x: bool = False,
) -> str:
    """Render the result as an SVG document string.

    ``x_column`` defaults to the first column; ``series`` to every other
    column.  ``log_x`` plots log10 of the x values (Fig. 9's size axis).
    """
    if not result.rows:
        raise ValueError("cannot plot an empty result")
    x_column = x_column or result.columns[0]
    series = list(series) if series is not None else [
        c for c in result.columns if c != x_column
    ]
    if not series:
        raise ValueError("need at least one series column")

    def x_of(row) -> float:
        value = float(row[x_column])
        if log_x:
            if value <= 0:
                raise ValueError("log_x requires positive x values")
            return math.log10(value)
        return value

    xs = [x_of(row) for row in result.rows]
    ys = [
        float(row[c])
        for row in result.rows
        for c in series
        if _is_number(row[c])
    ]
    if not ys:
        raise ValueError("no numeric data points to plot")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys + [0.0]), max(ys)
    if y_high == y_low:
        y_high = y_low + 1.0

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        if x_high == x_low:
            return _MARGIN_L + plot_w / 2
        return _MARGIN_L + (x - x_low) / (x_high - x_low) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + (1.0 - (y - y_low) / (y_high - y_low)) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{_escape(result.title)}</text>',
    ]

    # axes
    x0, y0 = _MARGIN_L, _MARGIN_T + plot_h
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{x0}" y1="{_MARGIN_T}" x2="{x0}" y2="{y0}" stroke="black"/>'
    )
    for tick in _ticks(x_low, x_high):
        tx = px(tick)
        label = _format_tick(10**tick if log_x else tick)
        parts.append(f'<line x1="{tx}" y1="{y0}" x2="{tx}" y2="{y0 + 5}" stroke="black"/>')
        parts.append(
            f'<text x="{tx}" y="{y0 + 18}" text-anchor="middle">{label}</text>'
        )
    for tick in _ticks(y_low, y_high):
        ty = py(tick)
        parts.append(f'<line x1="{x0 - 5}" y1="{ty}" x2="{x0}" y2="{ty}" stroke="black"/>')
        parts.append(
            f'<line x1="{x0}" y1="{ty}" x2="{x0 + plot_w}" y2="{ty}" '
            f'stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{x0 - 8}" y="{ty + 4}" text-anchor="end">{_format_tick(tick)}</text>'
        )
    parts.append(
        f'<text x="{x0 + plot_w / 2}" y="{_HEIGHT - 14}" text-anchor="middle">'
        f"{_escape(x_column)}</text>"
    )

    # series
    for index, name in enumerate(series):
        color = _COLORS[index % len(_COLORS)]
        segments: List[List[Tuple[float, float]]] = [[]]
        for row in result.rows:
            value = row[name]
            if _is_number(value):
                segments[-1].append((px(x_of(row)), py(float(value))))
            elif segments[-1]:
                segments.append([])  # NaN: break the line
        for segment in segments:
            if len(segment) >= 2:
                points = " ".join(f"{x:.1f},{y:.1f}" for x, y in segment)
                parts.append(
                    f'<polyline points="{points}" fill="none" stroke="{color}" '
                    f'stroke-width="2"/>'
                )
            for x, y in segment:
                parts.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" fill="{color}"/>'
                )
        # legend entry
        ly = _MARGIN_T + 8 + index * 18
        lx = _MARGIN_L + plot_w - 130
        parts.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 28}" y="{ly + 4}">{_escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(result: ExperimentResult, path, **kwargs) -> str:
    """Render and write the SVG; returns the path written."""
    document = render_svg(result, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return str(path)


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )
