"""Markdown report generation for experiment results.

Turns one or more :class:`~repro.experiments.common.ExperimentResult`
objects into a self-contained Markdown document (tables + expected-shape
notes), so regenerated figures can be dropped into EXPERIMENTS.md-style
records or CI artifacts without hand-formatting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .common import ExperimentResult

__all__ = ["result_to_markdown", "render_report", "EXPECTED_SHAPES"]

#: One-line reminder of the paper's qualitative claim per figure.
EXPECTED_SHAPES: Dict[str, str] = {
    "fig3": (
        "Bare average trust becomes free to attack beyond ~400 prep "
        "transactions; Scheme 1's cost decays with prep; Scheme 2 stays "
        "roughly constant and highest."
    ),
    "fig4": (
        "Bare EWMA(0.5) forces ~2-3 goods per bad independent of prep; "
        "the schemes only add cost on top."
    ),
    "fig5": (
        "Colluders make the bare average function free at every prep size; "
        "collusion-resilient Scheme 1 decays, Scheme 2 stays constant."
    ),
    "fig6": (
        "Same as fig5 under EWMA(0.5): fake positives rebuild trust for "
        "free without testing."
    ),
    "fig7": "Detection rate decreases monotonically with the attack window size.",
    "fig8": "The 95% threshold shrinks ~1/sqrt(k) and converges quickly.",
    "fig9": (
        "Single and optimized multi-testing scale linearly; naive "
        "multi-testing is quadratic."
    ),
    "ext-roc": (
        "Lower confidence buys detection at the price of false alarms; "
        "multi-testing dominates single testing in AUC on this workload."
    ),
    "ext-cheat-rate": (
        "A camouflaged iid attacker saturates the 1-threshold cap at every "
        "history length — phase 2 is the binding constraint."
    ),
    "ext-sybil": (
        "Campaign cost grows linearly in the joining fee; profitability "
        "flips once the fee exceeds gain-per-cheat minus warmup cost."
    ),
    "ext-matrix": (
        "Multi-testing flags every patterned attack at a modest extra "
        "false-alarm cost; only camouflage slips both schemes."
    ),
    "p2p_scale": (
        "Chord lookups stay at O(log n) hops as the ring grows and gossip "
        "reaches 1% agreement in O(log n) rounds, so decentralized "
        "feedback retrieval stays cheap at scale."
    ),
    "serve": (
        "Steady-state assess_many sweeps run many times faster than "
        "per-call assessment (memoized phase-1 verdicts; only touched "
        "servers pay recomputation) while returning identical verdicts."
    ),
    "ingest": (
        "Columnar/mmap batch ingest sustains millions of events per "
        "second (vs hundreds of thousands per-object), and the vectorized "
        "cold start from a persisted ledger beats object materialization "
        "by an order of magnitude with identical assessments."
    ),
    "cluster": (
        "Quorum-read assessment over replicated shards returns verdicts "
        "bit-identical to a single node; ingest pays the K-way replication "
        "write amplification and warm reads stay flat as shards grow."
    ),
}


def _markdown_escape(text: str) -> str:
    return text.replace("|", "\\|")


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a Markdown section with a pipe table."""
    lines: List[str] = [f"## {result.experiment}: {_markdown_escape(result.title)}", ""]
    shape = EXPECTED_SHAPES.get(result.experiment)
    if shape:
        lines += [f"*Expected shape:* {shape}", ""]
    if result.notes:
        lines += [f"*Parameters:* {_markdown_escape(result.notes)}", ""]
    header = "| " + " | ".join(result.columns) + " |"
    divider = "|" + "|".join("---" for _ in result.columns) + "|"
    lines += [header, divider]
    for row in result.rows:
        cells = []
        for column in result.columns:
            value = row[column]
            cells.append(f"{value:.4g}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def render_report(
    results: Iterable[ExperimentResult],
    *,
    title: str = "Reproduced evaluation figures",
    preamble: Optional[str] = None,
) -> str:
    """A full Markdown document for a batch of experiment results."""
    sections = [f"# {title}", ""]
    if preamble:
        sections += [preamble, ""]
    body = [result_to_markdown(result) for result in results]
    if not body:
        raise ValueError("need at least one experiment result")
    return "\n".join(sections + body)
