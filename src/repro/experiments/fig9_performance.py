"""Fig. 9 — running time of behavior testing vs. initial history size.

The paper measures single-behavior testing (O(n)) and the *optimized*
multi-behavior testing (O(n), reusing suffix statistics) on histories of
100k-800k transactions, plus notes that the naive multi-testing scheme is
O(n^2).  We time all three; the naive variant is measured on smaller
histories (its quadratic blow-up makes 800k pointless to wait for) so
the scaling contrast is visible without hour-long runs.

Absolute milliseconds obviously differ from the paper's 2008 desktop —
the reproduced claim is the *linear* scaling of the optimized schemes
and the quadratic scaling of the naive one.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..core.config import BehaviorTestConfig
from ..core.model import generate_honest_outcomes
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from .common import ExperimentResult, make_shared_calibrator

__all__ = ["run_fig9", "HISTORY_SIZES", "NAIVE_HISTORY_SIZES"]

HISTORY_SIZES = (100_000, 200_000, 400_000, 800_000)
NAIVE_HISTORY_SIZES = (10_000, 20_000, 40_000)


def run_fig9(
    *,
    history_sizes: Optional[Sequence[int]] = None,
    naive_sizes: Optional[Sequence[int]] = None,
    multi_step: int = 1000,
    repeats: int = 3,
    base_seed: int = 2008,
    quick: bool = False,
) -> ExperimentResult:
    """Reproduce Fig. 9 (seconds per behavior test)."""
    if history_sizes is None:
        history_sizes = (10_000, 50_000, 100_000) if quick else HISTORY_SIZES
    if naive_sizes is None:
        naive_sizes = (2_000, 5_000) if quick else NAIVE_HISTORY_SIZES
    if quick:
        repeats = 1
    # A larger multi-testing step keeps the number of rounds in the
    # hundreds at 800k transactions, mirroring the paper's large-history
    # setting; the calibration cache is pre-shared across schemes.
    config = BehaviorTestConfig(multi_step=multi_step)
    calibrator = make_shared_calibrator(config)
    single = SingleBehaviorTest(config, calibrator)
    # collect_all=True: every suffix round always runs, so the timing
    # measures a fixed amount of work rather than an early-stop that
    # depends on whether some round happened to fail.
    multi_fast = MultiBehaviorTest(
        config, calibrator, strategy="optimized", collect_all=True
    )
    multi_naive = MultiBehaviorTest(
        config, calibrator, strategy="naive", collect_all=True
    )

    result = ExperimentResult(
        experiment="fig9",
        title="Behavior-testing running time vs. history size (seconds)",
        columns=["history_size", "single_s", "multi_optimized_s", "multi_naive_s"],
        notes=(
            f"multi-testing step k={multi_step}; best of {repeats} runs; "
            "naive multi-testing timed only at the sizes listed (O(n^2))"
        ),
    )
    naive_set = set(naive_sizes)
    for n in sorted(set(history_sizes) | naive_set):
        outcomes = generate_honest_outcomes(n, 0.95, seed=base_seed)
        # Warm the threshold cache so timings measure the algorithms, not
        # one-off Monte-Carlo calibrations.
        single.test(outcomes)
        multi_fast.test(outcomes)
        row = {
            "history_size": n,
            "single_s": _best_time(lambda: single.test(outcomes), repeats),
            "multi_optimized_s": _best_time(lambda: multi_fast.test(outcomes), repeats),
            "multi_naive_s": (
                _best_time(lambda: multi_naive.test(outcomes), repeats)
                if n in naive_set
                else float("nan")
            ),
        }
        result.add_row(**row)
    return result


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
