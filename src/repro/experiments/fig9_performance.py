"""Fig. 9 — running time of behavior testing vs. initial history size.

The paper measures single-behavior testing (O(n)) and the *optimized*
multi-behavior testing (O(n), reusing suffix statistics) on histories of
100k-800k transactions, plus notes that the naive multi-testing scheme is
O(n^2).  We time all three; the naive variant is measured on smaller
histories (its quadratic blow-up makes 800k pointless to wait for) so
the scaling contrast is visible without hour-long runs.

Timings flow through the :mod:`repro.obs` layer rather than ad-hoc
``perf_counter`` calls: every measured call runs under an
``experiments.fig9.test_seconds`` timer (labelled by scheme and history
size), the whole sweep is covered by nested spans so a trace export
shows where the wall time went, and ``bench_path=`` emits the
machine-readable ``BENCH_fig9.json`` artifact (see
:mod:`repro.obs.bench`) that CI uploads and future PRs diff against.

Absolute milliseconds obviously differ from the paper's 2008 desktop —
the reproduced claim is the *linear* scaling of the optimized schemes
and the quadratic scaling of the naive one.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Union

from .. import obs
from ..core.config import BehaviorTestConfig
from ..core.model import generate_honest_outcomes
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from .common import ExperimentResult, make_shared_calibrator

__all__ = ["run_fig9", "HISTORY_SIZES", "NAIVE_HISTORY_SIZES"]

HISTORY_SIZES = (100_000, 200_000, 400_000, 800_000)
NAIVE_HISTORY_SIZES = (10_000, 20_000, 40_000)

_TIMER_METRIC = "experiments.fig9.test_seconds"


def run_fig9(
    *,
    history_sizes: Optional[Sequence[int]] = None,
    naive_sizes: Optional[Sequence[int]] = None,
    multi_step: int = 1000,
    repeats: int = 3,
    base_seed: int = 2008,
    quick: bool = False,
    bench_path: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Fig. 9 (seconds per behavior test).

    When ``bench_path`` is given, a schema-validated ``BENCH_fig9.json``
    (scheme → history size → mean/min seconds) is written there through
    the :mod:`repro.obs.bench` layer.
    """
    if history_sizes is None:
        history_sizes = (10_000, 50_000, 100_000) if quick else HISTORY_SIZES
    if naive_sizes is None:
        naive_sizes = (2_000, 5_000) if quick else NAIVE_HISTORY_SIZES
    if quick:
        repeats = 1
    # A larger multi-testing step keeps the number of rounds in the
    # hundreds at 800k transactions, mirroring the paper's large-history
    # setting; the calibration cache is pre-shared across schemes.
    config = BehaviorTestConfig(multi_step=multi_step)
    calibrator = make_shared_calibrator(config)
    single = SingleBehaviorTest(config, calibrator)
    # collect_all=True: every suffix round always runs, so the timing
    # measures a fixed amount of work rather than an early-stop that
    # depends on whether some round happened to fail.
    multi_fast = MultiBehaviorTest(
        config, calibrator, strategy="optimized", collect_all=True
    )
    multi_naive = MultiBehaviorTest(
        config, calibrator, strategy="naive", collect_all=True
    )

    result = ExperimentResult(
        experiment="fig9",
        title="Behavior-testing running time vs. history size (seconds)",
        columns=["history_size", "single_s", "multi_optimized_s", "multi_naive_s"],
        notes=(
            f"multi-testing step k={multi_step}; best of {repeats} runs; "
            "naive multi-testing timed only at the sizes listed (O(n^2))"
        ),
    )

    # Measure through the obs layer: reuse the ambient session when the
    # caller already enabled collection (so its tracer sees our spans),
    # otherwise activate a private scoped session just for this sweep.
    if obs.is_enabled():
        scope = contextlib.nullcontext(
            obs.ObsSession(obs.get_registry(), obs.get_tracer())
        )
    else:
        scope = obs.activate()

    bench_rows: List[Dict[str, object]] = []
    naive_set = set(naive_sizes)
    with scope as session:
        registry = session.registry
        with obs.span("experiments.fig9.run", quick=quick):
            for n in sorted(set(history_sizes) | naive_set):
                with obs.span("experiments.fig9.prepare", history_size=n):
                    outcomes = generate_honest_outcomes(n, 0.95, seed=base_seed)
                    # Warm the threshold cache so timings measure the
                    # algorithms, not one-off Monte-Carlo calibrations.
                    single.test(outcomes)
                    multi_fast.test(outcomes)
                schemes = [
                    ("single", single.test),
                    ("multi_optimized", multi_fast.test),
                ]
                if n in naive_set:
                    schemes.append(("multi_naive", multi_naive.test))
                row: Dict[str, Union[int, float]] = {
                    "history_size": n,
                    "multi_naive_s": float("nan"),
                }
                for scheme, fn in schemes:
                    with obs.span(
                        "experiments.fig9.measure", scheme=scheme, history_size=n
                    ):
                        for _ in range(max(repeats, 1)):
                            with obs.timer(
                                _TIMER_METRIC, scheme=scheme, history_size=n
                            ):
                                fn(outcomes)
                    hist = registry.histogram(
                        _TIMER_METRIC, scheme=scheme, history_size=n
                    )
                    row[f"{scheme}_s"] = hist.min
                    bench_rows.append(
                        {
                            "name": scheme,
                            "params": {"history_size": n},
                            "stats": {
                                "mean_s": hist.mean,
                                "min_s": hist.min,
                                # tail latency, preferred by `repro obs diff`
                                "p95_s": hist.p95,
                                "repeats": hist.count,
                            },
                        }
                    )
                result.add_row(**row)
            if bench_path is not None:
                with obs.span("experiments.fig9.export"):
                    obs.write_bench_json(
                        bench_path,
                        "fig9",
                        bench_rows,
                        meta=obs.run_metadata(
                            seed=base_seed,
                            config=config,
                            quick=quick,
                            multi_step=multi_step,
                            repeats=repeats,
                        ),
                    )
    return result
