"""Fig. 9 — running time of behavior testing vs. initial history size.

The paper measures single-behavior testing (O(n)) and the *optimized*
multi-behavior testing (O(n), reusing suffix statistics) on histories of
100k-800k transactions, plus notes that the naive multi-testing scheme is
O(n^2).  We time all three; the naive variant is measured on smaller
histories (its quadratic blow-up makes 800k pointless to wait for) so
the scaling contrast is visible without hour-long runs.

Timings flow through the :mod:`repro.obs` layer rather than ad-hoc
``perf_counter`` calls: every measured call runs under an
``experiments.fig9.test_seconds`` timer (labelled by scheme and history
size), the whole sweep is covered by nested spans so a trace export
shows where the wall time went, and ``bench_path=`` emits the
machine-readable ``BENCH_fig9.json`` artifact (see
:mod:`repro.obs.bench`) that CI uploads and future PRs diff against.

Absolute milliseconds obviously differ from the paper's 2008 desktop —
the reproduced claim is the *linear* scaling of the optimized schemes
and the quadratic scaling of the naive one.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Union

from .. import obs
from ..core.config import BehaviorTestConfig
from ..core.incremental import IncrementalBehaviorState
from ..core.model import generate_honest_outcomes
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from ..feedback.history import TransactionHistory
from .common import ExperimentResult, make_shared_calibrator

__all__ = ["run_fig9", "HISTORY_SIZES", "NAIVE_HISTORY_SIZES"]

HISTORY_SIZES = (100_000, 200_000, 400_000, 800_000)
NAIVE_HISTORY_SIZES = (10_000, 20_000, 40_000)

_TIMER_METRIC = "experiments.fig9.test_seconds"
_ENGINES = ("batch", "incremental")


def run_fig9(
    *,
    history_sizes: Optional[Sequence[int]] = None,
    naive_sizes: Optional[Sequence[int]] = None,
    multi_step: int = 1000,
    repeats: int = 3,
    base_seed: int = 2008,
    quick: bool = False,
    bench_path: Optional[str] = None,
    events_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    profile_sample_interval: int = 0,
    profile_sample_hz: float = 97.0,
    engine: str = "batch",
) -> ExperimentResult:
    """Reproduce Fig. 9 (seconds per behavior test).

    When ``bench_path`` is given, a schema-validated ``BENCH_fig9.json``
    (scheme → history size → mean/min seconds) is written there through
    the :mod:`repro.obs.bench` layer.  ``events_path`` streams progress
    heartbeats (one per timed measurement) to a JSONL log for
    ``repro obs top``; ``profile_path`` runs the sweep under a phase
    profiler and writes both ``PROFILE_fig9.json`` and the sibling
    flamegraph-ready ``.folded`` file.

    ``engine="incremental"`` additionally times the serving fast path
    (:class:`~repro.core.incremental.IncrementalBehaviorState`): seconds
    to re-judge after one new *window* of feedback arrived, the
    amortized cost the batch schemes re-pay in full.  The extra
    ``multi_incremental_s`` column only appears in this mode (the
    default column list is pinned), and the incremental verdict is
    asserted identical to ``multi_optimized``'s at every size.
    """
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if history_sizes is None:
        history_sizes = (10_000, 50_000, 100_000) if quick else HISTORY_SIZES
    if naive_sizes is None:
        naive_sizes = (2_000, 5_000) if quick else NAIVE_HISTORY_SIZES
    if quick:
        repeats = 1
    # A larger multi-testing step keeps the number of rounds in the
    # hundreds at 800k transactions, mirroring the paper's large-history
    # setting; the calibration cache is pre-shared across schemes.
    config = BehaviorTestConfig(multi_step=multi_step)
    calibrator = make_shared_calibrator(config)
    single = SingleBehaviorTest(config, calibrator)
    # collect_all=True: every suffix round always runs, so the timing
    # measures a fixed amount of work rather than an early-stop that
    # depends on whether some round happened to fail.
    multi_fast = MultiBehaviorTest(
        config, calibrator, strategy="optimized", collect_all=True
    )
    multi_naive = MultiBehaviorTest(
        config, calibrator, strategy="naive", collect_all=True
    )

    columns = ["history_size", "single_s", "multi_optimized_s", "multi_naive_s"]
    notes = (
        f"multi-testing step k={multi_step}; best of {repeats} runs; "
        "naive multi-testing timed only at the sizes listed (O(n^2))"
    )
    if engine == "incremental":
        # Engine-mode column is strictly additive: the default column
        # list above is pinned by downstream consumers.
        columns.append("multi_incremental_s")
        notes += "; incremental column: re-judge after one new window"
    result = ExperimentResult(
        experiment="fig9",
        title="Behavior-testing running time vs. history size (seconds)",
        columns=columns,
        notes=notes,
    )

    # Measure through the obs layer: reuse the ambient session when the
    # caller already enabled collection (so its tracer sees our spans),
    # otherwise activate a private scoped session just for this sweep.
    if obs.is_enabled():
        scope = contextlib.nullcontext(
            obs.ObsSession(obs.get_registry(), obs.get_tracer())
        )
    else:
        scope = obs.activate()
    run_meta = obs.run_metadata(
        seed=base_seed,
        config=config,
        experiment="fig9",
        quick=quick,
        multi_step=multi_step,
        repeats=repeats,
    )
    log = (
        obs.EventLog(events_path, run_meta=run_meta)
        if events_path is not None
        else None
    )
    if profile_path is not None:
        # Out-of-band periodic sampling by default: the profiled thread
        # pays nothing per call, so the <10% overhead bound asserted in
        # benchmarks/ holds for exactly this configuration.  tracemalloc
        # (and the per-call-event sys.setprofile sampler) would distort
        # the very timings this figure exists to measure.
        profile_scope = obs.profile_session(
            sample_interval=profile_sample_interval,
            sample_hz=profile_sample_hz,
            track_memory=False,
        )
    else:
        profile_scope = contextlib.nullcontext()

    bench_rows: List[Dict[str, object]] = []
    naive_set = set(naive_sizes)
    sizes = sorted(set(history_sizes) | naive_set)
    monitor = None
    if log is not None:
        per_size = (3 if engine == "incremental" else 2)
        total = sum(
            max(repeats, 1) * (per_size + (1 if n in naive_set else 0))
            for n in sizes
        )
        monitor = obs.ProgressMonitor(
            log,
            total=total,
            label="measurements",
            interval_seconds=None,
            interval_ticks=1,
        )
        monitor.start(experiment="fig9")
    with scope as session, profile_scope as profiler:
        registry = session.registry
        with obs.span("experiments.fig9.run", quick=quick):
            for n in sizes:
                with obs.span("experiments.fig9.prepare", history_size=n):
                    outcomes = generate_honest_outcomes(n, 0.95, seed=base_seed)
                    # Warm the threshold cache so timings measure the
                    # algorithms, not one-off Monte-Carlo calibrations.
                    single.test(outcomes)
                    multi_fast.test(outcomes)
                    state = None
                    if engine == "incremental":
                        # Dry-run the exact fold/judge sequence once so the
                        # grown history lengths' ε-thresholds are calibrated
                        # before timing, like the batch warm-up above.
                        warm = IncrementalBehaviorState(
                            multi_fast, TransactionHistory.from_outcomes(outcomes)
                        )
                        warm.verdict()
                        for _ in range(max(repeats, 1)):
                            for _ in range(config.window_size):
                                warm.fold(1)
                            warm.verdict()
                        state = IncrementalBehaviorState(
                            multi_fast, TransactionHistory.from_outcomes(outcomes)
                        )
                        state.verdict()  # warm the window-count cache
                schemes = [
                    ("single", single.test),
                    ("multi_optimized", multi_fast.test),
                ]
                if n in naive_set:
                    schemes.append(("multi_naive", multi_naive.test))
                if state is not None:

                    def fold_window_and_judge(
                        _ignored, _state=state, _m=config.window_size
                    ):
                        # One new window of feedback, then re-judge: the
                        # cached counts extend O(m) and the suffix walk
                        # re-runs over them — the serving amortized cost.
                        for _ in range(_m):
                            _state.fold(1)
                        return _state.verdict()

                    schemes.append(("multi_incremental", fold_window_and_judge))
                row: Dict[str, Union[int, float]] = {
                    "history_size": n,
                    "multi_naive_s": float("nan"),
                }
                for scheme, fn in schemes:
                    with obs.span(
                        "experiments.fig9.measure", scheme=scheme, history_size=n
                    ):
                        for _ in range(max(repeats, 1)):
                            with obs.timer(
                                _TIMER_METRIC, scheme=scheme, history_size=n
                            ):
                                fn(outcomes)
                            if monitor is not None:
                                monitor.tick(1, tests=1)
                    hist = registry.histogram(
                        _TIMER_METRIC, scheme=scheme, history_size=n
                    )
                    row[f"{scheme}_s"] = hist.min
                    bench_rows.append(
                        {
                            "name": scheme,
                            "params": {"history_size": n},
                            "stats": {
                                "mean_s": hist.mean,
                                "min_s": hist.min,
                                # tail latency, preferred by `repro obs diff`
                                "p95_s": hist.p95,
                                "repeats": hist.count,
                            },
                        }
                    )
                if state is not None:
                    # The serving path must be bit-identical to the batch
                    # scheme on the history it grew to.
                    expected = multi_fast.test(state.history)
                    if state.verdict() != expected:
                        raise AssertionError(
                            "incremental verdict diverged from batch "
                            f"multi-testing at history_size={n}"
                        )
                result.add_row(**row)
            if bench_path is not None:
                with obs.span("experiments.fig9.export"):
                    obs.write_bench_json(bench_path, "fig9", bench_rows, meta=run_meta)
        if log is not None:
            log.emit_metrics(registry)
    if profile_path is not None and profiler is not None:
        obs.write_profile_json(profile_path, "fig9", profiler, meta=run_meta)
        obs.write_folded(obs.folded_path_for(profile_path), profiler)
    if monitor is not None:
        monitor.finish(experiment="fig9")
    if log is not None:
        log.emit("run_end", experiment="fig9")
        log.close()
    return result
