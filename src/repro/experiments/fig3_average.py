"""Fig. 3 — cost of attackers when varying initial histories: average function.

x axis: preparation-phase size; y axis: good transactions needed to
finish 20 bad ones.  Series: bare average trust function ("Average"),
single behavior testing + average ("Scheme1 + Average") and multi
behavior testing + average ("Scheme2 + Average").

Expected shape (paper): the bare average function's cost drops to zero
once the prep history exceeds ~400 transactions (a pure hibernating
attack becomes free); Scheme 1 imposes extra cost that *decays* as the
prep grows (the single test dilutes); Scheme 2's cost stays roughly
constant and dominates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..trust.average import AverageTrust
from .attack_cost import attack_cost_sweep
from .common import ExperimentResult

__all__ = ["run_fig3", "PREP_SIZES", "QUICK_PREP_SIZES"]

PREP_SIZES = (100, 200, 300, 400, 500, 600, 700, 800)
QUICK_PREP_SIZES = (100, 400, 800)


def run_fig3(
    *,
    prep_sizes: Optional[Sequence[int]] = None,
    n_seeds: int = 5,
    base_seed: int = 2008,
    quick: bool = False,
) -> ExperimentResult:
    """Reproduce Fig. 3."""
    if prep_sizes is None:
        prep_sizes = QUICK_PREP_SIZES if quick else PREP_SIZES
    if quick:
        n_seeds = min(n_seeds, 2)
    result = ExperimentResult(
        experiment="fig3",
        title="Cost of attackers vs. initial history size (average trust function)",
        columns=["prep_size", "none", "scheme1", "scheme2"],
        notes=(
            "cost = good transactions needed to finish 20 bad ones; "
            f"prep honesty 0.95, trust threshold 0.9, mean of {n_seeds} seeds"
        ),
    )
    return attack_cost_sweep(
        result,
        AverageTrust,
        prep_sizes=prep_sizes,
        n_seeds=n_seeds,
        base_seed=base_seed,
    )
