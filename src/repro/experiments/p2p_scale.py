"""P2P substrate scaling: Chord lookup cost and gossip convergence vs. size.

Not a figure from the paper — the paper *assumes* all feedback about a
server is retrievable ("special data organization schemes in P2P
systems") and points at gossip aggregation for unstructured networks.
This experiment quantifies that substrate at growing network sizes: mean
lookup hop count and per-lookup latency on a Chord ring (O(log n)
claim), and push-pull gossip rounds plus per-round latency to reach 1%
agreement (O(log n) rounds claim).

Like fig7/fig9, timings flow through the obs layer; ``bench_path``
emits a schema-valid ``BENCH_p2p_scale.json`` so the substrate joins the
regression gate, and ``events_path`` streams progress heartbeats for
``repro obs top``.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..p2p.chord import ChordRing
from ..p2p.gossip import GossipAggregator
from ..p2p.network import SimulatedNetwork
from ..stats.rng import make_rng
from .common import ExperimentResult

__all__ = ["run_p2p_scale", "NODE_COUNTS"]

NODE_COUNTS = (16, 32, 64, 128)

_LOOKUP_METRIC = "experiments.p2p_scale.lookup_seconds"
_ROUND_METRIC = "experiments.p2p_scale.gossip_round_seconds"
_ASSESS_METRIC = "experiments.p2p_scale.assess_sweep_seconds"
_ENGINES = ("direct", "incremental")


def _write_fleet_artifacts(
    fleet_dir: str,
    registry,
    ring: ChordRing,
    store,
    recorder,
    run_meta: Dict[str, object],
) -> None:
    """Write FLEET/TSDB/POSTMORTEM artifacts for ``--fleet-dir`` runs.

    Per-node metrics accumulate across every ring size in the sweep
    (node names are reused between sizes); the topology and the
    consistency report reflect the final — largest — ring.
    """
    per_node, _unscoped = obs.split_snapshot(registry.snapshot())
    aggregate = obs.aggregate_snapshots(per_node)
    topology = obs.topology_snapshot(ring)
    consistency = obs.check_ring(ring)
    slo_rows = obs.evaluation_rows(obs.evaluate_fleet_slos(aggregate))
    payload = obs.fleet_payload(
        topology=topology,
        per_node=per_node,
        consistency=consistency,
        aggregate=aggregate,
        slo=slo_rows,
        meta=run_meta,
    )
    obs.write_fleet_json(
        os.path.join(fleet_dir, "FLEET_p2p_scale.json"), payload
    )
    if store is not None:
        store.dump(os.path.join(fleet_dir, "TSDB_fleet.jsonl"))
    if recorder is not None:
        for entry in topology["nodes"][:2]:
            node = str(entry["name"])
            bundle = obs.node_bundle(
                recorder, node, topology=topology, reason="fleet_export"
            )
            path = os.path.join(fleet_dir, f"POSTMORTEM_fleet_{node}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, indent=2, sort_keys=True, default=repr)
                handle.write("\n")


def run_p2p_scale(
    *,
    node_counts: Optional[Sequence[int]] = None,
    lookups: int = 50,
    gossip_tolerance: float = 0.01,
    max_rounds: int = 500,
    base_seed: int = 2008,
    quick: bool = False,
    bench_path: Optional[str] = None,
    events_path: Optional[str] = None,
    fleet_dir: Optional[str] = None,
    engine: str = "direct",
) -> ExperimentResult:
    """Scale the P2P substrate and measure lookup and gossip cost.

    For every network size: build a Chord ring, time ``lookups`` random
    key lookups (recording hop counts), then gossip a random value
    vector of the same size to within ``gossip_tolerance`` of the mean,
    timing every round.  ``bench_path`` writes the artifact through
    :mod:`repro.obs.bench`; ``events_path`` a heartbeat JSONL log.

    ``engine="incremental"`` additionally assesses one synthetic server
    per node at every size, per-call and through
    :class:`~repro.serve.AssessmentService` (verdicts asserted
    identical); the extra ``assess_percall_s`` / ``assess_serve_s``
    columns only appear in this mode — the default column list is
    pinned.

    ``fleet_dir`` turns on fleet-scope observability: rings run on a
    named :class:`~repro.p2p.network.SimulatedNetwork` with per-link
    metrics, a flight recorder plus metric-history store capture the
    whole sweep, and the directory receives ``FLEET_p2p_scale.json``
    (per-node snapshots, topology, ring consistency, fleet SLOs),
    ``TSDB_fleet.jsonl``, and node-scoped ``POSTMORTEM_fleet_*.json``
    bundles — render with ``repro obs fleet <dir>``.
    """
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if node_counts is None:
        node_counts = (8, 16) if quick else NODE_COUNTS
    if lookups < 1:
        raise ValueError(f"lookups must be >= 1, got {lookups}")
    if quick:
        lookups = min(lookups, 20)
    node_counts = tuple(node_counts)

    columns = [
        "n_nodes",
        "chord_mean_hops",
        "chord_lookup_s",
        "gossip_rounds",
        "gossip_round_s",
    ]
    notes = (
        f"{lookups} lookups per ring size; gossip to "
        f"{gossip_tolerance:.0%} agreement; lookup/round seconds are "
        "per-call minima through the obs layer"
    )
    assessor = None
    if engine == "incremental":
        # Engine-mode columns are strictly additive: the default column
        # list above is pinned by downstream consumers.
        columns += ["assess_percall_s", "assess_serve_s"]
        notes += "; assess columns: full-population assessment sweep"
        from ..core.config import AssessorConfig
        from ..core.two_phase import Assessor

        assessor = Assessor.from_config(
            AssessorConfig(trust_function="average", behavior_test="multi")
        )
    result = ExperimentResult(
        experiment="p2p_scale",
        title="P2P substrate scaling (Chord lookups, gossip convergence)",
        columns=columns,
        notes=notes,
    )

    if obs.is_enabled():
        scope = contextlib.nullcontext(
            obs.ObsSession(obs.get_registry(), obs.get_tracer())
        )
    else:
        scope = obs.activate()
    run_meta = obs.run_metadata(
        seed=base_seed,
        config={"lookups": lookups, "gossip_tolerance": gossip_tolerance},
        experiment="p2p_scale",
        quick=quick,
    )
    log = (
        obs.EventLog(events_path, run_meta=run_meta)
        if events_path is not None
        else None
    )
    monitor = None
    if log is not None:
        monitor = obs.ProgressMonitor(
            log,
            total=len(node_counts) * lookups,
            label="lookups",
            interval_seconds=None,
            interval_ticks=max(lookups // 4, 1),
        )
        monitor.start(experiment="p2p_scale")

    bench_rows: List[Dict[str, object]] = []
    fleet_store: Optional[obs.TimeSeriesStore] = None
    recorder = None
    with contextlib.ExitStack() as stack:
        session = stack.enter_context(scope)
        registry = session.registry
        if fleet_dir is not None:
            fleet_store = obs.TimeSeriesStore(max_samples=512, max_series=16384)
            recorder = stack.enter_context(
                obs.flight_recording(fleet_dir, store=fleet_store)
            )
        with obs.span("experiments.p2p_scale.run", quick=quick):
            for n in node_counts:
                with obs.span("experiments.p2p_scale.build", n_nodes=n):
                    network = (
                        SimulatedNetwork(
                            name=f"p2p_scale_n{n}", link_metrics=True
                        )
                        if fleet_dir is not None
                        else None
                    )
                    ring = ChordRing(network=network, seed=base_seed + n)
                    for i in range(n):
                        ring.add_node(f"node-{i}")
                if fleet_store is not None:
                    fleet_store.record_snapshot(registry.snapshot(), time.time())
                hops: List[int] = []
                with obs.span("experiments.p2p_scale.lookups", n_nodes=n):
                    for i in range(lookups):
                        with obs.timer(_LOOKUP_METRIC, n_nodes=n):
                            found = ring.lookup(f"server-{i}")
                        hops.append(found.hops)
                        if monitor is not None:
                            monitor.tick(1, lookups=1)
                if fleet_store is not None:
                    fleet_store.record_snapshot(registry.snapshot(), time.time())
                mean_hops = float(np.mean(hops))
                with obs.span("experiments.p2p_scale.gossip", n_nodes=n):
                    values = make_rng(base_seed + n).random(n)
                    agg = GossipAggregator(values, seed=base_seed + n)
                    while agg.max_error() > gossip_tolerance:
                        if agg.rounds >= max_rounds:
                            raise RuntimeError(
                                f"gossip did not reach {gossip_tolerance} "
                                f"within {max_rounds} rounds at n={n}"
                            )
                        with obs.timer(_ROUND_METRIC, n_nodes=n):
                            agg.run_round()
                        if monitor is not None:
                            monitor.tick(0, gossip_rounds=1)
                if fleet_store is not None:
                    fleet_store.record_snapshot(registry.snapshot(), time.time())
                lookup_hist = registry.histogram(_LOOKUP_METRIC, n_nodes=n)
                round_hist = registry.histogram(_ROUND_METRIC, n_nodes=n)
                row = {
                    "n_nodes": n,
                    "chord_mean_hops": mean_hops,
                    "chord_lookup_s": lookup_hist.min,
                    "gossip_rounds": agg.rounds,
                    "gossip_round_s": round_hist.min,
                }
                if assessor is not None:
                    with obs.span("experiments.p2p_scale.assess", n_nodes=n):
                        from ..serve import AssessmentService
                        from .serve_scale import _build_population

                        histories = _build_population(n, base_seed=base_seed + n)
                        for history in histories:
                            assessor.assess(history)  # warm ε-calibration
                        service = AssessmentService(assessor)
                        for history in histories:
                            service.add_server(history)
                        service.assess_many()  # cold sweep fills the caches
                        with obs.timer(_ASSESS_METRIC, mode="serve", n_nodes=n):
                            batched = service.assess_many()
                        with obs.timer(_ASSESS_METRIC, mode="percall", n_nodes=n):
                            percall = {
                                history.server: assessor.assess(history)
                                for history in histories
                            }
                        if any(
                            batched[s] != assessment
                            for s, assessment in percall.items()
                        ):
                            raise AssertionError(
                                "serving assessments diverged from per-call "
                                f"assessment at n={n}"
                            )
                    for mode, column in (
                        ("percall", "assess_percall_s"),
                        ("serve", "assess_serve_s"),
                    ):
                        hist = registry.histogram(
                            _ASSESS_METRIC, mode=mode, n_nodes=n
                        )
                        row[column] = hist.min
                        bench_rows.append(
                            {
                                "name": f"assess_{mode}",
                                "params": {"n_nodes": n},
                                "stats": {
                                    "mean_s": hist.mean,
                                    "min_s": hist.min,
                                    "p95_s": hist.p95,
                                    "repeats": hist.count,
                                },
                            }
                        )
                result.add_row(**row)
                bench_rows.append(
                    {
                        "name": "chord_lookup",
                        "params": {"n_nodes": n},
                        "stats": {
                            "mean_s": lookup_hist.mean,
                            "min_s": lookup_hist.min,
                            "p95_s": lookup_hist.p95,
                            "repeats": lookup_hist.count,
                            "mean_hops": mean_hops,
                        },
                    }
                )
                bench_rows.append(
                    {
                        "name": "gossip_round",
                        "params": {"n_nodes": n},
                        "stats": {
                            "mean_s": round_hist.mean,
                            "min_s": round_hist.min,
                            "p95_s": round_hist.p95,
                            "repeats": round_hist.count,
                            "rounds": agg.rounds,
                        },
                    }
                )
            if bench_path is not None:
                with obs.span("experiments.p2p_scale.export"):
                    obs.write_bench_json(
                        bench_path, "p2p_scale", bench_rows, meta=run_meta
                    )
            if fleet_dir is not None:
                with obs.span("experiments.p2p_scale.fleet_export"):
                    _write_fleet_artifacts(
                        fleet_dir, registry, ring, fleet_store, recorder, run_meta
                    )
        if log is not None:
            log.emit_metrics(registry)
    if monitor is not None:
        monitor.finish(experiment="p2p_scale")
    if log is not None:
        log.emit("run_end", experiment="p2p_scale")
        log.close()
    return result
