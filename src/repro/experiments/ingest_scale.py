"""Ledger ingest and cold-assessment throughput: columnar vs per-object.

Not a figure from the paper — this experiment quantifies the feedback
plane itself.  The object ledger folds Python ``Feedback`` objects one
at a time, which caps ingest throughput and makes a cold service start
(persisted ledger -> verdicts for the whole fleet) pay per-event object
materialization before the first assessment lands.  The columnar store
(:mod:`repro.feedback.store`) ingests whole batches as column arrays
and feeds the vectorized fold kernel
(:func:`repro.core.vectorized.fold_cold_batch`), so the same cold start
is a handful of numpy passes.

Two sweeps per population size:

* **ingest** — events/second folding one pre-built event stream into
  each ledger backend (``memory`` per-event, ``columnar`` and ``mmap``
  batched).
* **assess_cold** — end-to-end cold start from the *persisted* binary
  ledger: open the file, attach a fresh :class:`AssessmentService`, and
  assess every server.  The object path reads ``Feedback`` objects and
  folds them per event into the memory backend with the scalar
  assessor; the vector path memory-maps the columns and runs the
  batched kernel.  Both paths must return identical assessments — any
  mismatch raises.

``bench_path`` writes a schema-valid ``BENCH_ingest.json`` so the
feedback plane joins the regression gate; in full mode the quick sweep
point is emitted *as well*, so one committed artifact serves both the
acceptance evidence (10k servers) and the CI quick diff.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.config import AssessorConfig
from ..feedback.io import read
from ..feedback.ledger import FeedbackLedger
from ..feedback.store import FeedbackBatch
from ..serve import AssessmentService
from ..stats.rng import make_rng
from .common import ExperimentResult

__all__ = ["run_ingest_scale", "SWEEP_POINTS", "QUICK_POINTS"]

#: Full-mode sweep: the acceptance population (10k servers, paper-scale
#: histories) — roughly 2.4M events.
SWEEP_POINTS: Tuple[Tuple[int, Tuple[int, int]], ...] = ((10_000, (120, 360)),)

#: Quick-mode sweep: small enough for CI smoke, same row shapes.
QUICK_POINTS: Tuple[Tuple[int, Tuple[int, int]], ...] = ((500, (60, 180)),)

_INGEST_METRIC = "experiments.ingest.seconds"


def _build_batch(
    n_servers: int, length_range: Tuple[int, int], base_seed: int
) -> FeedbackBatch:
    """Synthesize one time-ordered-per-server feedback stream as columns.

    Server ids, issuing clients, history lengths, and success rates all
    vary so the cold-assessment phase exercises many calibration buckets
    and both phase-1 outcomes.  Ids are built as fixed-width numpy
    string arrays — the interning fast path the columnar backends serve.
    """
    rng = make_rng(base_seed)
    lengths = rng.integers(length_range[0], length_range[1] + 1, size=n_servers)
    total = int(lengths.sum())
    servers = np.repeat(
        np.array([f"server-{i:05d}" for i in range(n_servers)]), lengths
    )
    clients = np.array(
        [f"client-{j:04d}" for j in rng.integers(0, max(n_servers // 2, 10), size=total)]
    )
    times = np.empty(total, dtype=np.float64)
    ratings = np.empty(total, dtype=np.uint8)
    rates = 0.55 + 0.4 * rng.random(n_servers)
    offset = 0
    for i in range(n_servers):
        n = int(lengths[i])
        times[offset : offset + n] = np.arange(n, dtype=np.float64)
        ratings[offset : offset + n] = rng.random(n) < rates[i]
        offset += n
    return FeedbackBatch(times=times, servers=servers, clients=clients, ratings=ratings)


def run_ingest_scale(
    *,
    sweep_points: Optional[Sequence[Tuple[int, Tuple[int, int]]]] = None,
    repeats: int = 3,
    base_seed: int = 2008,
    quick: bool = False,
    bench_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> ExperimentResult:
    """Measure ledger ingest and cold-start assessment across backends.

    For every ``(n_servers, length_range)`` sweep point: synthesize one
    event stream, time per-event vs batched ingest into each backend,
    persist the stream as a binary ledger, then time the two cold-start
    paths (object read + per-event folds + scalar sweep vs mmap load +
    vectorized kernel) from that file to a full set of verdicts,
    asserting both paths agree assessment-for-assessment.
    """
    if sweep_points is None:
        sweep_points = QUICK_POINTS if quick else QUICK_POINTS + SWEEP_POINTS
    if quick:
        repeats = min(repeats, 2)
    sweep_points = tuple(sweep_points)

    result = ExperimentResult(
        experiment="ingest",
        title="Feedback-plane throughput: columnar/mmap vs per-object ledger",
        columns=[
            "n_servers",
            "n_events",
            "object_evps",
            "columnar_evps",
            "mmap_evps",
            "cold_object_s",
            "cold_vector_s",
            "cold_speedup",
        ],
        notes=(
            f"ingest = events/s folding one stream (best of {repeats}); "
            "cold = persisted ledger -> verdicts for every server, "
            "identical assessments asserted between paths"
        ),
    )

    if obs.is_enabled():
        scope = contextlib.nullcontext(
            obs.ObsSession(obs.get_registry(), obs.get_tracer())
        )
    else:
        scope = obs.activate()
    run_meta = obs.run_metadata(
        seed=base_seed,
        config=None,
        experiment="ingest",
        quick=quick,
        repeats=repeats,
    )
    log = (
        obs.EventLog(events_path, run_meta=run_meta)
        if events_path is not None
        else None
    )
    bench_rows: List[Dict[str, object]] = []
    workdir = tempfile.mkdtemp(prefix="repro-ingest-")
    try:
        with scope as session:
            registry = session.registry
            with obs.span("experiments.ingest.run", quick=quick):
                for n_servers, length_range in sweep_points:
                    _run_point(
                        n_servers,
                        length_range,
                        base_seed=base_seed,
                        repeats=repeats,
                        workdir=workdir,
                        registry=registry,
                        result=result,
                        bench_rows=bench_rows,
                        log=log,
                    )
                if bench_path is not None:
                    with obs.span("experiments.ingest.export"):
                        obs.write_bench_json(
                            bench_path, "ingest", bench_rows, meta=run_meta
                        )
            if log is not None:
                log.emit_metrics(registry)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
        if log is not None:
            log.emit("run_end", experiment="ingest")
            log.close()
    return result


def _bench_row(registry, mode: str, **params) -> Dict[str, object]:
    hist = registry.histogram(_INGEST_METRIC, mode=mode, **params)
    return {
        "name": mode,
        "params": dict(params),
        "stats": {
            "mean_s": hist.mean,
            "min_s": hist.min,
            "p95_s": hist.p95,
            "repeats": hist.count,
        },
    }


def _run_point(
    n_servers: int,
    length_range: Tuple[int, int],
    *,
    base_seed: int,
    repeats: int,
    workdir: str,
    registry,
    result: ExperimentResult,
    bench_rows: List[Dict[str, object]],
    log,
) -> None:
    with obs.span("experiments.ingest.prepare", n_servers=n_servers):
        batch = _build_batch(n_servers, length_range, base_seed)
    n_events = len(batch)
    servers = sorted(set(batch.servers.tolist()))
    path = os.path.join(workdir, f"ingest-{n_servers}.ledger")

    # ---- ingest: per-object vs batched columnar vs batched mmap ----
    with obs.span("experiments.ingest.object", n_servers=n_servers):
        feedbacks = list(batch.iter_feedbacks())
        for _ in range(max(repeats, 1)):
            ledger = FeedbackLedger(backend="memory")
            with obs.timer(_INGEST_METRIC, mode="ingest_object", n_events=n_events):
                for feedback in feedbacks:
                    ledger.record(feedback)
        del feedbacks, ledger
    with obs.span("experiments.ingest.columnar", n_servers=n_servers):
        for _ in range(max(repeats, 1)):
            ledger = FeedbackLedger(backend="columnar")
            with obs.timer(
                _INGEST_METRIC, mode="ingest_columnar", n_events=n_events
            ):
                ledger.record_batch(batch)
        del ledger
    with obs.span("experiments.ingest.mmap", n_servers=n_servers):
        for _ in range(max(repeats, 1)):
            # a fresh ledger per repeat: drop the record file *and* its
            # id sidecars, or the reload would see duplicated tables
            for stale in (path, f"{path}.servers", f"{path}.clients", f"{path}.categories"):
                if os.path.exists(stale):
                    os.remove(stale)
            with FeedbackLedger(backend="mmap", path=path) as ledger:
                with obs.timer(
                    _INGEST_METRIC, mode="ingest_mmap", n_events=n_events
                ):
                    ledger.record_batch(batch)
                    ledger.flush()
    if log is not None:
        log.emit("ingest_done", n_servers=n_servers, n_events=n_events)

    # ---- cold start: persisted ledger -> verdicts for every server ----
    with obs.span("experiments.ingest.cold_vector", n_servers=n_servers):
        vector_assessments = None
        for _ in range(min(max(repeats, 1), 2)):
            service = AssessmentService(config=AssessorConfig(), vectorized=True)
            with obs.timer(
                _INGEST_METRIC, mode="assess_cold_vector", n_servers=n_servers
            ):
                service.attach_ledger(FeedbackLedger(backend="mmap", path=path))
                vector_assessments = service.assess_many(servers)
    with obs.span("experiments.ingest.cold_object", n_servers=n_servers):
        service = AssessmentService(config=AssessorConfig(), vectorized=False)
        with obs.timer(
            _INGEST_METRIC, mode="assess_cold_object", n_servers=n_servers
        ):
            ledger = FeedbackLedger(backend="memory")
            for feedback in read(path, format="binary"):
                ledger.record(feedback)
            service.attach_ledger(ledger)
            object_assessments = service.assess_many(servers)
    with obs.span("experiments.ingest.verify", n_servers=n_servers):
        mismatched = [
            server
            for server in servers
            if vector_assessments[server] != object_assessments[server]
        ]
        if mismatched:
            raise AssertionError(
                f"cold paths disagree on {len(mismatched)} of {n_servers} "
                f"servers (first: {mismatched[0]})"
            )
    if log is not None:
        log.emit("cold_done", n_servers=n_servers)

    for mode, params in (
        ("ingest_object", {"n_events": n_events}),
        ("ingest_columnar", {"n_events": n_events}),
        ("ingest_mmap", {"n_events": n_events}),
        ("assess_cold_vector", {"n_servers": n_servers}),
        ("assess_cold_object", {"n_servers": n_servers}),
    ):
        bench_rows.append(_bench_row(registry, mode, **params))

    def _min_s(mode: str, **params) -> float:
        return registry.histogram(_INGEST_METRIC, mode=mode, **params).min

    cold_object = _min_s("assess_cold_object", n_servers=n_servers)
    cold_vector = _min_s("assess_cold_vector", n_servers=n_servers)
    result.add_row(
        n_servers=n_servers,
        n_events=n_events,
        object_evps=round(n_events / _min_s("ingest_object", n_events=n_events)),
        columnar_evps=round(
            n_events / _min_s("ingest_columnar", n_events=n_events)
        ),
        mmap_evps=round(n_events / _min_s("ingest_mmap", n_events=n_events)),
        cold_object_s=round(cold_object, 4),
        cold_vector_s=round(cold_vector, 4),
        cold_speedup=round(cold_object / cold_vector, 2)
        if cold_vector > 0
        else float("inf"),
    )
