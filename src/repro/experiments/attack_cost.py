"""Shared driver for the attacker-cost experiments (Figs. 3-6).

All four figures sweep the preparation-history size and measure the
number of (real) good transactions a strategic attacker needs to finish
20 bad ones, under three defenses: the bare trust function, the trust
function + single behavior testing (Scheme 1), and the trust function +
multi behavior testing (Scheme 2).  Figures 5/6 repeat the sweep with a
colluder ring and the collusion-resilient variants of the schemes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..adversary.collusion import ColludingStrategicAttacker
from ..adversary.strategic import StrategicAttacker
from ..core.calibration import ThresholdCalibrator
from ..core.collusion import CollusionResilientMultiTest, CollusionResilientTest
from ..core.config import BehaviorTestConfig
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from ..obs import audit as _audit
from ..trust.base import TrustFunction
from .common import (
    PAPER_CONFIG,
    PAPER_PREP_HONESTY,
    PAPER_TARGET_BADS,
    PAPER_TRUST_THRESHOLD,
    ExperimentResult,
    make_shared_calibrator,
    mean_over_seeds,
)

__all__ = [
    "SCHEME_NONE",
    "SCHEME_SINGLE",
    "SCHEME_MULTI",
    "standard_schemes",
    "collusion_schemes",
    "attack_cost_sweep",
    "collusion_cost_sweep",
]

#: Default decision-sampling rate for ``audit_path=`` runs.  The
#: strategic attacker's look-ahead probes the behavior test thousands of
#: times per run, so full auditing would swamp the log; 1-in-64 keeps a
#: representative rejection-reason sample at negligible cost.
AUDIT_SAMPLE_EVERY = 64


class _AuditedTest:
    """Wrap a behavior test so every look-ahead probe carries context.

    Each ``test()`` call opens its own top-level decision scope: one
    sampling decision per probe, tagged with the defense scheme and prep
    size so the rejection-reason breakdown can attribute records.
    """

    def __init__(self, inner, **context):
        self._inner = inner
        self._context = context

    def test(self, history):
        with _audit.trail.decision_scope(**self._context):
            return self._inner.test(history)


@contextlib.contextmanager
def _maybe_audit(experiment: str, audit_path: Optional[str], sample_every: int):
    if audit_path is None:
        yield None
        return
    with _audit.audit_session(
        sample_every=sample_every,
        path=audit_path,
        run_meta={"experiment": experiment},
        include_pmfs=False,
    ) as trail:
        yield trail


@contextlib.contextmanager
def _maybe_monitor(
    experiment: str,
    events_path: Optional[str],
    *,
    total: int,
    base_seed: int,
):
    """A per-attack-run ProgressMonitor into ``events_path``, or ``None``.

    One tick per (prep size, scheme, seed) attack run; tick-throttled so
    quick sweeps still heartbeat deterministically.
    """
    if events_path is None:
        yield None
        return
    log = obs.EventLog(
        events_path,
        run_meta=obs.run_metadata(seed=base_seed, experiment=experiment),
    )
    monitor = obs.ProgressMonitor(
        log,
        total=total,
        label="attack_runs",
        interval_seconds=None,
        interval_ticks=max(total // 20, 1),
    )
    monitor.start(experiment=experiment)
    try:
        yield monitor
    finally:
        monitor.finish(experiment=experiment)
        log.emit("run_end", experiment=experiment)
        log.close()


def _append_audit_notes(result: ExperimentResult, records) -> None:
    """Per-scheme rejection-reason breakdown from the sampled audit log."""
    by_scheme: Dict[str, Dict[str, object]] = {}
    for record in records:
        if record.get("kind") != "behavior_test":
            continue
        context = record.get("context") or {}
        scheme = str(context.get("scheme", "?"))
        entry = by_scheme.setdefault(scheme, {"tests": 0, "rejections": 0, "reasons": {}})
        entry["tests"] += 1
        if not record.get("passed"):
            entry["rejections"] += 1
            reason = record.get("reason") or "unknown"
            entry["reasons"][reason] = entry["reasons"].get(reason, 0) + 1
    for scheme in sorted(by_scheme):
        entry = by_scheme[scheme]
        reasons = ", ".join(
            f"{name}={count}"
            for name, count in sorted(entry["reasons"].items(), key=lambda kv: -kv[1])
        )
        result.notes += (
            f"\naudit[{scheme}]: {entry['rejections']}/{entry['tests']} sampled "
            f"look-ahead tests rejected"
            + (f" ({reasons})" if reasons else "")
        )

SCHEME_NONE = "none"
SCHEME_SINGLE = "scheme1"
SCHEME_MULTI = "scheme2"

SchemeFactory = Callable[[BehaviorTestConfig, ThresholdCalibrator], Optional[object]]


def standard_schemes() -> Dict[str, SchemeFactory]:
    """The Fig. 3/4 defenses: bare, +single testing, +multi testing."""
    return {
        SCHEME_NONE: lambda cfg, cal: None,
        SCHEME_SINGLE: lambda cfg, cal: SingleBehaviorTest(cfg, cal),
        SCHEME_MULTI: lambda cfg, cal: MultiBehaviorTest(cfg, cal),
    }


def collusion_schemes() -> Dict[str, SchemeFactory]:
    """The Fig. 5/6 defenses: bare, +collusion-resilient single / multi."""
    return {
        SCHEME_NONE: lambda cfg, cal: None,
        SCHEME_SINGLE: lambda cfg, cal: CollusionResilientTest(cfg, cal),
        SCHEME_MULTI: lambda cfg, cal: CollusionResilientMultiTest(cfg, cal),
    }


def attack_cost_sweep(
    result: ExperimentResult,
    trust_factory: Callable[[], TrustFunction],
    *,
    prep_sizes: Sequence[int],
    n_seeds: int = 5,
    base_seed: int = 2008,
    config: BehaviorTestConfig = PAPER_CONFIG,
    trust_threshold: float = PAPER_TRUST_THRESHOLD,
    prep_honesty: float = PAPER_PREP_HONESTY,
    target_bads: int = PAPER_TARGET_BADS,
    max_steps: int = 20_000,
    audit_path: Optional[str] = None,
    audit_sample: int = AUDIT_SAMPLE_EVERY,
    events_path: Optional[str] = None,
) -> ExperimentResult:
    """Fill ``result`` with the Fig. 3/4 sweep for one trust function."""
    calibrator = make_shared_calibrator(config)
    schemes = standard_schemes()
    total = len(tuple(prep_sizes)) * len(schemes) * n_seeds
    with _maybe_audit(result.experiment, audit_path, audit_sample) as trail, \
            _maybe_monitor(
                result.experiment, events_path, total=total, base_seed=base_seed
            ) as monitor:
        for prep in prep_sizes:
            row: Dict[str, object] = {"prep_size": prep}
            for name, factory in schemes.items():
                test = factory(config, calibrator)
                if trail is not None and test is not None:
                    test = _AuditedTest(
                        test,
                        server=f"{name}-prep{prep}",
                        scheme=name,
                        adversary="strategic",
                        prep_size=prep,
                    )
                attacker = StrategicAttacker(
                    trust_factory(),
                    test,
                    trust_threshold=trust_threshold,
                    prep_honesty=prep_honesty,
                    target_bads=target_bads,
                    max_steps=max_steps,
                )
                costs = []
                for s in range(n_seeds):
                    run = attacker.run(prep, seed=base_seed + 7919 * s)
                    costs.append(run.cost)
                    if monitor is not None:
                        monitor.tick(1, transactions=run.cost)
                row[name] = mean_over_seeds(costs)
            result.add_row(**row)
        if trail is not None:
            _append_audit_notes(result, trail.records)
    return result


def collusion_cost_sweep(
    result: ExperimentResult,
    trust_factory: Callable[[], TrustFunction],
    *,
    prep_sizes: Sequence[int],
    n_seeds: int = 3,
    base_seed: int = 2008,
    config: BehaviorTestConfig = PAPER_CONFIG,
    trust_threshold: float = PAPER_TRUST_THRESHOLD,
    prep_honesty: float = PAPER_PREP_HONESTY,
    target_bads: int = PAPER_TARGET_BADS,
    n_clients: int = 100,
    n_colluders: int = 5,
    max_steps: int = 20_000,
    audit_path: Optional[str] = None,
    audit_sample: int = AUDIT_SAMPLE_EVERY,
    events_path: Optional[str] = None,
) -> ExperimentResult:
    """Fill ``result`` with the Fig. 5/6 collusion sweep."""
    calibrator = make_shared_calibrator(config)
    schemes = collusion_schemes()
    total = len(tuple(prep_sizes)) * len(schemes) * n_seeds
    with _maybe_audit(result.experiment, audit_path, audit_sample) as trail, \
            _maybe_monitor(
                result.experiment, events_path, total=total, base_seed=base_seed
            ) as monitor:
        for prep in prep_sizes:
            row: Dict[str, object] = {"prep_size": prep}
            for name, factory in schemes.items():
                test = factory(config, calibrator)
                if trail is not None and test is not None:
                    test = _AuditedTest(
                        test,
                        server=f"{name}-prep{prep}",
                        scheme=name,
                        adversary="colluding-strategic",
                        prep_size=prep,
                    )
                attacker = ColludingStrategicAttacker(
                    trust_factory(),
                    test,
                    trust_threshold=trust_threshold,
                    n_clients=n_clients,
                    n_colluders=n_colluders,
                    prep_honesty=prep_honesty,
                    target_bads=target_bads,
                    max_steps=max_steps,
                )
                costs = []
                for s in range(n_seeds):
                    run = attacker.run(prep, seed=base_seed + 6007 * s)
                    costs.append(run.cost)
                    if monitor is not None:
                        monitor.tick(1, transactions=run.cost)
                row[name] = mean_over_seeds(costs)
            result.add_row(**row)
        if trail is not None:
            _append_audit_notes(result, trail.records)
    return result
