"""Shared driver for the attacker-cost experiments (Figs. 3-6).

All four figures sweep the preparation-history size and measure the
number of (real) good transactions a strategic attacker needs to finish
20 bad ones, under three defenses: the bare trust function, the trust
function + single behavior testing (Scheme 1), and the trust function +
multi behavior testing (Scheme 2).  Figures 5/6 repeat the sweep with a
colluder ring and the collusion-resilient variants of the schemes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..adversary.collusion import ColludingStrategicAttacker
from ..adversary.strategic import StrategicAttacker
from ..core.calibration import ThresholdCalibrator
from ..core.collusion import CollusionResilientMultiTest, CollusionResilientTest
from ..core.config import BehaviorTestConfig
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from ..trust.base import TrustFunction
from .common import (
    PAPER_CONFIG,
    PAPER_PREP_HONESTY,
    PAPER_TARGET_BADS,
    PAPER_TRUST_THRESHOLD,
    ExperimentResult,
    make_shared_calibrator,
    mean_over_seeds,
)

__all__ = [
    "SCHEME_NONE",
    "SCHEME_SINGLE",
    "SCHEME_MULTI",
    "standard_schemes",
    "collusion_schemes",
    "attack_cost_sweep",
    "collusion_cost_sweep",
]

SCHEME_NONE = "none"
SCHEME_SINGLE = "scheme1"
SCHEME_MULTI = "scheme2"

SchemeFactory = Callable[[BehaviorTestConfig, ThresholdCalibrator], Optional[object]]


def standard_schemes() -> Dict[str, SchemeFactory]:
    """The Fig. 3/4 defenses: bare, +single testing, +multi testing."""
    return {
        SCHEME_NONE: lambda cfg, cal: None,
        SCHEME_SINGLE: lambda cfg, cal: SingleBehaviorTest(cfg, cal),
        SCHEME_MULTI: lambda cfg, cal: MultiBehaviorTest(cfg, cal),
    }


def collusion_schemes() -> Dict[str, SchemeFactory]:
    """The Fig. 5/6 defenses: bare, +collusion-resilient single / multi."""
    return {
        SCHEME_NONE: lambda cfg, cal: None,
        SCHEME_SINGLE: lambda cfg, cal: CollusionResilientTest(cfg, cal),
        SCHEME_MULTI: lambda cfg, cal: CollusionResilientMultiTest(cfg, cal),
    }


def attack_cost_sweep(
    result: ExperimentResult,
    trust_factory: Callable[[], TrustFunction],
    *,
    prep_sizes: Sequence[int],
    n_seeds: int = 5,
    base_seed: int = 2008,
    config: BehaviorTestConfig = PAPER_CONFIG,
    trust_threshold: float = PAPER_TRUST_THRESHOLD,
    prep_honesty: float = PAPER_PREP_HONESTY,
    target_bads: int = PAPER_TARGET_BADS,
    max_steps: int = 20_000,
) -> ExperimentResult:
    """Fill ``result`` with the Fig. 3/4 sweep for one trust function."""
    calibrator = make_shared_calibrator(config)
    schemes = standard_schemes()
    for prep in prep_sizes:
        row: Dict[str, object] = {"prep_size": prep}
        for name, factory in schemes.items():
            attacker = StrategicAttacker(
                trust_factory(),
                factory(config, calibrator),
                trust_threshold=trust_threshold,
                prep_honesty=prep_honesty,
                target_bads=target_bads,
                max_steps=max_steps,
            )
            costs = [
                attacker.run(prep, seed=base_seed + 7919 * s).cost
                for s in range(n_seeds)
            ]
            row[name] = mean_over_seeds(costs)
        result.add_row(**row)
    return result


def collusion_cost_sweep(
    result: ExperimentResult,
    trust_factory: Callable[[], TrustFunction],
    *,
    prep_sizes: Sequence[int],
    n_seeds: int = 3,
    base_seed: int = 2008,
    config: BehaviorTestConfig = PAPER_CONFIG,
    trust_threshold: float = PAPER_TRUST_THRESHOLD,
    prep_honesty: float = PAPER_PREP_HONESTY,
    target_bads: int = PAPER_TARGET_BADS,
    n_clients: int = 100,
    n_colluders: int = 5,
    max_steps: int = 20_000,
) -> ExperimentResult:
    """Fill ``result`` with the Fig. 5/6 collusion sweep."""
    calibrator = make_shared_calibrator(config)
    schemes = collusion_schemes()
    for prep in prep_sizes:
        row: Dict[str, object] = {"prep_size": prep}
        for name, factory in schemes.items():
            attacker = ColludingStrategicAttacker(
                trust_factory(),
                factory(config, calibrator),
                trust_threshold=trust_threshold,
                n_clients=n_clients,
                n_colluders=n_colluders,
                prep_honesty=prep_honesty,
                target_bads=target_bads,
                max_steps=max_steps,
            )
            costs = [
                attacker.run(prep, seed=base_seed + 6007 * s).cost
                for s in range(n_seeds)
            ]
            row[name] = mean_over_seeds(costs)
        result.add_row(**row)
    return result
