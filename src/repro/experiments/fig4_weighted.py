"""Fig. 4 — cost of attackers when varying initial histories: weighted function.

Same sweep as Fig. 3 with the EWMA trust function (lambda = 0.5).

Expected shape (paper): the bare weighted function forces a periodic
attack — after each bad transaction the attacker needs 2~3 good ones to
climb back over the 0.9 threshold, so its cost is flat (~40-60) and
independent of the prep size; Scheme 1 adds cost for small preps but
loses its grip as the prep grows; Scheme 2's cost stays high regardless
of prep size.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from ..trust.weighted import WeightedTrust
from .attack_cost import attack_cost_sweep
from .common import ExperimentResult
from .fig3_average import PREP_SIZES, QUICK_PREP_SIZES

__all__ = ["run_fig4", "PAPER_LAMBDA"]

PAPER_LAMBDA = 0.5


def run_fig4(
    *,
    prep_sizes: Optional[Sequence[int]] = None,
    n_seeds: int = 5,
    base_seed: int = 2008,
    lam: float = PAPER_LAMBDA,
    quick: bool = False,
) -> ExperimentResult:
    """Reproduce Fig. 4."""
    if prep_sizes is None:
        prep_sizes = QUICK_PREP_SIZES if quick else PREP_SIZES
    if quick:
        n_seeds = min(n_seeds, 2)
    result = ExperimentResult(
        experiment="fig4",
        title=(
            f"Cost of attackers vs. initial history size "
            f"(weighted trust function, lambda={lam})"
        ),
        columns=["prep_size", "none", "scheme1", "scheme2"],
        notes=(
            "cost = good transactions needed to finish 20 bad ones; "
            f"prep honesty 0.95, trust threshold 0.9, mean of {n_seeds} seeds"
        ),
    )
    return attack_cost_sweep(
        result,
        partial(WeightedTrust, lam),
        prep_sizes=prep_sizes,
        n_seeds=n_seeds,
        base_seed=base_seed,
    )
