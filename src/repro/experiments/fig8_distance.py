"""Fig. 8 — distribution distance vs. initial history size.

The 95%-confidence L1 threshold ε is what bounds how far an honest
player's empirical window distribution may drift from B(m, p_hat).  The
figure shows ε as a function of the history size: it shrinks as more
windows accumulate (the empirical distribution concentrates at rate
~1/sqrt(k)) and converges quickly — the paper's argument that the test
becomes stable once a server has a moderately long history.

We tabulate ε for the two rates the experiments live at (0.95, the prep
honesty, and 0.90, the trust threshold).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.calibration import ThresholdCalibrator
from .common import PAPER_CONFIG, ExperimentResult

__all__ = ["run_fig8", "HISTORY_SIZES"]

HISTORY_SIZES = (100, 200, 400, 800, 1600, 3200, 6400)


def run_fig8(
    *,
    history_sizes: Optional[Sequence[int]] = None,
    p_values: Sequence[float] = (0.95, 0.90),
    calibration_sets: int = 2000,
    base_seed: int = 2008,
    quick: bool = False,
) -> ExperimentResult:
    """Reproduce Fig. 8."""
    if history_sizes is None:
        history_sizes = HISTORY_SIZES
    if quick:
        history_sizes = tuple(history_sizes)[:4]
        calibration_sets = min(calibration_sets, 400)
    config = PAPER_CONFIG
    calibrator = ThresholdCalibrator(
        confidence=config.confidence,
        n_sets=calibration_sets,
        distance=config.distance,
        p_quantum=config.p_quantum,
        seed=base_seed,
    )
    columns = ["history_size"] + [f"epsilon_p{p:.2f}" for p in p_values]
    result = ExperimentResult(
        experiment="fig8",
        title="95%-confidence distribution-distance threshold vs. history size",
        columns=columns,
        notes=(
            f"window size m={config.window_size}; thresholds from "
            f"{calibration_sets} Monte-Carlo sample sets"
        ),
    )
    m = config.window_size
    for n in history_sizes:
        k = n // m
        if k == 0:
            raise ValueError(f"history size {n} smaller than one window")
        row = {"history_size": n}
        for p in p_values:
            row[f"epsilon_p{p:.2f}"] = calibrator.threshold(m, k, p)
        result.add_row(**row)
    return result
