"""The defense x attack matrix — the evaluation's capstone summary.

One table answering the question every figure addresses a slice of:
**which defense stops which attack?**  For each attack workload the
matrix reports the detection rate (over freshly generated histories) of
each behavior-testing scheme, plus the honest-player false-alarm rate as
the cost column.

Attacks covered: regular periodic (fixed spacing), randomized periodic
(Fig. 7, window 20 and 60), hibernating burst behind a long cover, and
the camouflaged iid attacker (undetectable by construction — the row
demonstrates the boundary rather than a failure).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..adversary.hibernating import hibernating_attack_history
from ..adversary.periodic import periodic_attack_history
from ..analysis.cheat_rate import CamouflageAttacker
from ..core.model import generate_honest_outcomes
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from ..stats.rng import make_rng
from .common import PAPER_CONFIG, ExperimentResult, make_shared_calibrator

__all__ = ["run_ext_matrix", "ATTACK_WORKLOADS"]

WorkloadGen = Callable[[np.random.Generator], np.ndarray]


def _honest(rng) -> np.ndarray:
    return generate_honest_outcomes(800, 0.95, seed=rng)


#: name -> generator of one attack history per trial
ATTACK_WORKLOADS: Dict[str, WorkloadGen] = {
    "honest (false alarms)": _honest,
    "regular periodic": lambda rng: np.tile(
        np.array([0] + [1] * 9, dtype=np.int8), 80
    ),
    "random periodic N=20": lambda rng: periodic_attack_history(800, 20, seed=rng),
    "random periodic N=60": lambda rng: periodic_attack_history(800, 60, seed=rng),
    "hibernating, short cover": lambda rng: hibernating_attack_history(
        760, 40, seed=rng
    ),
    # the Fig. 3 motivation: the same burst diluted by a long cover slips
    # past the single test but not past multi-testing's recent suffixes
    "hibernating, long cover": lambda rng: hibernating_attack_history(
        4000, 25, seed=rng
    ),
    "camouflage (iid 10%)": lambda rng: CamouflageAttacker(0.1).history(800, seed=rng),
}


def run_ext_matrix(
    *,
    trials: int = 100,
    workloads: Optional[Sequence[str]] = None,
    base_seed: int = 2008,
    quick: bool = False,
) -> ExperimentResult:
    """Flag rates of each scheme against each workload."""
    if quick:
        trials = min(trials, 30)
    selected = list(workloads) if workloads is not None else list(ATTACK_WORKLOADS)
    unknown = [w for w in selected if w not in ATTACK_WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workloads {unknown}; have {sorted(ATTACK_WORKLOADS)}")
    config = PAPER_CONFIG
    calibrator = make_shared_calibrator(config)
    schemes = {
        "single": SingleBehaviorTest(config, calibrator),
        "multi": MultiBehaviorTest(config, calibrator),
    }
    rng = make_rng(base_seed)
    result = ExperimentResult(
        experiment="ext-matrix",
        title="Flag rate of each behavior-testing scheme per workload",
        columns=["workload"] + list(schemes),
        notes=(
            f"{trials} fresh 800-transaction histories per cell, m=10, 95% "
            "confidence; the honest row is the false-alarm cost, the "
            "camouflage row the structural boundary (iid cheating is "
            "statistically honest — bounded by the trust threshold instead)"
        ),
    )
    for workload_name in selected:
        generator = ATTACK_WORKLOADS[workload_name]
        row: Dict[str, object] = {"workload": workload_name}
        for scheme_name, test in schemes.items():
            flags = sum(
                not test.test(generator(rng)).passed for _ in range(trials)
            )
            row[scheme_name] = flags / trials
        result.add_row(**row)
    return result
