"""Shared infrastructure for the figure-reproduction experiments.

Every ``fig*`` module exposes ``run_figN(...) -> ExperimentResult``: a
self-describing table of the series the paper's figure plots, plus notes
recording parameters.  The CLI and EXPERIMENTS.md are generated from
these objects, and the benchmark suite calls the same entry points with
``quick=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.calibration import ThresholdCalibrator
from ..core.config import BehaviorTestConfig

__all__ = [
    "ExperimentResult",
    "make_shared_calibrator",
    "mean_over_seeds",
    "PAPER_CONFIG",
    "PAPER_TRUST_THRESHOLD",
    "PAPER_PREP_HONESTY",
    "PAPER_TARGET_BADS",
]

#: The paper's experimental constants (Sec. 5.1).
PAPER_CONFIG = BehaviorTestConfig()  # window m = 10, 95% confidence
PAPER_TRUST_THRESHOLD = 0.9
PAPER_PREP_HONESTY = 0.95
PAPER_TARGET_BADS = 20


@dataclass
class ExperimentResult:
    """A reproduced figure, as the table of points it plots.

    ``columns`` names the fields of each row dict; the first column is
    the x axis.  ``render()`` produces the aligned text table the CLI
    prints and EXPERIMENTS.md embeds.
    """

    experiment: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        """Append one row; every declared column must be present."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append({c: values[c] for c in self.columns})

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; have {self.columns}")
        return [row[name] for row in self.rows]

    def render(self) -> str:
        """The aligned plain-text table (title, notes, header, rows)."""
        header = f"{self.experiment}: {self.title}"
        lines = [header, "=" * len(header)]
        if self.notes:
            lines.append(self.notes)
        widths = {
            c: max(len(c), *(len(_fmt(row[c])) for row in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        lines.append("  ".join(c.rjust(widths[c]) for c in self.columns))
        lines.append("  ".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append("  ".join(_fmt(row[c]).rjust(widths[c]) for c in self.columns))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def make_shared_calibrator(config: BehaviorTestConfig) -> ThresholdCalibrator:
    """One calibrator for all schemes in an experiment (shared ε cache)."""
    return ThresholdCalibrator(
        confidence=config.confidence,
        n_sets=config.calibration_sets,
        distance=config.distance,
        p_quantum=config.p_quantum,
    )


def mean_over_seeds(values: Sequence[float]) -> float:
    """Mean of per-seed measurements (the smoothing the figures need)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one measurement")
    return float(arr.mean())
