"""Experiment harness: one runner per figure of the paper's evaluation."""

from typing import Callable, Dict

from .common import ExperimentResult
from .extensions import run_ext_cheat_rate, run_ext_roc, run_ext_sybil
from .fig3_average import run_fig3
from .matrix import run_ext_matrix
from .fig4_weighted import run_fig4
from .fig5_collusion_average import run_fig5
from .fig6_collusion_weighted import run_fig6
from .fig7_detection_rate import run_fig7
from .fig8_distance import run_fig8
from .fig9_performance import run_fig9
from .cluster_scale import run_cluster_scale
from .ingest_scale import run_ingest_scale
from .p2p_scale import run_p2p_scale
from .report import EXPECTED_SHAPES, render_report, result_to_markdown
from .serve_scale import run_serve_scale
from .svgplot import render_svg, write_svg

__all__ = [
    "ExperimentResult",
    "run_ext_cheat_rate",
    "run_ext_roc",
    "run_ext_matrix",
    "run_ext_sybil",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_cluster_scale",
    "run_ingest_scale",
    "run_p2p_scale",
    "run_serve_scale",
    "EXPECTED_SHAPES",
    "render_report",
    "result_to_markdown",
    "render_svg",
    "write_svg",
    "RUNNERS",
]

#: name -> runner, the CLI's dispatch table
RUNNERS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "ext-roc": run_ext_roc,
    "ext-cheat-rate": run_ext_cheat_rate,
    "ext-sybil": run_ext_sybil,
    "ext-matrix": run_ext_matrix,
    "p2p_scale": run_p2p_scale,
    "serve": run_serve_scale,
    "ingest": run_ingest_scale,
    "cluster": run_cluster_scale,
}
