"""Sharded-cluster scaling: verdict throughput vs shard count.

Not a figure from the paper — this experiment sizes the deployment
shape :mod:`repro.cluster` adds: the assessment fold partitioned across
N replicated shards behind quorum reads.  For each population size the
same synthetic fleet is driven through clusters of increasing shard
count and three phases are timed:

* **ingest** — ``record_batch`` routing every event to all K replicas
  of its server's preference list;
* **assess_cold** — first ``assess_many`` over the whole fleet (each
  shard folds its servers from scratch, the coordinator reads R-of-K);
* **assess_warm** — the same batch again (incremental states and
  verdict caches hot; measures pure quorum-read overhead).

Every sweep point cross-checks a server sample against a single-node
:class:`~repro.serve.AssessmentService` sharing the cluster's
calibrator — any verdict mismatch raises, so the scaling numbers are
only ever reported for a cluster that is *correct*.

``bench_path`` writes a schema-valid ``BENCH_cluster.json``; in full
mode the quick sweep point is emitted as well, so one committed
artifact serves both the acceptance evidence (100k servers) and the CI
quick diff.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.config import AssessorConfig, BehaviorTestConfig
from ..core.two_phase import Assessor
from ..feedback.ledger import FeedbackLedger
from ..feedback.records import Feedback, Rating
from ..serve import AssessmentService
from ..stats.rng import make_rng
from .common import ExperimentResult

__all__ = ["run_cluster_scale", "SWEEP_POINTS", "QUICK_POINTS", "CLUSTER_CONFIG"]

#: Cheap-but-real assessor: small windows keep per-server folds light so
#: the sweep measures the cluster machinery, not Monte-Carlo calibration.
CLUSTER_CONFIG = AssessorConfig(
    trust_function="average",
    behavior_test="single",
    trust_threshold=0.7,
    test_config=BehaviorTestConfig(
        window_size=8, min_windows=2, calibration_sets=50
    ),
)

#: Full-mode sweep: the acceptance population (100k servers) across a
#: shard-count curve.  ``(n_servers, events_per_server, shard_counts)``.
SWEEP_POINTS: Tuple[Tuple[int, int, Tuple[int, ...]], ...] = (
    (100_000, 12, (4, 8, 16)),
)

#: Quick-mode sweep: small enough for CI smoke, same row shapes.
QUICK_POINTS: Tuple[Tuple[int, int, Tuple[int, ...]], ...] = (
    (240, 16, (2, 4)),
)

_CLUSTER_METRIC = "experiments.cluster.seconds"


def _build_events(
    n_servers: int, events_per_server: int, base_seed: int
) -> List[Feedback]:
    """One time-ordered-per-server feedback stream for a synthetic fleet.

    Success rates vary per server so the shards exercise many
    calibration buckets and both phase-1 outcomes.
    """
    rng = make_rng(base_seed)
    rates = 0.55 + 0.4 * rng.random(n_servers)
    events: List[Feedback] = []
    for i in range(n_servers):
        server = f"server-{i:06d}"
        goods = rng.random(events_per_server) < rates[i]
        events.extend(
            Feedback(
                time=float(j),
                server=server,
                client=f"client-{(i + j) % 97:04d}",
                rating=Rating.POSITIVE if good else Rating.NEGATIVE,
            )
            for j, good in enumerate(goods)
        )
    return events


def run_cluster_scale(
    *,
    sweep_points: Optional[Sequence[Tuple[int, int, Tuple[int, ...]]]] = None,
    repeats: int = 2,
    base_seed: int = 4142,
    quick: bool = False,
    verify_sample: int = 200,
    bench_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> ExperimentResult:
    """Measure cluster ingest and quorum-read throughput vs shard count.

    For every ``(n_servers, events_per_server, shard_counts)`` sweep
    point: synthesize one fleet stream, then for each shard count build
    a fresh replicated cluster (K = min(3, N), R = min(2, K)), time
    ingest / cold assessment / warm assessment, and cross-check a
    verdict sample against a single-node reference service sharing the
    cluster's threshold calibrator.
    """
    if sweep_points is None:
        sweep_points = QUICK_POINTS if quick else QUICK_POINTS + SWEEP_POINTS
    if quick:
        repeats = min(repeats, 2)
    sweep_points = tuple(sweep_points)

    result = ExperimentResult(
        experiment="cluster",
        title="Sharded assessment cluster: throughput vs shard count",
        columns=[
            "n_servers",
            "n_events",
            "shards",
            "replicas",
            "ingest_evps",
            "cold_s",
            "warm_s",
            "verified",
        ],
        notes=(
            f"best of {repeats} fresh cluster(s) per point; ingest = events/s "
            "into all replicas; cold/warm = full-fleet quorum-read "
            "assess_many; verified = sampled servers bit-identical to a "
            "single-node reference"
        ),
    )

    if obs.is_enabled():
        scope = contextlib.nullcontext(
            obs.ObsSession(obs.get_registry(), obs.get_tracer())
        )
    else:
        scope = obs.activate()
    run_meta = obs.run_metadata(
        seed=base_seed,
        config=CLUSTER_CONFIG,
        experiment="cluster",
        quick=quick,
        repeats=repeats,
    )
    log = (
        obs.EventLog(events_path, run_meta=run_meta)
        if events_path is not None
        else None
    )
    bench_rows: List[Dict[str, object]] = []
    try:
        with scope as session:
            registry = session.registry
            with obs.span("experiments.cluster.run", quick=quick):
                for n_servers, events_per_server, shard_counts in sweep_points:
                    with obs.span(
                        "experiments.cluster.prepare", n_servers=n_servers
                    ):
                        events = _build_events(
                            n_servers, events_per_server, base_seed
                        )
                    for shards in shard_counts:
                        _run_point(
                            events,
                            n_servers=n_servers,
                            shards=shards,
                            repeats=repeats,
                            verify_sample=verify_sample,
                            registry=registry,
                            result=result,
                            bench_rows=bench_rows,
                            log=log,
                        )
                if bench_path is not None:
                    with obs.span("experiments.cluster.export"):
                        obs.write_bench_json(
                            bench_path, "cluster", bench_rows, meta=run_meta
                        )
            if log is not None:
                log.emit_metrics(registry)
    finally:
        if log is not None:
            log.emit("run_end", experiment="cluster")
            log.close()
    return result


def _bench_row(registry, mode: str, **params) -> Dict[str, object]:
    hist = registry.histogram(_CLUSTER_METRIC, mode=mode, **params)
    return {
        "name": mode,
        "params": dict(params),
        "stats": {
            "mean_s": hist.mean,
            "min_s": hist.min,
            "p95_s": hist.p95,
            "repeats": hist.count,
        },
    }


def _run_point(
    events: List[Feedback],
    *,
    n_servers: int,
    shards: int,
    repeats: int,
    verify_sample: int,
    registry,
    result: ExperimentResult,
    bench_rows: List[Dict[str, object]],
    log,
) -> None:
    from ..cluster import ClusterAssessmentService
    from ..p2p.network import SimulatedNetwork

    replicas = min(3, shards)
    read_quorum = min(2, replicas)
    n_events = len(events)
    cluster = None
    for _ in range(max(repeats, 1)):
        with obs.span(
            "experiments.cluster.point", n_servers=n_servers, shards=shards
        ):
            cluster = ClusterAssessmentService(
                CLUSTER_CONFIG,
                n_nodes=shards,
                replicas=replicas,
                read_quorum=read_quorum,
                network=SimulatedNetwork(name=f"cluster-{shards}"),
            )
            with obs.timer(
                _CLUSTER_METRIC, mode="ingest", n_servers=n_servers, shards=shards
            ):
                cluster.record_batch(events)
            with obs.timer(
                _CLUSTER_METRIC,
                mode="assess_cold",
                n_servers=n_servers,
                shards=shards,
            ):
                verdicts = cluster.assess_many()
            with obs.timer(
                _CLUSTER_METRIC,
                mode="assess_warm",
                n_servers=n_servers,
                shards=shards,
            ):
                cluster.assess_many()
    if len(verdicts) != n_servers:
        raise AssertionError(
            f"cluster returned {len(verdicts)} verdicts for {n_servers} servers"
        )

    # ---- correctness gate: sampled servers vs single-node reference ----
    with obs.span(
        "experiments.cluster.verify", n_servers=n_servers, shards=shards
    ):
        servers = cluster.servers
        stride = max(len(servers) // max(verify_sample, 1), 1)
        sample = servers[::stride][:verify_sample]
        keep = set(sample)
        reference_ledger = FeedbackLedger(backend="memory")
        reference = AssessmentService(
            assessor=Assessor.from_config(
                CLUSTER_CONFIG, calibrator=cluster._calibrator
            ),
            ledger=reference_ledger,
            executor="serial",
        )
        for feedback in events:
            if feedback.server in keep:
                reference_ledger.record(feedback)
        expected = reference.assess_many(sample)
        mismatched = [s for s in sample if verdicts[s] != expected[s]]
        if mismatched:
            raise AssertionError(
                f"cluster disagrees with single-node reference on "
                f"{len(mismatched)} of {len(sample)} sampled servers "
                f"(first: {mismatched[0]})"
            )
    if log is not None:
        log.emit(
            "cluster_point_done",
            n_servers=n_servers,
            shards=shards,
            verified=len(sample),
        )

    for mode in ("ingest", "assess_cold", "assess_warm"):
        bench_rows.append(
            _bench_row(registry, mode, n_servers=n_servers, shards=shards)
        )

    def _min_s(mode: str) -> float:
        return registry.histogram(
            _CLUSTER_METRIC, mode=mode, n_servers=n_servers, shards=shards
        ).min

    result.add_row(
        n_servers=n_servers,
        n_events=n_events,
        shards=shards,
        replicas=replicas,
        ingest_evps=round(n_events / _min_s("ingest")),
        cold_s=round(_min_s("assess_cold"), 4),
        warm_s=round(_min_s("assess_warm"), 4),
        verified=len(sample),
    )
