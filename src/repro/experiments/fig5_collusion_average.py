"""Fig. 5 — cost of attackers with collusion: average function.

100 potential clients, 5 of them colluders; the attacker preps
exclusively with colluders and, during the attack phase, chooses among
cheating a client, serving a client well, and buying a fake positive
from a colluder.  The y axis counts good transactions delivered to
*non-colluders* — the attacker's true cost.

Expected shape (paper): without behavior testing the cost is zero at
every prep size (colluders cover everything); collusion-resilient
Scheme 1's cost decays as the prep grows; collusion-resilient Scheme 2
imposes an approximately constant, dominant cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..trust.average import AverageTrust
from .attack_cost import collusion_cost_sweep
from .common import ExperimentResult

__all__ = ["run_fig5", "PREP_SIZES", "QUICK_PREP_SIZES"]

PREP_SIZES = (100, 200, 300, 400, 500, 600, 700, 800)
QUICK_PREP_SIZES = (100, 400, 800)


def run_fig5(
    *,
    prep_sizes: Optional[Sequence[int]] = None,
    n_seeds: int = 3,
    base_seed: int = 2008,
    quick: bool = False,
    audit_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Fig. 5."""
    if prep_sizes is None:
        prep_sizes = QUICK_PREP_SIZES if quick else PREP_SIZES
    if quick:
        n_seeds = min(n_seeds, 2)
    result = ExperimentResult(
        experiment="fig5",
        title="Cost of attackers with collusion vs. prep size (average trust function)",
        columns=["prep_size", "none", "scheme1", "scheme2"],
        notes=(
            "cost = good transactions to non-colluders needed for 20 bad ones; "
            f"100 clients / 5 colluders, a1=0.5 a2=0.9 a3=0.2, mean of {n_seeds} seeds"
        ),
    )
    return collusion_cost_sweep(
        result,
        AverageTrust,
        prep_sizes=prep_sizes,
        n_seeds=n_seeds,
        base_seed=base_seed,
        audit_path=audit_path,
        events_path=events_path,
    )
