"""Fig. 7 — detection rate vs. attack window size.

A periodic attacker keeps its reputation at ~0.9 while launching
``0.1 * N`` attacks within every window of ``N`` transactions
(N = 10, 20, ..., 80).  Bad positions are uniform inside each window
(see DESIGN.md §3.4 — deterministic placement is trivially caught and
flat-lines the curve).  The detection rate is the fraction of generated
histories the behavior test flags.

Expected shape (paper): detection decreases monotonically with N — a
small window forces a nearly regular, under-dispersed pattern that is
very different from binomial behavior, while a large window lets the
randomized attack converge toward genuine B(m, 0.9) behavior.  The paper
frames the tail as a feature: an attacker that must look this much like
an honest player effectively *is* one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..adversary.periodic import periodic_attack_history
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from ..stats.rng import make_rng
from .common import PAPER_CONFIG, ExperimentResult, make_shared_calibrator

__all__ = ["run_fig7", "ATTACK_WINDOWS"]

ATTACK_WINDOWS = (10, 20, 30, 40, 50, 60, 70, 80)


def run_fig7(
    *,
    attack_windows: Optional[Sequence[int]] = None,
    trials: int = 200,
    history_length: int = 800,
    attack_rate: float = 0.1,
    base_seed: int = 2008,
    quick: bool = False,
) -> ExperimentResult:
    """Reproduce Fig. 7 (plus a multi-testing series as a bonus)."""
    if attack_windows is None:
        attack_windows = ATTACK_WINDOWS
    if quick:
        trials = min(trials, 40)
        attack_windows = tuple(attack_windows)[::2]
    config = PAPER_CONFIG
    calibrator = make_shared_calibrator(config)
    single = SingleBehaviorTest(config, calibrator)
    multi = MultiBehaviorTest(config, calibrator)
    rng = make_rng(base_seed)

    result = ExperimentResult(
        experiment="fig7",
        title="Detection rate vs. attack window size",
        columns=["attack_window", "single_detection_rate", "multi_detection_rate"],
        notes=(
            f"{trials} trials per point; history length {history_length}; "
            f"{attack_rate:.0%} attacks per window, reputation kept at "
            f"{1 - attack_rate:.2f}"
        ),
    )
    for window in attack_windows:
        single_hits = 0
        multi_hits = 0
        for _ in range(trials):
            trace = periodic_attack_history(
                history_length, window, attack_rate=attack_rate, seed=rng
            )
            if not single.test(trace).passed:
                single_hits += 1
            if not multi.test(trace).passed:
                multi_hits += 1
        result.add_row(
            attack_window=window,
            single_detection_rate=single_hits / trials,
            multi_detection_rate=multi_hits / trials,
        )
    return result
