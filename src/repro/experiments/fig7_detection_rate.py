"""Fig. 7 — detection rate vs. attack window size.

A periodic attacker keeps its reputation at ~0.9 while launching
``0.1 * N`` attacks within every window of ``N`` transactions
(N = 10, 20, ..., 80).  Bad positions are uniform inside each window
(see DESIGN.md §3.4 — deterministic placement is trivially caught and
flat-lines the curve).  The detection rate is the fraction of generated
histories the behavior test flags.

Expected shape (paper): detection decreases monotonically with N — a
small window forces a nearly regular, under-dispersed pattern that is
very different from binomial behavior, while a large window lets the
randomized attack converge toward genuine B(m, 0.9) behavior.  The paper
frames the tail as a feature: an attacker that must look this much like
an honest player effectively *is* one.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..adversary.periodic import periodic_attack_history
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from ..obs import audit as _audit
from ..stats.rng import make_rng
from .common import PAPER_CONFIG, ExperimentResult, make_shared_calibrator

__all__ = ["run_fig7", "ATTACK_WINDOWS"]

ATTACK_WINDOWS = (10, 20, 30, 40, 50, 60, 70, 80)

_TIMER_METRIC = "experiments.fig7.test_seconds"


def run_fig7(
    *,
    attack_windows: Optional[Sequence[int]] = None,
    trials: int = 200,
    history_length: int = 800,
    attack_rate: float = 0.1,
    base_seed: int = 2008,
    quick: bool = False,
    audit_path: Optional[str] = None,
    bench_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Fig. 7 (plus a multi-testing series as a bonus).

    ``audit_path`` writes an audit record for every behavior test to a
    JSONL log (no sampling: Fig. 7's point *is* the per-trial verdict)
    and appends an audit-derived detection breakdown to the notes — the
    two countings must agree, which the test suite asserts.

    ``bench_path`` times every behavior test through the obs layer and
    writes a schema-validated ``BENCH_fig7.json`` (test × attack window
    → mean/min/p95 seconds plus the detection rate) so detection speed
    joins fig9 in the regression gate.  ``events_path`` streams progress
    heartbeats to a JSONL log; tail it live with ``repro obs top``.
    """
    if attack_windows is None:
        attack_windows = ATTACK_WINDOWS
    if quick:
        trials = min(trials, 40)
        attack_windows = tuple(attack_windows)[::2]
    config = PAPER_CONFIG
    calibrator = make_shared_calibrator(config)
    single = SingleBehaviorTest(config, calibrator)
    multi = MultiBehaviorTest(config, calibrator)
    rng = make_rng(base_seed)

    result = ExperimentResult(
        experiment="fig7",
        title="Detection rate vs. attack window size",
        columns=["attack_window", "single_detection_rate", "multi_detection_rate"],
        notes=(
            f"{trials} trials per point; history length {history_length}; "
            f"{attack_rate:.0%} attacks per window, reputation kept at "
            f"{1 - attack_rate:.2f}"
        ),
    )
    if audit_path is None:
        scope = contextlib.nullcontext()
    else:
        scope = _audit.audit_session(
            path=audit_path,
            run_meta={"experiment": "fig7", "trials": trials},
            include_pmfs=False,
        )
    # Timings flow through the obs layer exactly like fig9: reuse the
    # ambient session when the caller enabled collection, else activate
    # a private one for this sweep.
    if obs.is_enabled():
        obs_scope = contextlib.nullcontext(
            obs.ObsSession(obs.get_registry(), obs.get_tracer())
        )
    else:
        obs_scope = obs.activate()
    run_meta = obs.run_metadata(
        seed=base_seed,
        config=config,
        experiment="fig7",
        quick=quick,
        trials=trials,
        history_length=history_length,
    )
    log = (
        obs.EventLog(events_path, run_meta=run_meta)
        if events_path is not None
        else None
    )
    monitor = None
    if log is not None:
        total = len(tuple(attack_windows)) * trials
        # tick-based throttling keeps heartbeat counts deterministic
        monitor = obs.ProgressMonitor(
            log,
            total=total,
            label="trials",
            interval_seconds=None,
            interval_ticks=max(total // 20, 1),
        )
        monitor.start(experiment="fig7")
    with scope as trail, obs_scope as session:
        registry = session.registry
        with obs.span("experiments.fig7.run", quick=quick):
            bench_rows: List[Dict[str, object]] = []
            for window in attack_windows:
                single_hits = 0
                multi_hits = 0
                with obs.span("experiments.fig7.window", attack_window=window):
                    for _ in range(trials):
                        trace = periodic_attack_history(
                            history_length, window, attack_rate=attack_rate, seed=rng
                        )
                        with obs.timer(
                            _TIMER_METRIC, test="single", attack_window=window
                        ):
                            single_hits += not _tested(
                                single, trace, window, trail
                            ).passed
                        with obs.timer(
                            _TIMER_METRIC, test="multi", attack_window=window
                        ):
                            multi_hits += not _tested(
                                multi, trace, window, trail
                            ).passed
                        if monitor is not None:
                            monitor.tick(1, tests=2)
                result.add_row(
                    attack_window=window,
                    single_detection_rate=single_hits / trials,
                    multi_detection_rate=multi_hits / trials,
                )
                for test, hits in (("single", single_hits), ("multi", multi_hits)):
                    hist = registry.histogram(
                        _TIMER_METRIC, test=test, attack_window=window
                    )
                    bench_rows.append(
                        {
                            "name": test,
                            "params": {"attack_window": window},
                            "stats": {
                                "mean_s": hist.mean,
                                "min_s": hist.min,
                                # tail latency, preferred by `repro obs diff`
                                "p95_s": hist.p95,
                                "repeats": hist.count,
                                "detection_rate": hits / trials,
                            },
                        }
                    )
            if bench_path is not None:
                with obs.span("experiments.fig7.export"):
                    obs.write_bench_json(bench_path, "fig7", bench_rows, meta=run_meta)
        if trail is not None:
            for line in _audit_breakdown(trail.records):
                result.notes += "\n" + line
        if log is not None:
            log.emit_metrics(registry)
    if monitor is not None:
        monitor.finish(experiment="fig7")
    if log is not None:
        log.emit("run_end", experiment="fig7")
        log.close()
    return result


def _tested(test, trace, window: int, trail):
    if trail is None:
        return test.test(trace)
    with _audit.trail.decision_scope(
        server=f"periodic-w{window}", adversary=f"periodic-w{window}"
    ):
        return test.test(trace)


def _audit_breakdown(records) -> Sequence[str]:
    """Detection counts per (adversary class, test) from audit records."""
    counts: Dict[Tuple[str, str], Dict[str, int]] = {}
    for record in records:
        if record.get("kind") != "behavior_test":
            continue
        context = record.get("context") or {}
        key = (str(context.get("adversary", "?")), str(record.get("test", "?")))
        entry = counts.setdefault(key, {"tests": 0, "detections": 0})
        entry["tests"] += 1
        entry["detections"] += not record.get("passed")
    lines = []
    for (adversary, test), entry in sorted(counts.items()):
        lines.append(
            f"audit[{adversary}/{test}]: {entry['detections']}/{entry['tests']} detected"
        )
    return lines
