"""Fig. 7 — detection rate vs. attack window size.

A periodic attacker keeps its reputation at ~0.9 while launching
``0.1 * N`` attacks within every window of ``N`` transactions
(N = 10, 20, ..., 80).  Bad positions are uniform inside each window
(see DESIGN.md §3.4 — deterministic placement is trivially caught and
flat-lines the curve).  The detection rate is the fraction of generated
histories the behavior test flags.

Expected shape (paper): detection decreases monotonically with N — a
small window forces a nearly regular, under-dispersed pattern that is
very different from binomial behavior, while a large window lets the
randomized attack converge toward genuine B(m, 0.9) behavior.  The paper
frames the tail as a feature: an attacker that must look this much like
an honest player effectively *is* one.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional, Sequence, Tuple

from ..adversary.periodic import periodic_attack_history
from ..core.multi_testing import MultiBehaviorTest
from ..core.testing import SingleBehaviorTest
from ..obs import audit as _audit
from ..stats.rng import make_rng
from .common import PAPER_CONFIG, ExperimentResult, make_shared_calibrator

__all__ = ["run_fig7", "ATTACK_WINDOWS"]

ATTACK_WINDOWS = (10, 20, 30, 40, 50, 60, 70, 80)


def run_fig7(
    *,
    attack_windows: Optional[Sequence[int]] = None,
    trials: int = 200,
    history_length: int = 800,
    attack_rate: float = 0.1,
    base_seed: int = 2008,
    quick: bool = False,
    audit_path: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Fig. 7 (plus a multi-testing series as a bonus).

    ``audit_path`` writes an audit record for every behavior test to a
    JSONL log (no sampling: Fig. 7's point *is* the per-trial verdict)
    and appends an audit-derived detection breakdown to the notes — the
    two countings must agree, which the test suite asserts.
    """
    if attack_windows is None:
        attack_windows = ATTACK_WINDOWS
    if quick:
        trials = min(trials, 40)
        attack_windows = tuple(attack_windows)[::2]
    config = PAPER_CONFIG
    calibrator = make_shared_calibrator(config)
    single = SingleBehaviorTest(config, calibrator)
    multi = MultiBehaviorTest(config, calibrator)
    rng = make_rng(base_seed)

    result = ExperimentResult(
        experiment="fig7",
        title="Detection rate vs. attack window size",
        columns=["attack_window", "single_detection_rate", "multi_detection_rate"],
        notes=(
            f"{trials} trials per point; history length {history_length}; "
            f"{attack_rate:.0%} attacks per window, reputation kept at "
            f"{1 - attack_rate:.2f}"
        ),
    )
    if audit_path is None:
        scope = contextlib.nullcontext()
    else:
        scope = _audit.audit_session(
            path=audit_path,
            run_meta={"experiment": "fig7", "trials": trials},
            include_pmfs=False,
        )
    with scope as trail:
        for window in attack_windows:
            single_hits = 0
            multi_hits = 0
            for _ in range(trials):
                trace = periodic_attack_history(
                    history_length, window, attack_rate=attack_rate, seed=rng
                )
                single_hits += not _tested(single, trace, window, trail).passed
                multi_hits += not _tested(multi, trace, window, trail).passed
            result.add_row(
                attack_window=window,
                single_detection_rate=single_hits / trials,
                multi_detection_rate=multi_hits / trials,
            )
        if trail is not None:
            for line in _audit_breakdown(trail.records):
                result.notes += "\n" + line
    return result


def _tested(test, trace, window: int, trail):
    if trail is None:
        return test.test(trace)
    with _audit.trail.decision_scope(
        server=f"periodic-w{window}", adversary=f"periodic-w{window}"
    ):
        return test.test(trace)


def _audit_breakdown(records) -> Sequence[str]:
    """Detection counts per (adversary class, test) from audit records."""
    counts: Dict[Tuple[str, str], Dict[str, int]] = {}
    for record in records:
        if record.get("kind") != "behavior_test":
            continue
        context = record.get("context") or {}
        key = (str(context.get("adversary", "?")), str(record.get("test", "?")))
        entry = counts.setdefault(key, {"tests": 0, "detections": 0})
        entry["tests"] += 1
        entry["detections"] += not record.get("passed")
    lines = []
    for (adversary, test), entry in sorted(counts.items()):
        lines.append(
            f"audit[{adversary}/{test}]: {entry['detections']}/{entry['tests']} detected"
        )
    return lines
