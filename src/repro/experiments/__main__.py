"""Command-line entry point: regenerate the paper's figures as text tables.

Usage::

    python -m repro.experiments fig3            # one figure
    python -m repro.experiments all --quick     # smoke-run everything
    python -m repro.experiments fig7 --out fig7.txt
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import List, Optional

from .. import obs
from . import RUNNERS
from .report import render_report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation figures of 'On the Modeling of "
            "Honest Players in Reputation Systems'"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS) + ["all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps / fewer seeds (minutes -> seconds)",
    )
    parser.add_argument(
        "--seed", type=int, default=2008, help="base random seed (default 2008)"
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also append the rendered tables to this file",
    )
    parser.add_argument(
        "--markdown",
        type=str,
        default=None,
        help="write a Markdown report of all results to this file",
    )
    parser.add_argument(
        "--svg-dir",
        type=str,
        default=None,
        help="also render each figure as an SVG into this directory",
    )
    parser.add_argument(
        "--bench-dir",
        type=str,
        default=None,
        help=(
            "write machine-readable BENCH_<name>.json artifacts into this "
            "directory (experiments that support benchmarking, e.g. fig9)"
        ),
    )
    parser.add_argument(
        "--audit-dir",
        type=str,
        default=None,
        help=(
            "write decision-audit AUDIT_<name>.jsonl logs into this "
            "directory (experiments that support auditing, e.g. fig5-fig7); "
            "inspect with `repro explain <server> <log>`"
        ),
    )
    parser.add_argument(
        "--events-dir",
        type=str,
        default=None,
        help=(
            "write JSONL event logs with progress heartbeats into this "
            "directory as EVENTS_<name>.jsonl (watch live with "
            "`repro obs top <log>`)"
        ),
    )
    parser.add_argument(
        "--profile-dir",
        type=str,
        default=None,
        help=(
            "write phase profiles into this directory as "
            "PROFILE_<name>.json plus flamegraph-ready .folded "
            "(experiments that support profiling, e.g. fig9)"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        type=str,
        default=None,
        help=(
            "write causal span logs into this directory as "
            "TRACE_<name>.jsonl (experiments that support tracing, e.g. "
            "serve); inspect with `repro obs trace <log>`"
        ),
    )
    parser.add_argument(
        "--slo-dir",
        type=str,
        default=None,
        help=(
            "write SLO error-budget artifacts into this directory as "
            "BENCH_slo.json (experiments that support it, e.g. serve); "
            "inspect with `repro obs slo <artifact>`"
        ),
    )
    parser.add_argument(
        "--tsdb-dir",
        type=str,
        default=None,
        help=(
            "write scraped metric history into this directory as "
            "TSDB_<name>.jsonl (experiments that support it, e.g. serve); "
            "inspect with `repro obs tsdb <file>`"
        ),
    )
    parser.add_argument(
        "--fleet-dir",
        type=str,
        default=None,
        help=(
            "write fleet-scope observability artifacts into this directory "
            "(experiments that support it, e.g. p2p_scale): FLEET_*.json "
            "per-node snapshots + ring consistency, TSDB_fleet.jsonl "
            "history, and node-scoped POSTMORTEM_fleet_*.json bundles; "
            "render with `repro obs fleet <dir>`"
        ),
    )
    parser.add_argument(
        "--engine",
        type=str,
        default=None,
        help=(
            "assessment engine mode for experiments that support it "
            "(e.g. fig9/p2p_scale accept 'incremental' to also measure "
            "the repro.serve incremental path and assert equivalence)"
        ),
    )
    parser.add_argument(
        "--log-level",
        type=str,
        default=None,
        help=(
            "enable repro.* logging at this level (DEBUG, INFO, ...); "
            "defaults to $REPRO_LOG_LEVEL"
        ),
    )
    args = parser.parse_args(argv)
    log_level = args.log_level or os.environ.get("REPRO_LOG_LEVEL")
    if log_level:
        obs.configure_logging(log_level)

    if args.bench_dir:
        os.makedirs(args.bench_dir, exist_ok=True)
    if args.audit_dir:
        os.makedirs(args.audit_dir, exist_ok=True)
    if args.events_dir:
        os.makedirs(args.events_dir, exist_ok=True)
    if args.profile_dir:
        os.makedirs(args.profile_dir, exist_ok=True)
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
    if args.slo_dir:
        os.makedirs(args.slo_dir, exist_ok=True)
    if args.tsdb_dir:
        os.makedirs(args.tsdb_dir, exist_ok=True)
    if args.fleet_dir:
        os.makedirs(args.fleet_dir, exist_ok=True)

    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    rendered = []
    results = []
    for name in names:
        runner = RUNNERS[name]
        kwargs = {"quick": args.quick, "base_seed": args.seed}
        params = inspect.signature(runner).parameters
        if args.engine and "engine" in params:
            kwargs["engine"] = args.engine
        if args.bench_dir and "bench_path" in params:
            kwargs["bench_path"] = os.path.join(args.bench_dir, f"BENCH_{name}.json")
        if args.audit_dir and "audit_path" in params:
            kwargs["audit_path"] = os.path.join(args.audit_dir, f"AUDIT_{name}.jsonl")
        if args.events_dir and "events_path" in params:
            kwargs["events_path"] = os.path.join(
                args.events_dir, f"EVENTS_{name}.jsonl"
            )
        if args.profile_dir and "profile_path" in params:
            kwargs["profile_path"] = os.path.join(
                args.profile_dir, f"PROFILE_{name}.json"
            )
        if args.trace_dir and "trace_path" in params:
            kwargs["trace_path"] = os.path.join(
                args.trace_dir, f"TRACE_{name}.jsonl"
            )
        if args.slo_dir and "slo_path" in params:
            kwargs["slo_path"] = os.path.join(args.slo_dir, "BENCH_slo.json")
        if args.tsdb_dir and "tsdb_path" in params:
            kwargs["tsdb_path"] = os.path.join(args.tsdb_dir, f"TSDB_{name}.jsonl")
        if args.fleet_dir and "fleet_dir" in params:
            kwargs["fleet_dir"] = args.fleet_dir
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        block = result.render() + f"\n({elapsed:.1f}s)\n"
        print(block)
        rendered.append(block)
        results.append(result)
        for key in (
            "bench_path",
            "audit_path",
            "events_path",
            "profile_path",
            "trace_path",
            "slo_path",
            "tsdb_path",
        ):
            if key in kwargs:
                print(f"wrote {kwargs[key]}")
        if "fleet_dir" in kwargs:
            print(f"wrote fleet artifacts to {kwargs['fleet_dir']}")
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write("\n".join(rendered))
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(render_report(results))
    if args.svg_dir:
        from .svgplot import write_svg

        os.makedirs(args.svg_dir, exist_ok=True)
        for result in results:
            target = os.path.join(args.svg_dir, f"{result.experiment}.svg")
            # Fig. 9 spans 10k-800k transactions: log x keeps it readable
            write_svg(result, target, log_x=(result.experiment == "fig9"))
            print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
