"""Command-line entry point: regenerate the paper's figures as text tables.

Usage::

    python -m repro.experiments fig3            # one figure
    python -m repro.experiments all --quick     # smoke-run everything
    python -m repro.experiments fig7 --out fig7.txt
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import List, Optional

from .. import obs
from . import RUNNERS
from .report import render_report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation figures of 'On the Modeling of "
            "Honest Players in Reputation Systems'"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS) + ["all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps / fewer seeds (minutes -> seconds)",
    )
    parser.add_argument(
        "--seed", type=int, default=2008, help="base random seed (default 2008)"
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also append the rendered tables to this file",
    )
    parser.add_argument(
        "--markdown",
        type=str,
        default=None,
        help="write a Markdown report of all results to this file",
    )
    parser.add_argument(
        "--svg-dir",
        type=str,
        default=None,
        help="also render each figure as an SVG into this directory",
    )
    parser.add_argument(
        "--bench-dir",
        type=str,
        default=None,
        help=(
            "write machine-readable BENCH_<name>.json artifacts into this "
            "directory (experiments that support benchmarking, e.g. fig9)"
        ),
    )
    parser.add_argument(
        "--audit-dir",
        type=str,
        default=None,
        help=(
            "write decision-audit AUDIT_<name>.jsonl logs into this "
            "directory (experiments that support auditing, e.g. fig5-fig7); "
            "inspect with `repro explain <server> <log>`"
        ),
    )
    parser.add_argument(
        "--log-level",
        type=str,
        default=None,
        help="enable repro.* logging at this level (DEBUG, INFO, ...)",
    )
    args = parser.parse_args(argv)
    if args.log_level:
        obs.configure_logging(args.log_level)

    if args.bench_dir:
        os.makedirs(args.bench_dir, exist_ok=True)
    if args.audit_dir:
        os.makedirs(args.audit_dir, exist_ok=True)

    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    rendered = []
    results = []
    for name in names:
        runner = RUNNERS[name]
        kwargs = {"quick": args.quick, "base_seed": args.seed}
        if args.bench_dir and "bench_path" in inspect.signature(runner).parameters:
            kwargs["bench_path"] = os.path.join(args.bench_dir, f"BENCH_{name}.json")
        if args.audit_dir and "audit_path" in inspect.signature(runner).parameters:
            kwargs["audit_path"] = os.path.join(args.audit_dir, f"AUDIT_{name}.jsonl")
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        block = result.render() + f"\n({elapsed:.1f}s)\n"
        print(block)
        rendered.append(block)
        results.append(result)
        if "bench_path" in kwargs:
            print(f"wrote {kwargs['bench_path']}")
        if "audit_path" in kwargs:
            print(f"wrote {kwargs['audit_path']}")
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write("\n".join(rendered))
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(render_report(results))
    if args.svg_dir:
        from .svgplot import write_svg

        os.makedirs(args.svg_dir, exist_ok=True)
        for result in results:
            target = os.path.join(args.svg_dir, f"{result.experiment}.svg")
            # Fig. 9 spans 10k-800k transactions: log x keeps it readable
            write_svg(result, target, log_x=(result.experiment == "fig9"))
            print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
