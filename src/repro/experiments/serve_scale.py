"""Serving-layer scaling: batched incremental assessment vs. per-call.

Not a figure from the paper — the paper's evaluation times one behavior
test at a time (Fig. 9), but the ROADMAP's serving scenario is a
reputation service answering bulk trust queries over a mostly-quiet
population.  This experiment quantifies that regime: for growing server
populations, a full per-call ``TwoPhaseAssessor.assess`` sweep is
compared against ``AssessmentService.assess_many`` in steady state
(every sweep re-asks about all servers after a small fraction received
new feedback), asserting along the way that both engines return
identical assessments.

Like fig9/p2p_scale, timings flow through the obs layer; ``bench_path``
emits a schema-valid ``BENCH_serve.json`` so the serving layer joins the
regression gate, and ``events_path`` streams progress heartbeats for
``repro obs top``.  ``trace_path`` records the run's spans as JSONL
(inspect with ``repro obs trace``) and ``slo_path`` evaluates the
default serve SLOs against the run's metrics, writing a
``BENCH_slo.json`` budget artifact for the CI gate.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..core.config import AssessorConfig, BehaviorTestConfig
from ..core.model import generate_honest_outcomes
from ..core.two_phase import Assessor
from ..feedback.history import TransactionHistory
from ..serve import AssessmentService
from ..stats.rng import make_rng
from .common import ExperimentResult, make_shared_calibrator

__all__ = ["run_serve_scale", "SERVER_COUNTS"]

SERVER_COUNTS = (2_000, 10_000)

_SWEEP_METRIC = "experiments.serve.sweep_seconds"


def _build_population(
    n_servers: int, *, base_seed: int
) -> List[TransactionHistory]:
    """Synthesize a serving population of mostly-honest servers.

    History lengths and success rates vary per server so the sweep
    exercises many calibration buckets and both phase-1 outcomes.
    """
    rng = make_rng(base_seed)
    lengths = rng.integers(120, 360, size=n_servers)
    rates = 0.85 + 0.14 * rng.random(n_servers)
    return [
        TransactionHistory.from_outcomes(
            generate_honest_outcomes(
                int(lengths[i]), float(rates[i]), seed=base_seed + i
            ),
            server=f"server-{i:05d}",
        )
        for i in range(n_servers)
    ]


def run_serve_scale(
    *,
    server_counts: Optional[Sequence[int]] = None,
    touch_fraction: float = 0.01,
    repeats: int = 3,
    base_seed: int = 2008,
    quick: bool = False,
    bench_path: Optional[str] = None,
    events_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    slo_path: Optional[str] = None,
    tsdb_path: Optional[str] = None,
) -> ExperimentResult:
    """Measure per-call vs. batched-incremental assessment sweeps.

    For every population size: build per-server histories, time full
    per-call ``assess`` sweeps, then time ``assess_many`` steady-state
    sweeps where ``touch_fraction`` of the servers received one new
    feedback since the last sweep.  The two engines' assessments are
    compared server-for-server; any mismatch raises.  ``bench_path``
    writes ``BENCH_serve.json`` through :mod:`repro.obs.bench`;
    ``events_path`` a heartbeat JSONL log; ``trace_path`` a span-sink
    JSONL (the whole run becomes one trace rooted at
    ``experiments.serve.run``); ``slo_path`` a ``BENCH_slo.json``
    error-budget artifact from the run's own metrics; ``tsdb_path`` a
    TSDB JSONL of the run's scraped metric history (a
    :class:`~repro.obs.tsdb.MetricsScraper` with an anomaly detector and
    wall-clock SLO windows runs for the duration, driven by the serving
    loop — inspect with ``repro obs tsdb``).
    """
    if server_counts is None:
        server_counts = (200, 500) if quick else SERVER_COUNTS
    if not 0.0 <= touch_fraction <= 1.0:
        raise ValueError(
            f"touch_fraction must lie in [0, 1], got {touch_fraction}"
        )
    if quick:
        repeats = min(repeats, 2)
    server_counts = tuple(server_counts)

    config = BehaviorTestConfig()
    calibrator = make_shared_calibrator(config)
    assessor_config = AssessorConfig(
        trust_function="average", behavior_test="multi", test_config=config
    )
    assessor = Assessor.from_config(assessor_config, calibrator=calibrator)

    result = ExperimentResult(
        experiment="serve",
        title="Assessment serving: per-call vs. batched incremental sweeps",
        columns=[
            "n_servers",
            "percall_s",
            "serve_cold_s",
            "serve_warm_s",
            "speedup",
        ],
        notes=(
            f"{touch_fraction:.0%} of servers touched between warm sweeps; "
            f"best of {repeats} sweeps; identical verdicts asserted per server"
        ),
    )

    if obs.is_enabled():
        scope = contextlib.nullcontext(
            obs.ObsSession(obs.get_registry(), obs.get_tracer())
        )
    else:
        scope = obs.activate()
    run_meta = obs.run_metadata(
        seed=base_seed,
        config=config,
        experiment="serve",
        quick=quick,
        touch_fraction=touch_fraction,
        repeats=repeats,
    )
    log = (
        obs.EventLog(events_path, run_meta=run_meta)
        if events_path is not None
        else None
    )
    monitor = None
    if log is not None:
        monitor = obs.ProgressMonitor(
            log,
            total=len(server_counts) * (2 * max(repeats, 1) + 1),
            label="sweeps",
            interval_seconds=None,
            interval_ticks=1,
        )
        monitor.start(experiment="serve")

    # A trace_path turns the whole run into one causal trace: the span
    # sink is installed for the scope, and a root context is minted so
    # every experiment span, service request, and executor shard nests
    # under the same trace_id.
    trace_scope = (
        obs.tracing_session(trace_path)
        if trace_path is not None
        else contextlib.nullcontext()
    )
    root_scope = (
        obs.use(obs.new_root(experiment="serve"))
        if trace_path is not None
        else contextlib.nullcontext()
    )
    bench_rows: List[Dict[str, object]] = []
    with scope as session, trace_scope, root_scope, contextlib.ExitStack() as stack:
        registry = session.registry
        scraper = None
        if tsdb_path is not None:
            # the serving loop (assess_many) drives maybe_scrape(); a
            # sub-second cadence gives quick runs real history too
            scraper = obs.MetricsScraper(
                registry,
                interval_s=0.25,
                detector=obs.AnomalyDetector(event_log=log),
                slo_engine=obs.SloEngine(obs.default_serve_slos()),
            )
            stack.enter_context(obs.scraping_session(scraper))
            # and a flight recorder next to the store: an escaping
            # ResilienceError, a breaker opening, or an SLO burn leaves
            # a POSTMORTEM_*.json bundle beside TSDB_serve.jsonl
            stack.enter_context(
                obs.flight_recording(
                    os.path.dirname(tsdb_path) or ".", scraper=scraper
                )
            )
        with obs.span("experiments.serve.run", quick=quick):
            for n in server_counts:
                with obs.span("experiments.serve.prepare", n_servers=n):
                    histories = _build_population(n, base_seed=base_seed)
                    service = AssessmentService(assessor)
                    for history in histories:
                        service.add_server(history)
                    # Warm the ε-threshold cache so both engines measure
                    # assessment work, not one-off Monte-Carlo calibration.
                    for history in histories:
                        assessor.assess(history)
                touch_rng = make_rng(base_seed + n)
                n_touch = max(int(n * touch_fraction), 1)
                with obs.span("experiments.serve.cold_sweep", n_servers=n):
                    with obs.timer(_SWEEP_METRIC, mode="serve_cold", n_servers=n):
                        service.assess_many()
                    if monitor is not None:
                        monitor.tick(1, sweeps=1)
                with obs.span("experiments.serve.warm_sweeps", n_servers=n):
                    for _ in range(max(repeats, 1)):
                        touched = touch_rng.choice(n, size=n_touch, replace=False)
                        for idx in touched:
                            history = histories[int(idx)]
                            service.observe_outcome(
                                history.server, int(touch_rng.random() < 0.95)
                            )
                        with obs.timer(
                            _SWEEP_METRIC, mode="serve_warm", n_servers=n
                        ):
                            batched = service.assess_many()
                        if monitor is not None:
                            monitor.tick(1, sweeps=1)
                with obs.span("experiments.serve.percall_sweeps", n_servers=n):
                    for _ in range(max(repeats, 1)):
                        with obs.timer(
                            _SWEEP_METRIC, mode="percall", n_servers=n
                        ):
                            percall = {
                                history.server: assessor.assess(history)
                                for history in histories
                            }
                        if monitor is not None:
                            monitor.tick(1, sweeps=1)
                with obs.span("experiments.serve.verify", n_servers=n):
                    mismatched = [
                        server
                        for server, assessment in percall.items()
                        if batched[server] != assessment
                    ]
                    if mismatched:
                        raise AssertionError(
                            f"engines disagree on {len(mismatched)} of {n} "
                            f"servers (first: {mismatched[0]})"
                        )
                row: Dict[str, float] = {"n_servers": n}
                for mode, column in (
                    ("percall", "percall_s"),
                    ("serve_cold", "serve_cold_s"),
                    ("serve_warm", "serve_warm_s"),
                ):
                    hist = registry.histogram(_SWEEP_METRIC, mode=mode, n_servers=n)
                    row[column] = hist.min
                    bench_rows.append(
                        {
                            "name": mode,
                            "params": {"n_servers": n},
                            "stats": {
                                "mean_s": hist.mean,
                                "min_s": hist.min,
                                "p95_s": hist.p95,
                                "repeats": hist.count,
                            },
                        }
                    )
                row["speedup"] = (
                    row["percall_s"] / row["serve_warm_s"]
                    if row["serve_warm_s"] > 0
                    else float("inf")
                )
                result.add_row(**row)
            if bench_path is not None:
                with obs.span("experiments.serve.export"):
                    obs.write_bench_json(bench_path, "serve", bench_rows, meta=run_meta)
        if slo_path is not None:
            evaluation = obs.SloEngine(obs.default_serve_slos()).evaluate(registry)
            obs.write_bench_json(
                slo_path,
                "slo",
                obs.evaluation_to_bench_rows(evaluation),
                meta=run_meta,
            )
        if log is not None:
            log.emit_metrics(registry)
        if scraper is not None:
            # a final unconditional scrape so runs shorter than one slot
            # still persist history, then the store itself
            scraper.scrape()
            scraper.store.dump(tsdb_path)
    if monitor is not None:
        monitor.finish(experiment="serve")
    if log is not None:
        log.emit("run_end", experiment="serve")
        log.close()
    return result
