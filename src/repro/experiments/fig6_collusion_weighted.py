"""Fig. 6 — cost of attackers with collusion: weighted function.

Same collusion sweep as Fig. 5 under the EWMA trust function
(lambda = 0.5).  The paper's observations carry over: colluders make the
bare function free to game (after each cheat, 2~3 *fake* positives
restore the trust value), collusion-resilient Scheme 1 decays with prep
size, and collusion-resilient Scheme 2 imposes a near-constant cost.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from ..trust.weighted import WeightedTrust
from .attack_cost import collusion_cost_sweep
from .common import ExperimentResult
from .fig4_weighted import PAPER_LAMBDA
from .fig5_collusion_average import PREP_SIZES, QUICK_PREP_SIZES

__all__ = ["run_fig6"]


def run_fig6(
    *,
    prep_sizes: Optional[Sequence[int]] = None,
    n_seeds: int = 3,
    base_seed: int = 2008,
    lam: float = PAPER_LAMBDA,
    quick: bool = False,
    audit_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Fig. 6."""
    if prep_sizes is None:
        prep_sizes = QUICK_PREP_SIZES if quick else PREP_SIZES
    if quick:
        n_seeds = min(n_seeds, 2)
    result = ExperimentResult(
        experiment="fig6",
        title=(
            "Cost of attackers with collusion vs. prep size "
            f"(weighted trust function, lambda={lam})"
        ),
        columns=["prep_size", "none", "scheme1", "scheme2"],
        notes=(
            "cost = good transactions to non-colluders needed for 20 bad ones; "
            f"100 clients / 5 colluders, a1=0.5 a2=0.9 a3=0.2, mean of {n_seeds} seeds"
        ),
    )
    return collusion_cost_sweep(
        result,
        partial(WeightedTrust, lam),
        prep_sizes=prep_sizes,
        n_seeds=n_seeds,
        base_seed=base_seed,
        audit_path=audit_path,
        events_path=events_path,
    )
