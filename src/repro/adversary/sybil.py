"""Sybil / whitewashing attacks against per-identity behavior testing.

The paper scopes out cheat-and-run (Sec. 3.1): short-lived identities
defeat any history-based mechanism, and the defense is economic —
joining costs.  The *sybil* generalization splits one attacker across
many identities so that each identity's history stays too short (or too
clean) to judge:

* each sybil performs ``warmup`` good transactions, then ``cheats_each``
  bad ones, then is abandoned;
* with per-identity histories below the behavior test's minimum, every
  sybil individually passes (via the ``on_insufficient`` policy) — the
  screen is structurally blind here;
* the economics decide: a campaign of ``target_bads`` cheats needs
  ``ceil(target_bads / cheats_each)`` identities, so the attacker's cost
  is ``identities * joining_cost + warmup-goods``, which the defender
  tunes via the joining cost.

:func:`sybil_campaign_cost` computes that cost curve — the quantitative
form of the paper's "increase the cost of joining a system" argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..stats.rng import SeedLike, make_rng

__all__ = ["SybilIdentity", "SybilAttacker", "sybil_campaign_cost"]


@dataclass(frozen=True)
class SybilIdentity:
    """One disposable identity's full transaction history."""

    name: str
    outcomes: np.ndarray

    @property
    def cheats(self) -> int:
        return int((self.outcomes == 0).sum())

    @property
    def warmup_goods(self) -> int:
        return int(self.outcomes.sum())


class SybilAttacker:
    """Splits a cheating campaign across disposable identities."""

    def __init__(
        self,
        warmup: int = 5,
        cheats_each: int = 1,
        warmup_honesty: float = 1.0,
    ):
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        if cheats_each <= 0:
            raise ValueError(f"cheats_each must be positive, got {cheats_each}")
        if not 0.0 <= warmup_honesty <= 1.0:
            raise ValueError(f"warmup_honesty must lie in [0, 1], got {warmup_honesty}")
        self._warmup = warmup
        self._cheats_each = cheats_each
        self._warmup_honesty = warmup_honesty

    @property
    def identity_length(self) -> int:
        """Transactions per identity before it is abandoned."""
        return self._warmup + self._cheats_each

    def identities_needed(self, target_bads: int) -> int:
        """How many disposable identities a campaign of ``target_bads`` needs."""
        if target_bads <= 0:
            raise ValueError(f"target_bads must be positive, got {target_bads}")
        return math.ceil(target_bads / self._cheats_each)

    def run(self, target_bads: int, *, seed: SeedLike = None) -> List[SybilIdentity]:
        """Generate the identity histories of a full campaign."""
        rng = make_rng(seed)
        identities = []
        remaining = target_bads
        index = 0
        while remaining > 0:
            cheats = min(self._cheats_each, remaining)
            warmup = (rng.random(self._warmup) < self._warmup_honesty).astype(np.int8)
            outcomes = np.concatenate([warmup, np.zeros(cheats, dtype=np.int8)])
            identities.append(SybilIdentity(name=f"sybil-{index}", outcomes=outcomes))
            remaining -= cheats
            index += 1
        return identities


def sybil_campaign_cost(
    target_bads: int,
    joining_cost: float,
    *,
    warmup: int = 5,
    cheats_each: int = 1,
    good_service_cost: float = 1.0,
) -> float:
    """Total attacker cost of a sybil campaign.

    ``identities * joining_cost + total-warmup-goods * good_service_cost``.
    Setting this against the gain per cheat gives the joining cost a
    system must charge for sybil attacks to be unprofitable — the paper's
    certified-ID / membership-fee recommendation, quantified.
    """
    if joining_cost < 0:
        raise ValueError(f"joining_cost must be non-negative, got {joining_cost}")
    if good_service_cost < 0:
        raise ValueError(
            f"good_service_cost must be non-negative, got {good_service_cost}"
        )
    attacker = SybilAttacker(warmup=warmup, cheats_each=cheats_each)
    identities = attacker.identities_needed(target_bads)
    return identities * joining_cost + identities * warmup * good_service_cost
