"""The strategic attacker of Sec. 5.1.

The attacker has fully prepared: a history of ``prep_size`` transactions
conducted as an honest player with trustworthiness ``prep_honesty``
(0.95 in the paper).  Its goal is ``target_bads`` (20) successful bad
transactions.  It knows the deployed trust function and behavior test and
decides each next transaction by look-ahead:

* assume the next transaction is bad and consider the resulting history
  H'; if H' is still consistent with the honest-player model *and* the
  trust value shown to the victim meets the client threshold, cheat;
* otherwise provide a good service (the cost the experiments measure).

Trust-threshold reading: the paper's prose applies the threshold "to the
trust value computed from H'", but under the weighted function a bad
transaction always drops trust to ``(1 - lambda) * R <= 0.5``, which would
make cheating impossible — contradicting Fig. 4's finite costs and its
"2~3 good transactions after each bad one" observation.  We therefore
check the threshold against the *pre-transaction* trust value, i.e. what
the victim client sees when it decides to transact (see DESIGN.md §3.1).
The behavior-test part of the look-ahead does use H', exactly as written.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.model import generate_honest_outcomes
from ..core.two_phase import BehaviorTestProtocol
from ..feedback.history import TransactionHistory
from ..stats.rng import SeedLike, make_rng
from ..trust.base import TrustFunction
from .base import AttackCampaignResult
from .oracle import AssessmentOracle

__all__ = ["StrategicAttacker"]


class StrategicAttacker:
    """Defense-aware attacker for the non-collusion experiments."""

    def __init__(
        self,
        trust_function: TrustFunction,
        behavior_test: Optional[BehaviorTestProtocol],
        trust_threshold: float = 0.9,
        prep_honesty: float = 0.95,
        target_bads: int = 20,
        max_steps: int = 100_000,
    ):
        if not 0.0 <= prep_honesty <= 1.0:
            raise ValueError(f"prep_honesty must lie in [0, 1], got {prep_honesty}")
        if target_bads <= 0:
            raise ValueError(f"target_bads must be positive, got {target_bads}")
        if max_steps <= 0:
            raise ValueError(f"max_steps must be positive, got {max_steps}")
        self._trust_function = trust_function
        self._behavior_test = behavior_test
        self._threshold = trust_threshold
        self._prep_honesty = prep_honesty
        self._target_bads = target_bads
        self._max_steps = max_steps

    def run(self, prep_size: int, *, seed: SeedLike = None) -> AttackCampaignResult:
        """Run one campaign starting from a fresh preparation history."""
        rng = make_rng(seed)
        prep = generate_honest_outcomes(prep_size, self._prep_honesty, seed=rng)
        return self.run_from_history(prep, prep_size=prep_size)

    def run_from_history(
        self, prep_outcomes: np.ndarray, *, prep_size: Optional[int] = None
    ) -> AttackCampaignResult:
        """Run one campaign from an explicit preparation history."""
        history = TransactionHistory.from_outcomes(np.asarray(prep_outcomes))
        oracle = AssessmentOracle(
            self._trust_function,
            self._behavior_test,
            trust_threshold=self._threshold,
            history=history,
        )
        bads = 0
        goods = 0
        steps = 0
        while bads < self._target_bads and steps < self._max_steps:
            steps += 1
            if self._cheat_is_feasible(oracle):
                oracle.record_outcome(0)
                bads += 1
            else:
                oracle.record_outcome(1)
                goods += 1
        return AttackCampaignResult(
            bad_transactions=bads,
            good_transactions=goods,
            prep_transactions=(
                prep_size if prep_size is not None else int(np.asarray(prep_outcomes).size)
            ),
            steps=steps,
            reached_goal=(bads == self._target_bads),
            extra={"final_trust": oracle.trust_value},
        )

    def _cheat_is_feasible(self, oracle: AssessmentOracle) -> bool:
        """Can the attacker cheat *now* without losing acceptability?

        Three conditions: the victim's trust check passes on the current
        history, the current history passes the behavior screen (else no
        client transacts at all), and the post-cheat history H' still
        passes the screen (the attacker's own conservativeness — it never
        walks into a flag).
        """
        if oracle.trust_value < self._threshold:
            return False
        if not oracle.behavior_passes():
            return False
        return oracle.behavior_passes_after(0)
