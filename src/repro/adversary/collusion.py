"""The colluding strategic attacker (Sec. 5.2).

Setup, following the paper's experiment: a population of ``n_clients``
potential clients of which ``n_colluders`` collude with the attacker.
During the preparation phase the attacker transacts only with its
colluders, who fabricate feedback mimicking an honest player of
trustworthiness ``prep_honesty`` (0.95).  During the attack phase, each
step offers three actions:

* **cheat** a requesting non-colluder client (the goal: ``target_bads``
  of these),
* **serve** a requesting non-colluder client well (the real cost), or
* **colluder help** — a fabricated positive feedback, costing nothing.

Clients arrive per the probabilistic model of
:mod:`repro.simulation.arrival` (``a1 = 0.5``, ``a2 = 0.9``, ``a3 = 0.2``).
The attacker knows the deployed trust function and behavior test and
picks its action by look-ahead:

1. cheat if the victim would accept now *and* the post-cheat history
   still passes the behavior screen;
2. otherwise, if trust is below the client threshold, rebuild it the
   free way (colluder help) when the screen tolerates it;
3. otherwise the behavior screen is what blocks cheating — fabricated
   positives land in the already-large colluder groups and do not fix the
   issuer-grouped distribution, so the attacker must grow its supporter
   base: serve a real client.

Reported cost counts only goods delivered to non-colluders — "the true
cost for the attacker to achieve his goal".
"""

from __future__ import annotations

import logging
from typing import List, Optional

from ..core.two_phase import BehaviorTestProtocol
from ..feedback.history import TransactionHistory
from ..feedback.records import Feedback, Rating
from ..obs import runtime as _obs
from ..simulation.arrival import ArrivalModel, ClientStateTable
from ..stats.rng import SeedLike, make_rng
from ..trust.base import TrustFunction
from .base import AttackCampaignResult
from .oracle import AssessmentOracle

__all__ = ["ColludingStrategicAttacker"]

# Module-level logger (never the root logger): campaigns are long loops
# and debug insight must be opt-in via the logging hierarchy.
_log = logging.getLogger(__name__)

_SERVER_ID = "attacker"


class ColludingStrategicAttacker:
    """Defense-aware attacker with a colluder ring."""

    def __init__(
        self,
        trust_function: TrustFunction,
        behavior_test: Optional[BehaviorTestProtocol],
        trust_threshold: float = 0.9,
        n_clients: int = 100,
        n_colluders: int = 5,
        arrival: ArrivalModel = ArrivalModel(),
        prep_honesty: float = 0.95,
        target_bads: int = 20,
        max_steps: int = 50_000,
    ):
        if not 0 < n_colluders < n_clients:
            raise ValueError(
                f"need 0 < n_colluders < n_clients, got {n_colluders}/{n_clients}"
            )
        if not 0.0 <= prep_honesty <= 1.0:
            raise ValueError(f"prep_honesty must lie in [0, 1], got {prep_honesty}")
        if target_bads <= 0:
            raise ValueError(f"target_bads must be positive, got {target_bads}")
        self._trust_function = trust_function
        self._behavior_test = behavior_test
        self._threshold = trust_threshold
        self._arrival = arrival
        self._prep_honesty = prep_honesty
        self._target_bads = target_bads
        self._max_steps = max_steps
        self._colluders = [f"colluder-{i}" for i in range(n_colluders)]
        self._ordinary = [f"client-{i}" for i in range(n_clients - n_colluders)]

    # ------------------------------------------------------------------ #

    def run(self, prep_size: int, *, seed: SeedLike = None) -> AttackCampaignResult:
        """One full campaign: colluder-only prep, then the attack phase."""
        rng = make_rng(seed)
        history = self._prepare(prep_size, rng)
        oracle = AssessmentOracle(
            self._trust_function,
            self._behavior_test,
            trust_threshold=self._threshold,
            history=history,
        )
        states = ClientStateTable(self._ordinary, self._arrival)

        time = float(prep_size)
        bads = goods = helps = idles = 0
        steps = 0
        colluder_cursor = prep_size  # keeps round-robin going from the prep
        while bads < self._target_bads and steps < self._max_steps:
            steps += 1
            time += 1.0
            reputation = min(max(oracle.trust_value, 0.0), 1.0)
            requesters = states.sample_requesters(reputation, seed=rng)
            victim = (
                str(rng.choice(requesters)) if requesters else None
            )

            if victim is not None and self._cheat_is_feasible(oracle, victim, time):
                oracle.record_feedback(self._feedback(time, victim, Rating.NEGATIVE))
                states.record_service(victim, 0)
                bads += 1
                continue

            if oracle.trust_value < self._threshold:
                helper = self._colluders[colluder_cursor % len(self._colluders)]
                fb = self._feedback(time, helper, Rating.POSITIVE, authentic=False)
                if oracle.behavior_passes_after_feedback(fb):
                    oracle.record_feedback(fb)
                    colluder_cursor += 1
                    helps += 1
                    continue
                # the screen rejects even a fabricated positive: fall through
                # to real service, the only remaining lever

            if victim is not None:
                oracle.record_feedback(self._feedback(time, victim, Rating.POSITIVE))
                states.record_service(victim, 1)
                goods += 1
                continue

            # Nobody requested and colluder help is useless or rejected.
            idles += 1

        _log.debug(
            "campaign done: prep=%d bads=%d/%d goods=%d helps=%d idles=%d steps=%d",
            prep_size,
            bads,
            self._target_bads,
            goods,
            helps,
            idles,
            steps,
        )
        if _obs.enabled:
            _obs.registry.inc("adversary.collusion.campaigns")
            _obs.registry.inc("adversary.collusion.cheats", bads)
            _obs.registry.inc("adversary.collusion.services", goods)
            _obs.registry.inc("adversary.collusion.colluder_helps", helps)
        return AttackCampaignResult(
            bad_transactions=bads,
            good_transactions=goods,
            prep_transactions=prep_size,
            steps=steps,
            reached_goal=(bads == self._target_bads),
            colluder_feedbacks=helps,
            idle_steps=idles,
            extra={
                "final_trust": oracle.trust_value,
                "supporter_base": float(len(oracle.history.supporter_base())),
            },
        )

    # ------------------------------------------------------------------ #

    def _prepare(self, prep_size: int, rng) -> TransactionHistory:
        """Colluder-only preparation mimicking an honest 0.95 player."""
        history = TransactionHistory(_SERVER_ID)
        for i in range(prep_size):
            helper = self._colluders[i % len(self._colluders)]
            rating = Rating.POSITIVE if rng.random() < self._prep_honesty else Rating.NEGATIVE
            history.append_feedback(
                self._feedback(float(i), helper, rating, authentic=False)
            )
        return history

    def _cheat_is_feasible(
        self, oracle: AssessmentOracle, victim: str, time: float
    ) -> bool:
        """Victim accepts now, and the post-cheat history stays unflagged."""
        if oracle.trust_value < self._threshold:
            return False
        if not oracle.behavior_passes():
            return False
        bad = self._feedback(time, victim, Rating.NEGATIVE)
        return oracle.behavior_passes_after_feedback(bad)

    @staticmethod
    def _feedback(
        time: float, client: str, rating: Rating, *, authentic: bool = True
    ) -> Feedback:
        return Feedback(
            time=time,
            server=_SERVER_ID,
            client=client,
            rating=rating,
            authentic=authentic,
        )
