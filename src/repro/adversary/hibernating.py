"""Hibernating attacks (Sec. 3).

The attacker behaves well until its trust value reaches a *cover
reputation* ``T1``, then launches consecutive attacks against its targets.
Against a bare trust function a long enough preparation phase lets it run
its whole campaign without the trust value ever crossing the client
threshold; the behavior tests exist precisely to break this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.rng import SeedLike, make_rng
from ..trust.base import TrustFunction

__all__ = ["hibernating_attack_history", "HibernatingRun", "HibernatingAttacker"]


def hibernating_attack_history(
    prep_size: int,
    n_attacks: int,
    *,
    prep_honesty: float = 0.95,
    seed: SeedLike = None,
) -> np.ndarray:
    """The simplest hibernating trace: honest prep, then a pure bad burst."""
    if prep_size < 0:
        raise ValueError(f"prep_size must be non-negative, got {prep_size}")
    if n_attacks < 0:
        raise ValueError(f"n_attacks must be non-negative, got {n_attacks}")
    rng = make_rng(seed)
    prep = (rng.random(prep_size) < prep_honesty).astype(np.int8)
    return np.concatenate([prep, np.zeros(n_attacks, dtype=np.int8)])


@dataclass(frozen=True)
class HibernatingRun:
    """Trace of a trust-aware hibernating campaign."""

    outcomes: np.ndarray
    bad_transactions: int
    good_transactions: int
    cover_reached_at: int  # prep transactions needed to reach the cover reputation


class HibernatingAttacker:
    """Build cover reputation ``T1``, then cheat while trust stays acceptable.

    Unlike the bare-burst generator, this attacker only cheats while the
    trust value the victim sees stays at or above ``client_threshold``
    (an attack below it would simply be refused), rebuilding in between —
    the behavior the Fig. 3 "Average" curve exhibits.
    """

    def __init__(
        self,
        trust_function: TrustFunction,
        cover_reputation: float = 0.95,
        client_threshold: float = 0.9,
        target_bads: int = 20,
        max_steps: int = 100_000,
    ):
        if not 0.0 <= client_threshold <= cover_reputation <= 1.0:
            raise ValueError(
                "need 0 <= client_threshold <= cover_reputation <= 1, got "
                f"{client_threshold} / {cover_reputation}"
            )
        if target_bads <= 0:
            raise ValueError(f"target_bads must be positive, got {target_bads}")
        self._trust_function = trust_function
        self._cover = cover_reputation
        self._threshold = client_threshold
        self._target_bads = target_bads
        self._max_steps = max_steps

    def run(self, prep_outcomes: np.ndarray) -> HibernatingRun:
        """Extend the cover to T1, then cheat whenever the victim would accept."""
        tracker = self._trust_function.tracker()
        outcomes = list(np.asarray(prep_outcomes, dtype=np.int8))
        tracker.update_many(prep_outcomes)

        # Phase 0: extend the cover until T1 is reached.
        cover_goods = 0
        steps = 0
        while tracker.value < self._cover and steps < self._max_steps:
            steps += 1
            tracker.update(1)
            outcomes.append(1)
            cover_goods += 1

        bads = 0
        goods = 0
        while bads < self._target_bads and steps < self._max_steps:
            steps += 1
            if tracker.value >= self._threshold:
                tracker.update(0)
                outcomes.append(0)
                bads += 1
            else:
                tracker.update(1)
                outcomes.append(1)
                goods += 1
        return HibernatingRun(
            outcomes=np.asarray(outcomes, dtype=np.int8),
            bad_transactions=bads,
            good_transactions=goods,
            cover_reached_at=cover_goods,
        )
