"""Adversary models: the attacks the paper's schemes are measured against."""

from .base import AttackCampaignResult
from .cheat_and_run import CheatAndRunAttacker, CheatAndRunOutcome
from .collusion import ColludingStrategicAttacker
from .hibernating import HibernatingAttacker, HibernatingRun, hibernating_attack_history
from .oracle import AssessmentOracle
from .periodic import PeriodicRun, TrustDrivenPeriodicAttacker, periodic_attack_history
from .strategic import StrategicAttacker
from .sybil import SybilAttacker, SybilIdentity, sybil_campaign_cost

__all__ = [
    "AttackCampaignResult",
    "CheatAndRunAttacker",
    "CheatAndRunOutcome",
    "ColludingStrategicAttacker",
    "HibernatingAttacker",
    "HibernatingRun",
    "hibernating_attack_history",
    "AssessmentOracle",
    "PeriodicRun",
    "TrustDrivenPeriodicAttacker",
    "periodic_attack_history",
    "StrategicAttacker",
    "SybilAttacker",
    "SybilIdentity",
    "sybil_campaign_cost",
]
