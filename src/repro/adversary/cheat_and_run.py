"""Cheat-and-run attacks (Sec. 3.1).

An attacker conducts one bad transaction after a few honest ones — or
immediately upon joining — then leaves the system forever.  The paper
explicitly scopes these out: no reputation mechanism can prevent the
first bad transaction of a short-lived identity; the defense is to make
identities expensive (certified IDs, membership fees).  We model both the
attack and that economic counter-measure so the scoping claim is itself
testable: under a positive joining cost, cheat-and-run has negative
expected profit once the cost exceeds the per-cheat gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.rng import SeedLike, make_rng

__all__ = ["CheatAndRunAttacker", "CheatAndRunOutcome"]


@dataclass(frozen=True)
class CheatAndRunOutcome:
    """Economics of one cheat-and-run identity."""

    outcomes: np.ndarray
    cheats: int
    joining_cost: float
    gain_per_cheat: float

    @property
    def profit(self) -> float:
        """Attacker profit: cheat gains minus the identity's joining cost."""
        return self.cheats * self.gain_per_cheat - self.joining_cost


class CheatAndRunAttacker:
    """Join, perform ``warmup`` honest transactions, cheat once, vanish."""

    def __init__(
        self,
        warmup: int = 3,
        joining_cost: float = 1.0,
        gain_per_cheat: float = 1.0,
        warmup_honesty: float = 1.0,
    ):
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        if joining_cost < 0:
            raise ValueError(f"joining_cost must be non-negative, got {joining_cost}")
        if gain_per_cheat <= 0:
            raise ValueError(f"gain_per_cheat must be positive, got {gain_per_cheat}")
        if not 0.0 <= warmup_honesty <= 1.0:
            raise ValueError(f"warmup_honesty must lie in [0, 1], got {warmup_honesty}")
        self._warmup = warmup
        self._joining_cost = joining_cost
        self._gain = gain_per_cheat
        self._warmup_honesty = warmup_honesty

    def run(self, *, seed: SeedLike = None) -> CheatAndRunOutcome:
        """Generate one identity's trace and its campaign economics."""
        rng = make_rng(seed)
        warmup = (rng.random(self._warmup) < self._warmup_honesty).astype(np.int8)
        outcomes = np.concatenate([warmup, np.zeros(1, dtype=np.int8)])
        return CheatAndRunOutcome(
            outcomes=outcomes,
            cheats=1,
            joining_cost=self._joining_cost,
            gain_per_cheat=self._gain,
        )

    def breakeven_joining_cost(self) -> float:
        """Joining cost above which a fresh identity per cheat loses money."""
        return self._gain
