"""Common types for adversary models.

The paper evaluates its schemes by their *cost to attackers*: the number
of good transactions an attacker is forced to provide in order to finish
``M`` bad ones while staying acceptable to clients (Sec. 5).  Every
attack driver in this package reports an :class:`AttackCampaignResult`
with exactly that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["AttackCampaignResult"]


@dataclass(frozen=True)
class AttackCampaignResult:
    """Outcome of one attack campaign.

    Attributes
    ----------
    bad_transactions:
        Successful bad transactions conducted in the attack phase.
    good_transactions:
        *Real* good services delivered in the attack phase — the paper's
        cost metric.  In collusion scenarios this counts goods delivered
        to non-colluders only ("the true cost for the attacker").
    colluder_feedbacks:
        Fake positive feedbacks obtained from colluders during the attack
        phase (zero for non-collusion attackers).
    prep_transactions:
        Size of the preparation history the campaign started from.
    steps:
        Simulation steps consumed by the attack phase.
    reached_goal:
        True when the attacker finished all ``M`` intended bad
        transactions within the step budget.
    idle_steps:
        Steps in which the attacker performed no transaction (collusion
        scenarios where no feasible action existed).
    extra:
        Free-form per-campaign diagnostics (final trust, flag counts, ...).
    """

    bad_transactions: int
    good_transactions: int
    prep_transactions: int
    steps: int
    reached_goal: bool
    colluder_feedbacks: int = 0
    idle_steps: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def cost(self) -> int:
        """The paper's strength metric: real goods needed for the campaign."""
        return self.good_transactions

    @property
    def goods_per_attack(self) -> float:
        """Average real goods per successful bad transaction."""
        if self.bad_transactions == 0:
            return float("inf") if self.good_transactions else 0.0
        return self.good_transactions / self.bad_transactions
