"""Periodic attacks (Sec. 3 "Periodic Attacks" and the Fig. 7 workload).

A periodic attacker alternates between attacking and rebuilding
reputation.  Two forms are provided:

* :func:`periodic_attack_history` — the Fig. 7 workload generator: the
  attacker keeps its reputation at ``honesty`` while launching
  ``attack_rate * N`` bad transactions within every attack window of
  ``N`` transactions.  Bad positions are drawn uniformly at random inside
  each window: deterministic placement (e.g. always at the window start)
  is trivially caught at every ``N`` — the interesting question, and the
  paper's, is how detection degrades as the *randomized* pattern
  approaches genuine binomial behavior for large ``N``.
* :class:`TrustDrivenPeriodicAttacker` — the classic form from Sec. 3:
  cheat until trust drops to ``low_water``, rebuild to ``high_water``,
  repeat.  Used to characterize bare trust functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.rng import SeedLike, make_rng
from ..trust.base import TrustFunction

__all__ = ["periodic_attack_history", "TrustDrivenPeriodicAttacker", "PeriodicRun"]


def periodic_attack_history(
    n: int,
    attack_window: int,
    *,
    attack_rate: float = 0.1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate a periodic attacker's outcome sequence of length ``n``.

    Every full window of ``attack_window`` transactions contains exactly
    ``round(attack_rate * attack_window)`` bad transactions at uniformly
    random positions; a trailing partial window gets a proportional share.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if attack_window <= 0:
        raise ValueError(f"attack_window must be positive, got {attack_window}")
    if not 0.0 <= attack_rate <= 1.0:
        raise ValueError(f"attack_rate must lie in [0, 1], got {attack_rate}")
    rng = make_rng(seed)
    outcomes = np.ones(n, dtype=np.int8)
    bads_per_window = int(round(attack_rate * attack_window))
    start = 0
    while start < n:
        end = min(start + attack_window, n)
        span = end - start
        n_bads = (
            bads_per_window
            if span == attack_window
            else int(round(attack_rate * span))
        )
        n_bads = min(n_bads, span)
        if n_bads > 0:
            positions = rng.choice(span, size=n_bads, replace=False)
            outcomes[start + positions] = 0
        start = end
    return outcomes


@dataclass(frozen=True)
class PeriodicRun:
    """Trace of a trust-driven periodic campaign."""

    outcomes: np.ndarray
    bad_transactions: int
    good_transactions: int
    attack_bursts: int


class TrustDrivenPeriodicAttacker:
    """Cheat down to ``low_water``, rebuild to ``high_water``, repeat."""

    def __init__(
        self,
        trust_function: TrustFunction,
        high_water: float = 0.9,
        low_water: float = 0.85,
        target_bads: int = 20,
        max_steps: int = 100_000,
    ):
        if not 0.0 <= low_water < high_water <= 1.0:
            raise ValueError(
                f"need 0 <= low_water < high_water <= 1, got "
                f"{low_water} / {high_water}"
            )
        if target_bads <= 0:
            raise ValueError(f"target_bads must be positive, got {target_bads}")
        self._trust_function = trust_function
        self._high = high_water
        self._low = low_water
        self._target_bads = target_bads
        self._max_steps = max_steps

    def run(self, prep_outcomes: np.ndarray) -> PeriodicRun:
        """Run the cheat/rebuild cycle until the target number of bads."""
        tracker = self._trust_function.tracker()
        outcomes = list(np.asarray(prep_outcomes, dtype=np.int8))
        tracker.update_many(prep_outcomes)
        bads = 0
        goods = 0
        bursts = 0
        attacking = False
        steps = 0
        while bads < self._target_bads and steps < self._max_steps:
            steps += 1
            if attacking:
                # keep cheating while trust stays above the low-water mark
                if tracker.peek(0) >= self._low:
                    tracker.update(0)
                    outcomes.append(0)
                    bads += 1
                    continue
                attacking = False
            if tracker.value >= self._high:
                attacking = True
                bursts += 1
                continue  # next step starts the burst
            tracker.update(1)
            outcomes.append(1)
            goods += 1
        return PeriodicRun(
            outcomes=np.asarray(outcomes, dtype=np.int8),
            bad_transactions=bads,
            good_transactions=goods,
            attack_bursts=bursts,
        )
