"""The attacker's view of the defense — an assessment oracle.

The paper's strategic attackers "are aware of the trust functions as well
as the behavior testing algorithms" (Sec. 5.1): before each transaction
they evaluate what the defense would conclude if the next transaction
were bad.  :class:`AssessmentOracle` packages that knowledge:

* the server's history (shared, append-only),
* an incremental trust tracker kept in sync with the history, and
* the behavior test (or ``None`` when the defense is a bare trust
  function).

The oracle is also what *clients* consult in the drivers — attacker and
clients see the same public information, which is the paper's threat
model.
"""

from __future__ import annotations

from typing import Optional

from ..core.two_phase import BehaviorTestProtocol
from ..feedback.history import TransactionHistory
from ..feedback.records import Feedback
from ..trust.base import TrustFunction

__all__ = ["AssessmentOracle"]


class AssessmentOracle:
    """Incremental two-phase assessment over one server's live history."""

    def __init__(
        self,
        trust_function: TrustFunction,
        behavior_test: Optional[BehaviorTestProtocol],
        trust_threshold: float = 0.9,
        history: Optional[TransactionHistory] = None,
    ):
        if not 0.0 <= trust_threshold <= 1.0:
            raise ValueError(
                f"trust_threshold must lie in [0, 1], got {trust_threshold}"
            )
        self._trust_function = trust_function
        self._behavior_test = behavior_test
        self._threshold = trust_threshold
        self._history = history if history is not None else TransactionHistory()
        self._tracker = trust_function.tracker()
        self._tracker.update_many(self._history.outcomes())

    # ------------------------------------------------------------------ #
    # state

    @property
    def history(self) -> TransactionHistory:
        return self._history

    @property
    def trust_threshold(self) -> float:
        return self._threshold

    @property
    def trust_value(self) -> float:
        """Current (phase 2) trust value."""
        return self._tracker.value

    def behavior_passes(self) -> bool:
        """Does the current history pass the behavior test (phase 1)?"""
        if self._behavior_test is None:
            return True
        return self._behavior_test.test(self._history).passed

    def client_accepts(self) -> bool:
        """Would a threshold-``t`` client transact with the server now?

        The two-phase client check of Fig. 2: behavior screen first, then
        the trust threshold.
        """
        return self.trust_value >= self._threshold and self.behavior_passes()

    # ------------------------------------------------------------------ #
    # what-if queries (the attacker's look-ahead)

    def trust_after(self, outcome: int) -> float:
        """Trust value if ``outcome`` were appended (no mutation)."""
        return self._tracker.peek(outcome)

    def behavior_passes_after(self, outcome: int) -> bool:
        """Would the history still pass phase 1 after ``outcome``?"""
        if self._behavior_test is None:
            return True
        with self._history.speculate(outcome) as hypothetical:
            return self._behavior_test.test(hypothetical).passed

    def behavior_passes_after_feedback(self, feedback: Feedback) -> bool:
        """Feedback-level what-if (needed by collusion-resilient tests)."""
        if self._behavior_test is None:
            return True
        with self._history.speculate_feedback(feedback) as hypothetical:
            return self._behavior_test.test(hypothetical).passed

    # ------------------------------------------------------------------ #
    # mutation

    def record_outcome(self, outcome: int) -> None:
        """Commit a bare transaction outcome."""
        self._history.append_outcome(outcome)
        self._tracker.update(outcome)

    def record_feedback(self, feedback: Feedback) -> None:
        """Commit a full feedback record."""
        self._history.append_feedback(feedback)
        self._tracker.update(feedback.outcome)
