"""Configuration for behavior testing.

One frozen dataclass gathers every knob of the paper's schemes with the
paper's experimental defaults, so an experiment is fully described by
(config, trust function, attacker).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

__all__ = ["BehaviorTestConfig", "DEFAULT_CONFIG", "AssessorConfig"]

_INSUFFICIENT_POLICIES = ("pass", "fail")

#: Constructor options as declared (any mapping) or as stored (sorted pairs).
OptionsLike = Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]]


@dataclass(frozen=True)
class BehaviorTestConfig:
    """Knobs of the behavior-testing schemes.

    Attributes
    ----------
    window_size:
        ``m``, transactions per window (paper: 10).
    confidence:
        Confidence level for the empirical threshold ε (paper: 0.95).
    calibration_sets:
        Number of Monte-Carlo sample sets used to estimate the null
        distance distribution ("a reasonably large number", Sec. 3.2).
    distance:
        Distribution-distance name (paper: ``"l1"``; see
        :mod:`repro.stats.distances` for alternatives).
    min_windows:
        Multi-testing stops when a suffix has fewer complete windows than
        this ("too small to be statistically significant", Sec. 3.3).
    multi_step:
        ``k`` of Sec. 3.3 — each multi-testing round drops this many of
        the oldest transactions.
    p_quantum:
        Quantization of ``p_hat`` for threshold caching: thresholds are
        calibrated at ``p_hat`` rounded to this grid (0 disables caching
        by p, forcing exact recalibration every call).
    align:
        Window alignment, ``"recent"`` (default, anchors windows at the
        newest transaction so suffixes share boundaries) or ``"oldest"``.
    on_insufficient:
        Verdict when a history is too short to test: ``"pass"`` defers to
        the trust function / other mechanisms (the paper's position is
        that short histories need separate handling), ``"fail"`` treats
        them as suspicious.
    """

    window_size: int = 10
    confidence: float = 0.95
    calibration_sets: int = 400
    distance: str = "l1"
    min_windows: int = 4
    multi_step: int = 50
    p_quantum: float = 0.01
    align: str = "recent"
    on_insufficient: str = "pass"

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError(f"window_size must be positive, got {self.window_size}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must lie in (0, 1), got {self.confidence}")
        if self.calibration_sets <= 0:
            raise ValueError(
                f"calibration_sets must be positive, got {self.calibration_sets}"
            )
        if self.min_windows <= 0:
            raise ValueError(f"min_windows must be positive, got {self.min_windows}")
        if self.multi_step <= 0:
            raise ValueError(f"multi_step must be positive, got {self.multi_step}")
        if self.p_quantum < 0:
            raise ValueError(f"p_quantum must be non-negative, got {self.p_quantum}")
        if self.align not in ("recent", "oldest"):
            raise ValueError(f"align must be 'recent' or 'oldest', got {self.align!r}")
        if self.on_insufficient not in _INSUFFICIENT_POLICIES:
            raise ValueError(
                f"on_insufficient must be one of {_INSUFFICIENT_POLICIES}, "
                f"got {self.on_insufficient!r}"
            )

    @property
    def min_transactions(self) -> int:
        """Smallest history length the single test will actually judge."""
        return self.window_size * self.min_windows

    def with_(self, **changes) -> "BehaviorTestConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: The paper's experimental settings.
DEFAULT_CONFIG = BehaviorTestConfig()


def _freeze_options(options: Optional[OptionsLike]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize constructor options to a sorted tuple of (name, value)."""
    if options is None:
        return ()
    items = options.items() if isinstance(options, Mapping) else options
    return tuple(sorted((str(name), value) for name, value in items))


@dataclass(frozen=True)
class AssessorConfig:
    """Declarative description of a two-phase assessor.

    Both phases are referred to *by registry name* (see
    :func:`repro.core.registry.make_behavior_test` and
    :func:`repro.trust.registry.make_trust_function`), so a full assessor
    is serializable configuration rather than wired-up objects:
    ``Assessor.from_config(AssessorConfig(trust_function="beta"))``.

    Attributes
    ----------
    trust_function:
        Registered phase-2 trust-function name (aliases accepted).
    behavior_test:
        Registered phase-1 test name (aliases accepted); ``None`` or
        ``"none"`` disables screening, reducing the assessor to the bare
        trust function.
    trust_threshold:
        Client acceptance threshold over trust values (paper: 0.9).
    test_config:
        Behavior-testing knobs shared by whichever phase-1 test is named.
    behavior_options / trust_options:
        Extra constructor keywords for the named test / trust function.
        Accepts any mapping; stored as a sorted tuple of pairs so the
        config stays hashable and frozen.
    """

    trust_function: str = "average"
    behavior_test: Optional[str] = "multi"
    trust_threshold: float = 0.9
    test_config: BehaviorTestConfig = DEFAULT_CONFIG
    behavior_options: OptionsLike = ()
    trust_options: OptionsLike = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.trust_threshold <= 1.0:
            raise ValueError(
                f"trust_threshold must lie in [0, 1], got {self.trust_threshold}"
            )
        object.__setattr__(
            self, "behavior_options", _freeze_options(self.behavior_options)
        )
        object.__setattr__(self, "trust_options", _freeze_options(self.trust_options))

    @property
    def behavior_kwargs(self) -> Dict[str, Any]:
        """``behavior_options`` as a constructor-ready dict."""
        return dict(self.behavior_options)

    @property
    def trust_kwargs(self) -> Dict[str, Any]:
        """``trust_options`` as a constructor-ready dict."""
        return dict(self.trust_options)

    def with_(self, **changes) -> "AssessorConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
