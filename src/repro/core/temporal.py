"""Temporal behavior modeling (Sec. 3.1 extension).

"The statistical model can also be temporal.  We may have different
models for weekdays and weekends, or for the time 9am to 5pm and for
other time intervals."  An honest file server that is overloaded every
evening has two *different but individually consistent* Bernoulli rates;
pooled into one test it looks inconsistent, split by time bucket each
side follows its own binomial.

:class:`TemporalBehaviorTest` partitions a feedback history by a
user-supplied bucketing function over timestamps (weekday/weekend,
business-hours, arbitrary), then applies the single behavior test inside
every bucket.  Structure and policies mirror
:class:`~repro.core.categories.CategorizedBehaviorTest` — a time bucket
*is* a category derived from the timestamp rather than carried on the
feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..feedback.history import TransactionHistory
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .testing import SingleBehaviorTest
from .verdict import BehaviorVerdict

__all__ = [
    "TemporalReport",
    "TemporalBehaviorTest",
    "weekday_weekend_bucket",
    "hour_of_day_bucket",
]

BucketFn = Callable[[float], str]

_HOURS_PER_DAY = 24.0
_DAYS_PER_WEEK = 7


def weekday_weekend_bucket(time: float) -> str:
    """Bucket timestamps (in hours) into ``weekday`` / ``weekend``.

    Interprets ``time`` as hours since an epoch that starts on a Monday,
    the convention used by the simulation clock.
    """
    day = int(time // _HOURS_PER_DAY) % _DAYS_PER_WEEK
    return "weekend" if day >= 5 else "weekday"


def hour_of_day_bucket(time: float, *, start: int = 9, end: int = 17) -> str:
    """Bucket timestamps (in hours) into ``business`` / ``off-hours``."""
    if not 0 <= start < end <= 24:
        raise ValueError(f"need 0 <= start < end <= 24, got {start}/{end}")
    hour = time % _HOURS_PER_DAY
    return "business" if start <= hour < end else "off-hours"


@dataclass(frozen=True)
class TemporalReport(BehaviorVerdict):
    """Per-bucket verdicts plus the aggregate decision.

    As a :class:`BehaviorVerdict`, the per-bucket verdicts are mirrored
    into ``rounds`` (keyed by bucket name) and the aggregate numeric
    fields describe the decisive bucket.
    """

    by_bucket: Tuple[Tuple[str, BehaviorVerdict], ...] = ()

    def __post_init__(self) -> None:
        if self.by_bucket and not self.rounds:
            object.__setattr__(self, "rounds", tuple(self.by_bucket))
        self._fill_aggregates_from_rounds()

    @property
    def buckets(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.by_bucket)

    @property
    def failing_buckets(self) -> Tuple[str, ...]:
        return tuple(name for name, v in self.by_bucket if not v.passed)

    def verdict(self, bucket: str) -> BehaviorVerdict:
        """The verdict of one time bucket (KeyError if absent)."""
        for name, verdict in self.by_bucket:
            if name == bucket:
                return verdict
        raise KeyError(f"no verdict for bucket {bucket!r}")


class TemporalBehaviorTest:
    """Single behavior test applied within each time bucket."""

    name = "temporal"

    def __init__(
        self,
        bucket_fn: BucketFn = weekday_weekend_bucket,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
    ):
        self._bucket_fn = bucket_fn
        self._single = SingleBehaviorTest(config, calibrator)

    @property
    def config(self) -> BehaviorTestConfig:
        return self._single.config

    def test(self, history: TransactionHistory) -> TemporalReport:
        """``history`` must carry feedback metadata (timestamps)."""
        buckets = {}
        for fb in history.feedbacks():
            buckets.setdefault(self._bucket_fn(fb.time), []).append(fb.outcome)
        by_bucket = []
        for name in sorted(buckets):
            outcomes = np.asarray(buckets[name], dtype=np.int8)
            by_bucket.append((name, self._single.test_outcomes(outcomes)))
        passed = all(v.passed for _, v in by_bucket) if by_bucket else (
            self._single.config.on_insufficient == "pass"
        )
        return TemporalReport(passed=passed, by_bucket=tuple(by_bucket))
