"""The statistical model of honest players (Sec. 3.1).

An honest player's transaction outcomes are iid Bernoulli(p) trials —
``p`` is the player's trustworthiness, shaped by factors outside its
control — so the number of good transactions in a window of ``m``
transactions follows ``B(m, p)``.  Since the true ``p`` is unknown, it is
estimated from the history itself (``p_hat = sum(G_i) / n``, justified by
Lemma 3.1 / Bernoulli's law of large numbers).

:class:`HonestPlayerModel` bundles the windowing + estimation step; the
result is a :class:`FittedWindowModel` that the tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..feedback.windows import window_counts
from ..stats.binomial import binomial_pmf
from ..stats.empirical import empirical_pmf
from ..stats.rng import SeedLike, make_rng

__all__ = ["HonestPlayerModel", "FittedWindowModel", "generate_honest_outcomes"]


@dataclass(frozen=True)
class FittedWindowModel:
    """A history summarized under the honest-player window model."""

    window_size: int
    n_windows: int
    n_considered: int
    p_hat: float
    counts: np.ndarray  # per-window good counts, time order

    def expected_pmf(self) -> np.ndarray:
        """The null pmf ``B(m, p_hat)`` over support ``0..m``."""
        return binomial_pmf(self.window_size, self.p_hat)

    def observed_pmf(self) -> np.ndarray:
        """Empirical pmf of the window counts over the same support."""
        return empirical_pmf(self.counts, self.window_size + 1)


class HonestPlayerModel:
    """Windowed-binomial model of honest behavior."""

    def __init__(self, window_size: int = 10, align: str = "recent"):
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        self._m = window_size
        self._align = align

    @property
    def window_size(self) -> int:
        return self._m

    def fit(self, outcomes: np.ndarray) -> FittedWindowModel:
        """Window ``outcomes`` and estimate ``p_hat``.

        Raises ``ValueError`` when fewer than one complete window exists
        — callers decide separately what "too short" means (the tests use
        their ``min_windows`` policy).
        """
        arr = np.asarray(outcomes)
        counts = window_counts(arr, self._m, align=self._align)
        k = counts.size
        if k == 0:
            raise ValueError(
                f"history of {arr.size} transactions has no complete window "
                f"of size {self._m}"
            )
        n_considered = k * self._m
        p_hat = float(counts.sum()) / n_considered
        return FittedWindowModel(
            window_size=self._m,
            n_windows=k,
            n_considered=n_considered,
            p_hat=p_hat,
            counts=counts,
        )


def generate_honest_outcomes(
    n: int, p: float, *, seed: SeedLike = None
) -> np.ndarray:
    """Synthesize an honest player's history: ``n`` iid Bernoulli(p) outcomes.

    This is the generative counterpart of the model — used by experiments
    to fabricate preparation phases and honest-population baselines.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    rng = make_rng(seed)
    return (rng.random(n) < p).astype(np.int8)
