"""Per-server incremental behavior state — the serving fast path.

``assess()`` recomputes phase 1 from the whole history on every call;
at serving scale (the ROADMAP's millions of users) that re-pays the full
suffix-testing cost per feedback event.  :class:`IncrementalBehaviorState`
amortizes it:

* each new feedback folds into the server's transaction history in O(1)
  amortized;
* the recent-aligned window-count array is cached and *extended* rather
  than rebuilt whenever the new history length is congruent to the
  cached one modulo the window size (recent alignment pins window
  boundaries to ``n mod m``, so congruent lengths share them — the same
  invariant behind the paper's O(n) multi-testing optimization);
* verdicts are memoized by history length, so re-assessing an unchanged
  server is a dictionary lookup.

The fast path only applies to ``strategy="optimized"``
:class:`~repro.core.multi_testing.MultiBehaviorTest` — it reuses that
tester's own judging code (:func:`~repro.core.multi_testing.run_suffix_rounds`),
so verdicts are bit-identical.  Every other tester (naive multi,
collusion-resilient reordering that scrambles window boundaries per
suffix, categorized/temporal metadata tests, ...) takes the
exact-equivalence fallback: the tester itself is invoked on the full
history, with only the verdict memoization on top.  A collusion-style
invalidation (:meth:`invalidate`) sets a dirty flag that drops both
caches and forces a full recompute on the next verdict.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..feedback.history import TransactionHistory
from ..feedback.records import Feedback
from ..feedback.windows import window_counts
from ..obs import runtime as _obs
from .multi_testing import MultiBehaviorTest, run_suffix_rounds
from .verdict import BehaviorVerdict, MultiTestReport

__all__ = ["IncrementalBehaviorState"]


class IncrementalBehaviorState:
    """Incrementally maintained phase-1 state for one server.

    Parameters
    ----------
    tester:
        Any behavior test.  ``strategy="optimized"``
        :class:`MultiBehaviorTest` instances get the incremental
        window-count fast path; everything else falls back to invoking
        the tester directly (still memoized by history length).
    history:
        The server's transaction history.  May be a *live* history owned
        by a ledger — appends made elsewhere are detected by length, no
        explicit notification needed.  Omitting it creates a fresh
        standalone history.
    """

    def __init__(
        self,
        tester,
        history: Optional[TransactionHistory] = None,
    ):
        self._tester = tester
        self._history = history if history is not None else TransactionHistory()
        self._fast_multi = (
            isinstance(tester, MultiBehaviorTest) and tester.strategy == "optimized"
        )
        self._counts: Optional[np.ndarray] = None  # recent-aligned window counts
        self._counts_n = 0  # history length the cached counts describe
        self._cached: Optional[Tuple[int, BehaviorVerdict]] = None
        self._dirty = False
        self.n_folds = 0
        self.n_cache_hits = 0
        self.n_count_extensions = 0
        self.n_count_recomputes = 0

    # ------------------------------------------------------------------ #
    # state surface

    @property
    def tester(self):
        """The wrapped behavior test."""
        return self._tester

    @property
    def history(self) -> TransactionHistory:
        """The server's transaction history (live, shared with the owner)."""
        return self._history

    @property
    def incremental(self) -> bool:
        """True when the window-count fast path applies to this tester."""
        return self._fast_multi

    def __len__(self) -> int:
        return len(self._history)

    # ------------------------------------------------------------------ #
    # folding feedback

    def fold(self, outcome: int) -> None:
        """Fold one bare 0/1 outcome into the state (O(1) amortized)."""
        self._history.append_outcome(outcome)
        self.n_folds += 1

    def fold_feedback(self, feedback: Feedback) -> None:
        """Fold one feedback record into the state (O(1) amortized)."""
        self._history.append_feedback(feedback)
        self.n_folds += 1

    def invalidate(self) -> None:
        """Drop every cache; the next :meth:`verdict` recomputes in full.

        The collusion-reorder hook: issuer-grouped reordering scrambles
        window boundaries, so cached counts cannot be trusted after a
        reordering-relevant change (or any external mutation the length
        heuristic cannot see).
        """
        self._dirty = True

    # ------------------------------------------------------------------ #
    # external seeding (the vectorized cold-path kernel)

    def needs_phase1(self) -> bool:
        """True when the next :meth:`verdict` would recompute phase 1.

        The batched cold-path kernel
        (:func:`~repro.core.vectorized.fold_cold_batch`) uses this to
        collect the states worth folding in one vectorized pass.  Only
        fast-path testers qualify — fallback testers cannot consume a
        kernel seed.
        """
        if not self._fast_multi:
            return False
        if self._dirty:
            return True
        n = len(self._history)
        return self._cached is None or self._cached[0] != n

    def seed_phase1(
        self,
        verdict: BehaviorVerdict,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        """Install an externally computed phase-1 verdict for the
        *current* history length.

        ``verdict`` must equal what :meth:`verdict` would have computed
        (the vectorized kernel guarantees bit-parity); ``counts``, when
        given, seeds the recent-aligned window-count cache so later
        incremental folds extend instead of recomputing.
        """
        if self._dirty:
            self._counts = None
            self._counts_n = 0
            self._cached = None
            self._dirty = False
        n = len(self._history)
        if counts is not None:
            self._counts = counts
            self._counts_n = n
        self._cached = (n, verdict)
        if _obs.enabled:
            _obs.registry.inc("core.incremental.seeded_verdicts")

    # ------------------------------------------------------------------ #
    # verdicts

    def verdict(self) -> BehaviorVerdict:
        """The phase-1 verdict for the current history.

        Bit-identical to ``tester.test(history)``; cached until the
        history grows or :meth:`invalidate` is called.
        """
        if self._dirty:
            self._counts = None
            self._counts_n = 0
            self._cached = None
            self._dirty = False
        n = len(self._history)
        if self._cached is not None and self._cached[0] == n:
            self.n_cache_hits += 1
            if _obs.enabled:
                _obs.registry.inc("core.incremental.verdict_cache_hits")
            return self._cached[1]
        if self._fast_multi:
            verdict: BehaviorVerdict = self._multi_verdict(n)
        else:
            verdict = self._tester.test(self._history)
        self._cached = (n, verdict)
        if _obs.enabled:
            _obs.registry.inc(
                "core.incremental.verdicts",
                path="incremental" if self._fast_multi else "fallback",
            )
        return verdict

    def _multi_verdict(self, n: int) -> MultiTestReport:
        """Mirror ``MultiBehaviorTest._test`` over cached window counts."""
        tester = self._tester
        cfg = tester.config
        lengths = tester.suffix_lengths(n)
        if not lengths:
            verdict = BehaviorVerdict.insufficient_history(
                passed=(cfg.on_insufficient == "pass"),
                window_size=cfg.window_size,
                n_considered=n,
            )
            return MultiTestReport(passed=verdict.passed, rounds=((n, verdict),))
        self._update_counts(n, cfg.window_size)
        rounds = run_suffix_rounds(
            self._counts,
            lengths,
            window_size=cfg.window_size,
            distance_name=cfg.distance,
            calibrator=tester.calibrator,
            collect_all=tester.collect_all,
            obs_prefix="core.incremental",
        )
        passed = all(v.passed for _, v in rounds)
        ordered = tuple(sorted(rounds, key=lambda pair: -pair[0]))
        return MultiTestReport(passed=passed, rounds=ordered)

    def _update_counts(self, n: int, m: int) -> None:
        """Refresh the cached recent-aligned window counts for length ``n``.

        Recent alignment anchors window boundaries at offset ``n mod m``,
        so when the history grew by a whole number of windows the cached
        array is a prefix of the new one and only the new windows are
        summed (O(delta)); a residue mismatch moves every boundary and
        forces the vectorized full recompute (O(n/m)).
        """
        outcomes = self._history.outcomes()
        cached_n = self._counts_n
        if (
            self._counts is not None
            and n >= cached_n
            and n % m == cached_n % m
        ):
            if n > cached_n:
                new = window_counts(outcomes[cached_n:], m, align="recent")
                self._counts = np.concatenate([self._counts, new])
                self.n_count_extensions += 1
                if _obs.enabled:
                    _obs.registry.inc("core.incremental.count_extensions")
        else:
            self._counts = window_counts(outcomes, m, align="recent")
            self.n_count_recomputes += 1
            if _obs.enabled:
                _obs.registry.inc("core.incremental.count_recomputes")
        self._counts_n = n
