"""Batched vectorized phase-1 folds — the cold-path engine.

PR 4's incremental engine makes *warm* re-assessment cheap; the first
assessment of a server (or a whole cold fleet after a restart) still
pays a per-server Python walk through
:func:`~repro.core.multi_testing.run_suffix_rounds`.
:func:`fold_cold_batch` replaces that with whole-shard numpy passes over
the columnar layout: every history's window counts in one
:func:`~repro.feedback.windows.batched_window_counts` call, every suffix
round's histogram/distance as one row of a cumulative matrix, and the
calibrator consulted once per *unique* ``(k, good)`` round shape instead
of once per server.

Verdicts are bit-identical to the scalar path — the same integer sums,
the same float64 division order, the same
:func:`~repro.stats.binomial.binomial_pmf` calls — which the
equivalence suites assert verdict-for-verdict.  The kernel only
supports the configuration the fast path serves (``optimized``
:class:`~repro.core.multi_testing.MultiBehaviorTest` with the L1
distance); anything else raises so callers fall back to the scalar
path explicitly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..feedback.windows import batched_window_counts
from ..obs import runtime as _obs
from ..stats.binomial import binomial_pmf_many
from .multi_testing import MultiBehaviorTest
from .verdict import BehaviorVerdict, MultiTestReport

__all__ = ["fold_cold_batch", "supports_vectorized"]

#: Cap on windows held in the cumulative one-hot matrix at once; bounds
#: peak memory at roughly ``chunk * (m + 2) * 16`` bytes.
_CHUNK_WINDOWS = 1_000_000


def supports_vectorized(tester) -> bool:
    """Whether ``tester`` is a configuration the kernel reproduces."""
    return (
        isinstance(tester, MultiBehaviorTest)
        and tester.strategy == "optimized"
        and tester.config.distance == "l1"
    )


def fold_cold_batch(
    histories: Sequence[np.ndarray], tester: MultiBehaviorTest
) -> List[Tuple[MultiTestReport, Optional[np.ndarray]]]:
    """Phase-1 multi-test verdicts for many histories in one pass.

    ``histories`` is a sequence of 1-D 0/1 outcome arrays (oldest
    first).  Returns, per history and in order, ``(report, counts)``
    where ``report`` equals ``tester.test(history)`` bit-for-bit and
    ``counts`` is the recent-aligned window-count array the verdict was
    computed from (``None`` for insufficient histories) — ready to seed
    an :class:`~repro.core.incremental.IncrementalBehaviorState`.
    """
    if not supports_vectorized(tester):
        raise ValueError(
            "fold_cold_batch requires an optimized MultiBehaviorTest with "
            "the l1 distance; use the scalar path for other testers"
        )
    cfg = tester.config
    m = cfg.window_size
    floor = cfg.min_transactions
    insufficient_passed = cfg.on_insufficient == "pass"

    results: List[Optional[Tuple[MultiTestReport, Optional[np.ndarray]]]] = [
        None
    ] * len(histories)
    lengths = np.array([int(np.asarray(h).size) for h in histories], dtype=np.int64)

    # short histories never enter the vectorized pass
    for i in np.nonzero(lengths < floor)[0]:
        verdict = BehaviorVerdict.insufficient_history(
            passed=insufficient_passed,
            window_size=m,
            n_considered=int(lengths[i]),
        )
        results[i] = (
            MultiTestReport(
                passed=verdict.passed, rounds=((int(lengths[i]), verdict),)
            ),
            None,
        )

    eligible = np.nonzero(lengths >= floor)[0]
    if eligible.size:
        with _obs.timer("core.vectorized.seconds"):
            _fold_eligible(
                histories, lengths, eligible, tester, results
            )
        if _obs.enabled:
            _obs.registry.inc("core.vectorized.batches")
            _obs.registry.inc("core.vectorized.servers", int(eligible.size))
    return results  # type: ignore[return-value]


def _fold_eligible(
    histories: Sequence[np.ndarray],
    lengths: np.ndarray,
    eligible: np.ndarray,
    tester: MultiBehaviorTest,
    results: List,
) -> None:
    cfg = tester.config
    m = cfg.window_size
    ks = lengths[eligible] // m
    # One threshold memo across chunks: the calibrator consults one
    # shared rng stream, so repeat (k, p_key) shapes must not re-enter it.
    thr_memo: dict = {}
    # chunk eligible servers so the cumulative matrices stay bounded
    start = 0
    while start < eligible.size:
        end = start + 1
        windows = int(ks[start])
        while end < eligible.size and windows + int(ks[end]) <= _CHUNK_WINDOWS:
            windows += int(ks[end])
            end += 1
        _fold_chunk(
            histories, lengths, eligible[start:end], tester, results, thr_memo
        )
        start = end


def _fold_chunk(
    histories: Sequence[np.ndarray],
    lengths: np.ndarray,
    chunk: np.ndarray,
    tester: MultiBehaviorTest,
    results: List,
    thr_memo: dict,
) -> None:
    cfg = tester.config
    m = cfg.window_size
    floor = cfg.min_transactions
    step = cfg.multi_step
    calibrator = tester.calibrator
    collect_all = tester.collect_all
    n_srv = int(chunk.size)

    # ---- window counts for the whole chunk in one vectorized pass ----
    n = lengths[chunk]
    offsets = np.zeros(n_srv + 1, dtype=np.int64)
    np.cumsum(n, out=offsets[1:])
    flat = np.empty(int(offsets[-1]), dtype=np.int64)
    for i, idx in enumerate(chunk):
        flat[offsets[i] : offsets[i + 1]] = np.asarray(histories[idx])
    counts_flat = batched_window_counts(flat, offsets, m)
    ks = n // m
    co = np.zeros(n_srv + 1, dtype=np.int64)  # per-server window offsets
    np.cumsum(ks, out=co[1:])
    total_k = int(co[-1])

    # ---- cumulative per-value one-hot and cumulative good counts ----
    # CS[b] - CS[a] = histogram of counts_flat[a:b]; CG likewise for the
    # total good transactions.  Integer cumsums keep every value exact
    # (int32 suffices: a chunk holds at most _CHUNK_WINDOWS windows).
    onehot = np.zeros((total_k + 1, m + 1), dtype=np.int32)
    onehot[np.arange(1, total_k + 1), counts_flat] = 1
    cs = np.cumsum(onehot, axis=0)
    cg = np.zeros(total_k + 1, dtype=np.int64)
    np.cumsum(counts_flat, out=cg[1:])

    # ---- flat round enumeration: (server, ascending suffix index) ----
    rounds_per_srv = (n - floor) // step + 1
    total_rounds = int(rounds_per_srv.sum())
    srv = np.repeat(np.arange(n_srv), rounds_per_srv)
    round_starts = np.zeros(n_srv, dtype=np.int64)
    np.cumsum(rounds_per_srv[:-1], out=round_starts[1:])
    j = np.arange(total_rounds, dtype=np.int64) - np.repeat(round_starts, rounds_per_srv)
    suffix_len = n[srv] - (rounds_per_srv[srv] - 1 - j) * step
    wants = suffix_len // m

    # ---- per-round histogram rows, p_hat, distances ----
    ends = co[srv + 1]
    hist = (cs[ends] - cs[ends - wants]).astype(np.float64)
    good = cg[ends] - cg[ends - wants]
    observed = hist / wants[:, None].astype(np.float64)
    p_hat = good.astype(np.float64) / (wants * m).astype(np.float64)
    uniq_p, inv_p = np.unique(p_hat, return_inverse=True)
    expected = binomial_pmf_many(m, uniq_p)
    distances = np.abs(observed - expected[inv_p]).sum(axis=1)

    # ---- per-server walk replicating run_suffix_rounds bit-for-bit ----
    # Thresholds are consulted lazily *inside* the walk, in exactly the
    # order the scalar path consults them (ascending suffixes, stopping
    # at the first failure): the calibrator draws its Monte-Carlo sets
    # from one shared rng stream, so the sequence of calibration cache
    # misses — not just the set of keys — is part of the bit-parity
    # contract.  ``thr_memo`` only short-circuits repeat shapes; the
    # first consultation per (k, p_key) still goes through the
    # calibrator, exactly as the scalar walk's first miss would.
    # Plain-python lists throughout: the walk touches every round once
    # and numpy scalar indexing would dominate it.
    pk_uniq = [calibrator.quantize_p(float(p)) for p in uniq_p.tolist()]
    inv_l = inv_p.tolist()
    wants_l = wants.tolist()
    suffix_l = suffix_len.tolist()
    dist_l = distances.tolist()
    p_l = p_hat.tolist()
    starts_l = round_starts.tolist()
    nrounds_l = rounds_per_srv.tolist()
    co_l = co.tolist()
    chunk_l = chunk.tolist()
    n_thr_calls = 0
    for s in range(n_srv):
        base = starts_l[s]
        rounds: List[Tuple[int, BehaviorVerdict]] = []
        last_want = -1
        verdict: Optional[BehaviorVerdict] = None
        decisive: Optional[BehaviorVerdict] = None
        failed = False
        for r in range(base, base + nrounds_l[s]):
            w = wants_l[r]
            if w != last_want:
                key = (w, pk_uniq[inv_l[r]])
                thr = thr_memo.get(key)
                if thr is None:
                    thr = calibrator.threshold(m, w, p_l[r])
                    thr_memo[key] = thr
                    n_thr_calls += 1
                d = dist_l[r]
                verdict = BehaviorVerdict(d <= thr, d, thr, p_l[r], w, m, w * m)
                last_want = w
            rounds.append((suffix_l[r], verdict))
            if not verdict.passed:
                # decisive = the first failing round in report (longest-
                # first) order, i.e. the *last* failure of this ascending
                # walk; without collect_all the walk stops right here,
                # exactly like run_suffix_rounds
                failed = True
                decisive = verdict
                if not collect_all:
                    break
        rounds.reverse()  # ascending walk -> longest-suffix-first report
        if not failed:
            decisive = verdict  # all passed: the full-history round
        report = MultiTestReport(
            not failed,
            decisive.distance,
            decisive.threshold,
            decisive.p_hat,
            decisive.n_windows,
            m,
            decisive.n_considered,
            False,
            tuple(rounds),
            None,
        )
        results[chunk_l[s]] = (
            report,
            counts_flat[co_l[s] : co_l[s + 1]].copy(),
        )
    if _obs.enabled:
        _obs.registry.inc("core.vectorized.rounds", total_rounds)
        _obs.registry.inc("core.vectorized.threshold_calls", n_thr_calls)
