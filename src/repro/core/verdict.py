"""Result objects returned by the behavior tests and the two-phase assessor.

One frozen :class:`BehaviorVerdict` dataclass is the unified phase-1
result type: every tester (single, multi, collusion-resilient,
categorized, segmented, temporal, multinomial) returns a
``BehaviorVerdict`` — composite testers return a subclass that carries
its per-round verdicts in the shared ``rounds`` field while presenting
the same aggregate surface (``passed``, ``distance``, ``epsilon``,
``margin``) as a plain single-test verdict.  Collusion-resilient tests
additionally attach a :class:`ReorderTrace` describing the
issuer-grouped reordering their verdict was computed on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple, Union

__all__ = [
    "ReorderTrace",
    "BehaviorVerdict",
    "MultiTestReport",
    "AssessmentStatus",
    "Assessment",
]

#: Key of one composite-test round: a suffix length (multi-testing), a
#: category / bucket name (categorized, temporal), or a segment start.
RoundKey = Union[int, str]

#: Largest number of issuer groups a ReorderTrace enumerates — supporter
#: bases reach thousands of clients, the verdict must stay lightweight.
_REORDER_TOP = 32


@dataclass(frozen=True)
class ReorderTrace:
    """Provenance of the issuer-grouped reordering Q -> Q' (Sec. 4).

    ``group_sizes`` lists feedback-group sizes in the reordered
    (descending) order, truncated to the largest ``_REORDER_TOP`` groups
    when the supporter base is large.
    """

    n_feedbacks: int
    n_groups: int
    group_sizes: Tuple[int, ...]
    truncated: bool = False

    @classmethod
    def from_feedbacks(cls, feedbacks) -> "ReorderTrace":
        """Summarize the issuer grouping of a feedback sequence."""
        sizes = {}
        for fb in feedbacks:
            sizes[fb.client] = sizes.get(fb.client, 0) + 1
        ordered = sorted(sizes.values(), reverse=True)
        return cls(
            n_feedbacks=len(feedbacks),
            n_groups=len(ordered),
            group_sizes=tuple(ordered[:_REORDER_TOP]),
            truncated=len(ordered) > _REORDER_TOP,
        )


@dataclass(frozen=True)
class BehaviorVerdict:
    """Outcome of one behavior test — the unified phase-1 result.

    For a plain single test the numeric fields describe that one
    distribution-distance comparison.  Composite testers populate
    ``rounds`` with their per-round verdicts and surface the *decisive*
    round's numbers (the first failing round, or the primary round when
    all passed) in the aggregate fields, so ``verdict.distance`` and
    ``verdict.epsilon`` always answer "which comparison decided this".

    ``insufficient`` marks histories too short to judge; in that case
    ``passed`` reflects the configured ``on_insufficient`` policy and the
    numeric fields are zero.  ``reorder`` carries the issuer-grouped
    reordering trace when the verdict was computed on a collusion-
    resilient reordering of the history.
    """

    passed: bool
    distance: float = 0.0
    threshold: float = 0.0
    p_hat: float = 0.0
    n_windows: int = 0
    window_size: int = 0
    n_considered: int = 0
    insufficient: bool = False
    rounds: Tuple[Tuple[RoundKey, "BehaviorVerdict"], ...] = ()
    reorder: Optional[ReorderTrace] = None

    @property
    def margin(self) -> float:
        """``threshold - distance``; negative means the test failed."""
        return self.threshold - self.distance

    @property
    def epsilon(self) -> float:
        """The calibrated distance threshold ε (alias of ``threshold``)."""
        return self.threshold

    @property
    def n_rounds(self) -> int:
        """Number of composite rounds (0 for a plain single-test verdict)."""
        return len(self.rounds)

    @property
    def first_failure(self) -> Optional[Tuple[RoundKey, "BehaviorVerdict"]]:
        """The first failing round in report order, if any."""
        for key, verdict in self.rounds:
            if not verdict.passed:
                return (key, verdict)
        return None

    @property
    def worst_margin(self) -> float:
        """Smallest ``threshold - distance`` across judged rounds.

        For a plain verdict (no rounds) this is its own :attr:`margin`;
        rounds marked insufficient are skipped, and a report whose every
        round is insufficient has nothing to rank — ``inf``.
        """
        if not self.rounds:
            return float("inf") if self.insufficient else self.margin
        margins = [v.margin for _, v in self.rounds if not v.insufficient]
        return min(margins) if margins else float("inf")

    @classmethod
    def insufficient_history(
        cls, *, passed: bool, window_size: int, n_considered: int
    ) -> "BehaviorVerdict":
        """The verdict for a history too short to judge."""
        return cls(
            passed=passed,
            distance=0.0,
            threshold=0.0,
            p_hat=0.0,
            n_windows=0,
            window_size=window_size,
            n_considered=n_considered,
            insufficient=True,
        )

    def _decisive_round(self) -> Optional["BehaviorVerdict"]:
        """The round whose numbers summarize a composite verdict."""
        if not self.rounds:
            return None
        failure = self.first_failure
        if failure is not None:
            return failure[1]
        for _, verdict in self.rounds:
            if not verdict.insufficient:
                return verdict
        return self.rounds[0][1]

    def _fill_aggregates_from_rounds(self) -> None:
        """Copy the decisive round's numbers into defaulted aggregate fields.

        Called from composite-report ``__post_init__``; uses
        ``object.__setattr__`` because the dataclass is frozen.
        """
        decisive = self._decisive_round()
        if decisive is None:
            return
        untouched = (
            self.distance == 0.0
            and self.threshold == 0.0
            and self.p_hat == 0.0
            and self.n_windows == 0
        )
        if untouched:
            for name in (
                "distance",
                "threshold",
                "p_hat",
                "n_windows",
                "window_size",
                "n_considered",
            ):
                object.__setattr__(self, name, getattr(decisive, name))
        if not self.insufficient and all(v.insufficient for _, v in self.rounds):
            object.__setattr__(self, "insufficient", True)


@dataclass(frozen=True)
class MultiTestReport(BehaviorVerdict):
    """Outcome of multi-testing: one verdict per suffix length.

    ``rounds`` holds ``(suffix_length, verdict)`` pairs ordered from the
    longest suffix (the full history) to the shortest tested; ``passed``
    is True iff every round passed (any failure indicates a potentially
    suspicious server, Sec. 3.3).  The aggregate fields inherited from
    :class:`BehaviorVerdict` describe the decisive round.
    """

    def __post_init__(self) -> None:
        if self.n_windows or self.distance or self.threshold or self.p_hat:
            # The constructor supplied the decisive round's aggregates
            # directly (the vectorized cold-path kernel does, to avoid
            # re-deriving them per report); nothing to fill.
            return
        self._fill_aggregates_from_rounds()


class AssessmentStatus(Enum):
    """Terminal states of the two-phase assessment (Fig. 2)."""

    #: behavior test failed — "Destination peer is suspicious"
    SUSPICIOUS = "suspicious"
    #: behavior test passed and the trust value meets the client threshold
    TRUSTED = "trusted"
    #: behavior test passed but trust value is below the client threshold
    UNTRUSTED = "untrusted"


@dataclass(frozen=True)
class Assessment:
    """Full two-phase result handed back to the client.

    ``degraded`` marks an answer produced on a recovery path (e.g. a
    stale calibration threshold after the Monte-Carlo pass failed
    mid-assessment): still a usable verdict, but one the operator may
    want to re-derive once the fault clears.
    """

    status: AssessmentStatus
    trust_value: Optional[float]
    behavior: Optional[BehaviorVerdict]
    server: str = field(default="server")
    degraded: bool = field(default=False, compare=True)

    @property
    def accepted(self) -> bool:
        """Would a client with the configured threshold transact?"""
        return self.status is AssessmentStatus.TRUSTED

    @property
    def suspicious(self) -> bool:
        return self.status is AssessmentStatus.SUSPICIOUS
