"""Result objects returned by the behavior tests and the two-phase assessor."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

__all__ = [
    "BehaviorVerdict",
    "MultiTestReport",
    "AssessmentStatus",
    "Assessment",
]


@dataclass(frozen=True)
class BehaviorVerdict:
    """Outcome of one distribution-distance behavior test.

    ``insufficient`` marks histories too short to judge; in that case
    ``passed`` reflects the configured ``on_insufficient`` policy and the
    numeric fields are zero.
    """

    passed: bool
    distance: float
    threshold: float
    p_hat: float
    n_windows: int
    window_size: int
    n_considered: int
    insufficient: bool = False

    @property
    def margin(self) -> float:
        """``threshold - distance``; negative means the test failed."""
        return self.threshold - self.distance

    @classmethod
    def insufficient_history(
        cls, *, passed: bool, window_size: int, n_considered: int
    ) -> "BehaviorVerdict":
        return cls(
            passed=passed,
            distance=0.0,
            threshold=0.0,
            p_hat=0.0,
            n_windows=0,
            window_size=window_size,
            n_considered=n_considered,
            insufficient=True,
        )


@dataclass(frozen=True)
class MultiTestReport:
    """Outcome of multi-testing: one verdict per suffix length.

    ``rounds`` holds ``(suffix_length, verdict)`` pairs ordered from the
    longest suffix (the full history) to the shortest tested; ``passed``
    is True iff every round passed (any failure indicates a potentially
    suspicious server, Sec. 3.3).
    """

    passed: bool
    rounds: Tuple[Tuple[int, BehaviorVerdict], ...]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def first_failure(self) -> Optional[Tuple[int, BehaviorVerdict]]:
        """The longest-suffix round that failed, if any."""
        for length, verdict in self.rounds:
            if not verdict.passed:
                return (length, verdict)
        return None

    @property
    def worst_margin(self) -> float:
        """Smallest ``threshold - distance`` across judged rounds."""
        margins = [
            v.margin for _, v in self.rounds if not v.insufficient
        ]
        return min(margins) if margins else float("inf")


class AssessmentStatus(Enum):
    """Terminal states of the two-phase assessment (Fig. 2)."""

    #: behavior test failed — "Destination peer is suspicious"
    SUSPICIOUS = "suspicious"
    #: behavior test passed and the trust value meets the client threshold
    TRUSTED = "trusted"
    #: behavior test passed but trust value is below the client threshold
    UNTRUSTED = "untrusted"


@dataclass(frozen=True)
class Assessment:
    """Full two-phase result handed back to the client."""

    status: AssessmentStatus
    trust_value: Optional[float]
    behavior: object  # BehaviorVerdict or MultiTestReport
    server: str = field(default="server")

    @property
    def accepted(self) -> bool:
        """Would a client with the configured threshold transact?"""
        return self.status is AssessmentStatus.TRUSTED

    @property
    def suspicious(self) -> bool:
        return self.status is AssessmentStatus.SUSPICIOUS
