"""The two-phase trust assessment framework (Fig. 1 / Fig. 2).

Phase 1 screens the server's transaction history against the
honest-player model; only when it passes is a conventional trust function
applied (phase 2).  A failing phase 1 raises the "destination peer is
suspicious" alert and short-circuits — the trust value of an entity whose
history the model cannot explain is meaningless.

Any behavior test exposing ``test(history) -> verdict-with-.passed``
works as phase 1 (single, multi, collusion-resilient, categorized,
multinomial); any :class:`~repro.trust.base.TrustFunction` or
:class:`~repro.trust.base.LedgerTrustFunction` works as phase 2.
"""

from __future__ import annotations

from typing import Optional, Protocol, Union

from ..feedback.history import TransactionHistory
from ..feedback.ledger import FeedbackLedger
from ..obs import audit as _audit
from ..obs import runtime as _obs
from ..trust.base import LedgerTrustFunction, TrustFunction
from .verdict import Assessment, AssessmentStatus

__all__ = ["BehaviorTestProtocol", "TwoPhaseAssessor"]


class BehaviorTestProtocol(Protocol):
    """Anything usable as phase 1."""

    def test(self, history):  # pragma: no cover - structural type only
        """Judge a history; the result must expose a boolean ``passed``."""
        ...


class TwoPhaseAssessor:
    """Behavior screening composed with a trust function.

    Parameters
    ----------
    behavior_test:
        Phase-1 screen; ``None`` disables screening (reduces the assessor
        to the bare trust function — the comparison baseline in all the
        paper's experiments).
    trust_function:
        Phase-2 trust computation (history-based or ledger-based).
    trust_threshold:
        The client's acceptance threshold over trust values (paper: 0.9).
    """

    def __init__(
        self,
        behavior_test: Optional[BehaviorTestProtocol],
        trust_function: Union[TrustFunction, LedgerTrustFunction],
        trust_threshold: float = 0.9,
    ):
        if not 0.0 <= trust_threshold <= 1.0:
            raise ValueError(
                f"trust_threshold must lie in [0, 1], got {trust_threshold}"
            )
        self._behavior_test = behavior_test
        self._trust_function = trust_function
        self._threshold = trust_threshold

    @property
    def trust_threshold(self) -> float:
        return self._threshold

    @property
    def behavior_test(self) -> Optional[BehaviorTestProtocol]:
        return self._behavior_test

    @property
    def trust_function(self):
        return self._trust_function

    def assess(
        self,
        history: TransactionHistory,
        *,
        ledger: Optional[FeedbackLedger] = None,
    ) -> Assessment:
        """Run both phases on a server's history.

        ``ledger`` is required when phase 2 is a ledger-based scheme
        (PeerTrust, EigenTrust).
        """
        if _audit.enabled:
            # One decision scope per assessment: the nested behavior-test
            # record and this assessment record are sampled together and
            # share the server identity.
            with _audit.trail.decision_scope(server=history.server):
                assessment = self._assess(history, ledger)
                if _audit.trail.want_record():
                    self._emit_audit(assessment)
                return assessment
        return self._assess(history, ledger)

    def _assess(
        self, history: TransactionHistory, ledger: Optional[FeedbackLedger]
    ) -> Assessment:
        behavior = None
        if _obs.enabled:
            _obs.registry.inc("core.two_phase.assessments")
        if self._behavior_test is not None:
            with _obs.timer("core.two_phase.phase1_seconds"):
                behavior = self._behavior_test.test(history)
            if not behavior.passed:
                if _obs.enabled:
                    _obs.registry.inc("core.two_phase.phase1_rejections")
                    _obs.registry.inc("core.two_phase.status", status="suspicious")
                return Assessment(
                    status=AssessmentStatus.SUSPICIOUS,
                    trust_value=None,
                    behavior=behavior,
                    server=history.server,
                )
        with _obs.timer("core.two_phase.phase2_seconds"):
            trust_value = self._trust_value(history, ledger)
        status = (
            AssessmentStatus.TRUSTED
            if trust_value >= self._threshold
            else AssessmentStatus.UNTRUSTED
        )
        if _obs.enabled:
            _obs.registry.inc("core.two_phase.phase2_assessments")
            _obs.registry.inc("core.two_phase.status", status=status.value)
        return Assessment(
            status=status,
            trust_value=trust_value,
            behavior=behavior,
            server=history.server,
        )

    def _emit_audit(self, assessment: Assessment) -> None:
        """Phase-2 score provenance: who scored, what value, which gate."""
        trail = _audit.trail
        # The behavior test emitted its record inside this scope just
        # before; summarize it rather than duplicating the rounds.
        behavior_record = None
        if trail.records:
            last = trail.records[-1]
            if (
                last.get("kind") == "behavior_test"
                and last.get("server") == assessment.server
            ):
                behavior_record = last
        provenance = getattr(self._trust_function, "provenance", None)
        trust_name = (
            provenance()["name"]
            if callable(provenance)
            else type(self._trust_function).__name__
        )
        trail.emit(
            _audit.assessment_record(
                server=assessment.server,
                status=assessment.status.value,
                trust_value=assessment.trust_value,
                trust_threshold=self._threshold,
                trust_function=trust_name,
                behavior_record=behavior_record,
            )
        )

    def _trust_value(
        self, history: TransactionHistory, ledger: Optional[FeedbackLedger]
    ) -> float:
        if isinstance(self._trust_function, LedgerTrustFunction):
            if ledger is None:
                raise ValueError(
                    f"{type(self._trust_function).__name__} needs the system "
                    "ledger; pass ledger=..."
                )
            return self._trust_function.score_server(history.server, ledger)
        return self._trust_function.score(history)
