"""The two-phase trust assessment framework (Fig. 1 / Fig. 2).

Phase 1 screens the server's transaction history against the
honest-player model; only when it passes is a conventional trust function
applied (phase 2).  A failing phase 1 raises the "destination peer is
suspicious" alert and short-circuits — the trust value of an entity whose
history the model cannot explain is meaningless.

Any behavior test exposing ``test(history) -> verdict-with-.passed``
works as phase 1 (single, multi, collusion-resilient, categorized,
multinomial); any :class:`~repro.trust.base.TrustFunction` or
:class:`~repro.trust.base.LedgerTrustFunction` works as phase 2.
"""

from __future__ import annotations

import warnings
from typing import Optional, Protocol, Union

from ..feedback.history import TransactionHistory
from ..feedback.ledger import FeedbackLedger
from ..obs import audit as _audit
from ..obs import runtime as _obs
from ..trust.base import LedgerTrustFunction, TrustFunction
from .config import AssessorConfig
from .verdict import Assessment, AssessmentStatus, BehaviorVerdict

__all__ = ["BehaviorTestProtocol", "TwoPhaseAssessor", "Assessor"]

_UNSET = object()
_CTOR_PARAMS = ("behavior_test", "trust_function", "trust_threshold")


class BehaviorTestProtocol(Protocol):
    """Anything usable as phase 1."""

    def test(self, history) -> BehaviorVerdict:  # pragma: no cover - structural
        """Judge a history, returning the unified phase-1 verdict."""
        ...


class TwoPhaseAssessor:
    """Behavior screening composed with a trust function.

    Parameters are keyword-only (``behavior_test=``, ``trust_function=``,
    ``trust_threshold=``); positional construction still works for one
    release behind a :class:`DeprecationWarning`.  Prefer
    :meth:`from_config` when both phases are registry names.

    Parameters
    ----------
    behavior_test:
        Phase-1 screen; ``None`` disables screening (reduces the assessor
        to the bare trust function — the comparison baseline in all the
        paper's experiments).
    trust_function:
        Phase-2 trust computation (history-based or ledger-based).
    trust_threshold:
        The client's acceptance threshold over trust values (paper: 0.9).
    """

    def __init__(
        self,
        *args,
        behavior_test: Optional[BehaviorTestProtocol] = _UNSET,
        trust_function: Union[TrustFunction, LedgerTrustFunction] = _UNSET,
        trust_threshold: float = _UNSET,
    ):
        if args:
            # One release of compatibility: map the legacy positional form
            # onto the keyword parameters, warning exactly once per call.
            warnings.warn(
                "positional TwoPhaseAssessor(behavior_test, trust_function, "
                "trust_threshold) construction is deprecated; pass keyword "
                "arguments or use TwoPhaseAssessor.from_config(AssessorConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > len(_CTOR_PARAMS):
                raise TypeError(
                    f"TwoPhaseAssessor takes at most {len(_CTOR_PARAMS)} "
                    f"positional arguments, got {len(args)}"
                )
            keyword_values = (behavior_test, trust_function, trust_threshold)
            for name, positional, keyword in zip(_CTOR_PARAMS, args, keyword_values):
                if keyword is not _UNSET:
                    raise TypeError(
                        f"TwoPhaseAssessor got multiple values for {name!r}"
                    )
            behavior_test, trust_function, trust_threshold = (
                args[i] if i < len(args) else keyword_values[i]
                for i in range(len(_CTOR_PARAMS))
            )
        if trust_function is _UNSET:
            raise TypeError("TwoPhaseAssessor requires trust_function=...")
        if behavior_test is _UNSET:
            behavior_test = None
        if trust_threshold is _UNSET:
            trust_threshold = 0.9
        if not 0.0 <= trust_threshold <= 1.0:
            raise ValueError(
                f"trust_threshold must lie in [0, 1], got {trust_threshold}"
            )
        self._behavior_test = behavior_test
        self._trust_function = trust_function
        self._threshold = trust_threshold

    @classmethod
    def from_config(
        cls,
        config: AssessorConfig,
        *,
        calibrator=None,
    ) -> "TwoPhaseAssessor":
        """Build an assessor from a declarative :class:`AssessorConfig`.

        Both phases are resolved through their registries (aliases
        accepted); ``calibrator`` optionally shares one ε-threshold
        calibrator across assessors built from related configs.
        """
        from ..trust.registry import make_trust_function
        from .registry import make_behavior_test

        behavior = make_behavior_test(
            config.behavior_test,
            config=config.test_config,
            calibrator=calibrator,
            **config.behavior_kwargs,
        )
        trust = make_trust_function(config.trust_function, **config.trust_kwargs)
        return cls(
            behavior_test=behavior,
            trust_function=trust,
            trust_threshold=config.trust_threshold,
        )

    @property
    def trust_threshold(self) -> float:
        return self._threshold

    @property
    def behavior_test(self) -> Optional[BehaviorTestProtocol]:
        return self._behavior_test

    @property
    def trust_function(self):
        return self._trust_function

    def assess(
        self,
        history: TransactionHistory,
        *,
        ledger: Optional[FeedbackLedger] = None,
    ) -> Assessment:
        """Run both phases on a server's history.

        ``ledger`` is required when phase 2 is a ledger-based scheme
        (PeerTrust, EigenTrust).
        """
        if _audit.enabled:
            # One decision scope per assessment: the nested behavior-test
            # record and this assessment record are sampled together and
            # share the server identity.
            with _audit.trail.decision_scope(server=history.server):
                assessment = self._assess(history, ledger)
                if _audit.trail.want_record():
                    self._emit_audit(assessment)
                return assessment
        return self._assess(history, ledger)

    def _assess(
        self, history: TransactionHistory, ledger: Optional[FeedbackLedger]
    ) -> Assessment:
        behavior = None
        if _obs.enabled:
            _obs.registry.inc("core.two_phase.assessments")
        if self._behavior_test is not None:
            with _obs.timer("core.two_phase.phase1_seconds"):
                behavior = self._behavior_test.test(history)
            if not behavior.passed:
                if _obs.enabled:
                    _obs.registry.inc("core.two_phase.phase1_rejections")
                    _obs.registry.inc("core.two_phase.status", status="suspicious")
                return Assessment(
                    status=AssessmentStatus.SUSPICIOUS,
                    trust_value=None,
                    behavior=behavior,
                    server=history.server,
                )
        with _obs.timer("core.two_phase.phase2_seconds"):
            trust_value = self._trust_value(history, ledger)
        status = (
            AssessmentStatus.TRUSTED
            if trust_value >= self._threshold
            else AssessmentStatus.UNTRUSTED
        )
        if _obs.enabled:
            _obs.registry.inc("core.two_phase.phase2_assessments")
            _obs.registry.inc("core.two_phase.status", status=status.value)
        return Assessment(
            status=status,
            trust_value=trust_value,
            behavior=behavior,
            server=history.server,
        )

    def _emit_audit(self, assessment: Assessment) -> None:
        """Phase-2 score provenance: who scored, what value, which gate."""
        trail = _audit.trail
        # The behavior test emitted its record inside this scope just
        # before; summarize it rather than duplicating the rounds.
        behavior_record = None
        if trail.records:
            last = trail.records[-1]
            if (
                last.get("kind") == "behavior_test"
                and last.get("server") == assessment.server
            ):
                behavior_record = last
        provenance = getattr(self._trust_function, "provenance", None)
        trust_name = (
            provenance()["name"]
            if callable(provenance)
            else type(self._trust_function).__name__
        )
        trail.emit(
            _audit.assessment_record(
                server=assessment.server,
                status=assessment.status.value,
                trust_value=assessment.trust_value,
                trust_threshold=self._threshold,
                trust_function=trust_name,
                behavior_record=behavior_record,
            )
        )

    def trust_value(
        self,
        history: TransactionHistory,
        *,
        ledger: Optional[FeedbackLedger] = None,
    ) -> float:
        """Phase 2 alone: the trust value without behavior screening.

        The serving engine composes this with independently cached
        phase-1 verdicts; ``ledger`` is required for ledger-based
        schemes, exactly as in :meth:`assess`.
        """
        return self._trust_value(history, ledger)

    def _trust_value(
        self, history: TransactionHistory, ledger: Optional[FeedbackLedger]
    ) -> float:
        if isinstance(self._trust_function, LedgerTrustFunction):
            if ledger is None:
                raise ValueError(
                    f"{type(self._trust_function).__name__} needs the system "
                    "ledger; pass ledger=..."
                )
            return self._trust_function.score_server(history.server, ledger)
        return self._trust_function.score(history)


#: Short name for the unified assessment API; ``Assessor.from_config``
#: is the preferred spelling in new code.
Assessor = TwoPhaseAssessor
