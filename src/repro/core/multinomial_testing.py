"""Multi-valued-feedback behavior testing (Sec. 3.1 extension).

When ratings take values from a categorical domain (e.g. positive /
neutral / negative), the honest-player window model generalizes from a
binomial to a multinomial: a window of ``m`` transactions yields a
category-count vector ``~ Multinomial(m, p)``.

Testing the full joint distribution is data-hungry, so — following the
paper's "build a statistical model for each dimension" suggestion — we
test each category's *marginal* window-count distribution, which under
the model is ``B(m, p_j)`` with ``p_j`` the category's estimated rate.
To keep the overall confidence near the configured level despite testing
``c`` marginals, each marginal is calibrated at the Šidák-corrected
confidence ``confidence ** (1 / c)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..stats.binomial import binomial_pmf
from ..stats.distances import get_distance
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .verdict import BehaviorVerdict

__all__ = ["MultinomialReport", "MultinomialBehaviorTest"]


@dataclass(frozen=True)
class MultinomialReport(BehaviorVerdict):
    """Per-category marginal verdicts plus the aggregate decision.

    As a :class:`BehaviorVerdict`, the marginal verdicts are mirrored
    into ``rounds`` (keyed by category index) and the aggregate numeric
    fields describe the decisive marginal.
    """

    by_category: Tuple[BehaviorVerdict, ...] = ()
    n_categories: int = 0

    def __post_init__(self) -> None:
        if self.by_category and not self.rounds:
            object.__setattr__(
                self, "rounds", tuple(enumerate(self.by_category))
            )
        self._fill_aggregates_from_rounds()


class MultinomialBehaviorTest:
    """Windowed marginal-binomial test for categorical ratings.

    Input is a 1-D sequence of category indices in ``0..n_categories-1``
    (time order).  ``n_categories`` fixes the rating domain — it cannot
    be inferred from data because a category may legitimately never occur.
    """

    name = "multinomial"

    def __init__(
        self,
        n_categories: int,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
    ):
        if n_categories < 2:
            raise ValueError(f"need at least 2 categories, got {n_categories}")
        self._c = n_categories
        self._config = config
        self._distance = get_distance(config.distance)
        # Šidák correction so the family-wise confidence stays near target.
        per_category_confidence = config.confidence ** (1.0 / n_categories)
        self._calibrator = calibrator or ThresholdCalibrator(
            confidence=per_category_confidence,
            n_sets=config.calibration_sets,
            distance=config.distance,
            p_quantum=config.p_quantum,
        )

    @property
    def n_categories(self) -> int:
        return self._c

    @property
    def config(self) -> BehaviorTestConfig:
        return self._config

    def test(self, ratings: Sequence[int]) -> MultinomialReport:
        """Judge a categorical rating sequence via its per-category marginals."""
        arr = np.asarray(ratings, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("ratings must be a 1-D sequence of category indices")
        if arr.size and (arr.min() < 0 or arr.max() >= self._c):
            raise ValueError(f"category indices must lie in [0, {self._c - 1}]")
        cfg = self._config
        m = cfg.window_size
        if arr.size < cfg.min_transactions:
            verdict = BehaviorVerdict.insufficient_history(
                passed=(cfg.on_insufficient == "pass"),
                window_size=m,
                n_considered=int(arr.size),
            )
            return MultinomialReport(
                passed=verdict.passed,
                by_category=(verdict,) * self._c,
                n_categories=self._c,
                insufficient=True,
            )
        k = arr.size // m
        trimmed = arr[arr.size - k * m :] if cfg.align == "recent" else arr[: k * m]
        windows = trimmed.reshape(k, m)
        verdicts = []
        for j in range(self._c):
            counts = (windows == j).sum(axis=1)
            p_hat = float(counts.sum()) / (k * m)
            expected = binomial_pmf(m, p_hat)
            observed = np.bincount(counts, minlength=m + 1) / k
            distance = float(self._distance(observed, expected))
            threshold = self._calibrator.threshold(m, k, p_hat)
            verdicts.append(
                BehaviorVerdict(
                    passed=distance <= threshold,
                    distance=distance,
                    threshold=float(threshold),
                    p_hat=p_hat,
                    n_windows=k,
                    window_size=m,
                    n_considered=k * m,
                )
            )
        return MultinomialReport(
            passed=all(v.passed for v in verdicts),
            by_category=tuple(verdicts),
            n_categories=self._c,
        )
