"""Multi-testing of server behavior — Scheme 2 (Sec. 3.3 and Sec. 5.5).

A long history dilutes recent misbehavior, so the single test is prone to
hibernating attacks.  Multi-testing re-runs the distribution test on
progressively shorter *recent* suffixes: the full ``l`` transactions,
then the most recent ``l - k``, ``l - 2k``, ... until too few windows
remain.  An honest player's behavior follows the binomial model on every
suffix, so any failing round flags the server.

Two interchangeable implementations are provided:

* ``strategy="naive"`` — re-window and re-estimate every suffix from
  scratch: O(n^2 / k) work, the paper's unoptimized baseline;
* ``strategy="optimized"`` — the paper's O(n) refinement: windows are
  anchored at the newest transaction, so every suffix's windows are a
  *suffix of the full window-count sequence*; walking from the shortest
  suffix to the longest, each round extends an incremental histogram by
  the few windows that entered and recomputes the O(m) distance.

Both produce identical verdicts (asserted by the test suite); Fig. 9's
performance experiment benchmarks the difference.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..feedback.windows import window_counts
from ..obs import audit as _audit
from ..obs import runtime as _obs
from ..stats.binomial import binomial_pmf
from ..stats.empirical import IncrementalHistogram
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .testing import HistoryInput, SingleBehaviorTest, _extract_outcomes
from .verdict import BehaviorVerdict, MultiTestReport

__all__ = ["MultiBehaviorTest", "judge_window_histogram", "run_suffix_rounds"]

_STRATEGIES = ("optimized", "naive")


def judge_window_histogram(
    histogram: IncrementalHistogram,
    *,
    window_size: int,
    distance_name: str,
    calibrator: ThresholdCalibrator,
) -> BehaviorVerdict:
    """Judge the window-count distribution held by ``histogram``.

    The shared phase-1 comparison: empirical window-count PMF against
    ``B(m, p_hat)`` under the configured distance, threshold from the
    calibrator.  Both :class:`MultiBehaviorTest` and the incremental
    serving engine call this, so their verdicts are bit-identical.
    """
    m = window_size
    k = histogram.n_samples
    p_hat = histogram.mean_rate(m)
    expected = binomial_pmf(m, p_hat)
    observed = histogram.pmf()
    distance = float(np.abs(observed - expected).sum())
    if distance_name != "l1":
        from ..stats.distances import get_distance

        distance = float(get_distance(distance_name)(observed, expected))
    threshold = calibrator.threshold(m, k, p_hat)
    return BehaviorVerdict(
        passed=distance <= threshold,
        distance=distance,
        threshold=float(threshold),
        p_hat=p_hat,
        n_windows=k,
        window_size=m,
        n_considered=k * m,
    )


def run_suffix_rounds(
    counts: np.ndarray,
    lengths: List[int],
    *,
    window_size: int,
    distance_name: str,
    calibrator: ThresholdCalibrator,
    collect_all: bool = False,
    obs_prefix: str = "core.multi_testing",
) -> List[Tuple[int, BehaviorVerdict]]:
    """The paper's O(n) suffix walk over precomputed window counts.

    ``counts`` is the recent-aligned window-count array of the full
    history; each suffix's windows are a suffix of it, so walking from
    the shortest suffix to the longest extends an incremental histogram
    by only the windows that entered.  Early-stops on the first failing
    round unless ``collect_all``.  Extracted from
    :class:`MultiBehaviorTest` so the incremental serving engine can
    reuse cached window counts through the exact same code path.
    """
    m = window_size
    total_windows = counts.size
    histogram = IncrementalHistogram(m + 1)
    rounds: List[Tuple[int, BehaviorVerdict]] = []
    windows_in = 0
    last_verdict: Optional[BehaviorVerdict] = None
    for length in reversed(lengths):  # shortest suffix first
        want = length // m
        if want > windows_in:
            # the most recent `want` windows are counts[-want:];
            # extend by the block that just entered consideration
            new_block = counts[total_windows - want : total_windows - windows_in]
            histogram.add_block(new_block)
            if _obs.enabled:
                # window stats carried over from the previous round vs.
                # windows that actually had to be ingested this round
                _obs.registry.inc(
                    f"{obs_prefix}.suffix_reuse", windows_in, strategy="optimized"
                )
                _obs.registry.inc(
                    f"{obs_prefix}.suffix_recomputed",
                    want - windows_in,
                    strategy="optimized",
                )
            windows_in = want
            last_verdict = judge_window_histogram(
                histogram,
                window_size=m,
                distance_name=distance_name,
                calibrator=calibrator,
            )
        elif last_verdict is None:
            last_verdict = judge_window_histogram(
                histogram,
                window_size=m,
                distance_name=distance_name,
                calibrator=calibrator,
            )
        elif _obs.enabled:
            # identical window set => identical verdict; full reuse
            _obs.registry.inc(
                f"{obs_prefix}.suffix_reuse", windows_in, strategy="optimized"
            )
        rounds.append((length, last_verdict))
        if not last_verdict.passed and not collect_all:
            break
    return rounds


class MultiBehaviorTest:
    """Long- *and* short-term behavior testing over recent suffixes."""

    name = "multi"

    def __init__(
        self,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
        strategy: str = "optimized",
        collect_all: bool = False,
    ):
        if strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
        if config.align != "recent":
            raise ValueError(
                "multi-testing requires align='recent' so suffixes share "
                "window boundaries (the basis of the O(n) optimization)"
            )
        self._config = config
        self._strategy = strategy
        self._collect_all = collect_all
        self._calibrator = calibrator or ThresholdCalibrator(
            confidence=config.confidence,
            n_sets=config.calibration_sets,
            distance=config.distance,
            p_quantum=config.p_quantum,
        )
        # the naive strategy re-runs this internally; the multi record is
        # the audit source of truth, so the inner test stays silent
        self._single = SingleBehaviorTest(config, self._calibrator, emit_audit=False)

    @property
    def config(self) -> BehaviorTestConfig:
        return self._config

    @property
    def calibrator(self) -> ThresholdCalibrator:
        return self._calibrator

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def collect_all(self) -> bool:
        """Whether rounds after the first failure are still judged."""
        return self._collect_all

    def suffix_lengths(self, n: int) -> List[int]:
        """Suffix lengths tested for a history of ``n`` transactions.

        ``[n, n - k, n - 2k, ...]`` down to the statistical-significance
        floor (``min_windows`` complete windows).
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        floor = self._config.min_transactions
        lengths = []
        length = n
        while length >= floor:
            lengths.append(length)
            length -= self._config.multi_step
        return lengths

    def test(self, history: HistoryInput) -> MultiTestReport:
        """Judge all suffixes; fails if any round fails."""
        if _audit.enabled:
            server = getattr(history, "server", None)
            with _audit.trail.decision_scope(server=server):
                return self._test_audited(_extract_outcomes(history))
        return self._test(_extract_outcomes(history))

    def _test_audited(self, outcomes: np.ndarray) -> MultiTestReport:
        report = self._test(outcomes)
        trail = _audit.trail
        if trail.want_record():
            trail.emit(
                _audit.multi_test_record(
                    self.name,
                    config=self._config,
                    outcomes=outcomes,
                    report=report,
                    strategy=self._strategy,
                    include_pmfs=trail.include_pmfs,
                )
            )
        return report

    def _test(self, outcomes: np.ndarray) -> MultiTestReport:
        lengths = self.suffix_lengths(int(outcomes.size))
        if not lengths:
            verdict = BehaviorVerdict.insufficient_history(
                passed=(self._config.on_insufficient == "pass"),
                window_size=self._config.window_size,
                n_considered=int(outcomes.size),
            )
            return MultiTestReport(
                passed=verdict.passed, rounds=((int(outcomes.size), verdict),)
            )
        with _obs.timer("core.multi_testing.seconds", strategy=self._strategy):
            if self._strategy == "naive":
                rounds = self._run_naive(outcomes, lengths)
            else:
                rounds = self._run_optimized(outcomes, lengths)
        passed = all(v.passed for _, v in rounds)
        if _obs.enabled:
            _obs.registry.inc("core.multi_testing.runs", strategy=self._strategy)
            _obs.registry.inc(
                "core.multi_testing.rounds", len(rounds), strategy=self._strategy
            )
            if not passed and not self._collect_all and len(rounds) < len(lengths):
                _obs.registry.inc(
                    "core.multi_testing.early_stops", strategy=self._strategy
                )
        # Present rounds longest-first, the order the paper describes.
        ordered = tuple(sorted(rounds, key=lambda pair: -pair[0]))
        return MultiTestReport(passed=passed, rounds=ordered)

    # ------------------------------------------------------------------ #
    # naive O(n^2 / k): re-test every suffix from scratch

    def _run_naive(
        self, outcomes: np.ndarray, lengths: List[int]
    ) -> List[Tuple[int, BehaviorVerdict]]:
        m = self._config.window_size
        rounds: List[Tuple[int, BehaviorVerdict]] = []
        for length in lengths:
            verdict = self._single.test_outcomes(outcomes[outcomes.size - length :])
            if _obs.enabled:
                # every round re-windows the whole suffix from scratch
                _obs.registry.inc(
                    "core.multi_testing.suffix_recomputed", length // m, strategy="naive"
                )
            rounds.append((length, verdict))
            if not verdict.passed and not self._collect_all:
                break
        return rounds

    # ------------------------------------------------------------------ #
    # optimized O(n): shortest suffix first, extend an incremental histogram

    def _run_optimized(
        self, outcomes: np.ndarray, lengths: List[int]
    ) -> List[Tuple[int, BehaviorVerdict]]:
        m = self._config.window_size
        counts = window_counts(outcomes, m, align="recent")
        return run_suffix_rounds(
            counts,
            lengths,
            window_size=m,
            distance_name=self._config.distance,
            calibrator=self._calibrator,
            collect_all=self._collect_all,
        )
