"""The paper's contribution: honest-player modeling and behavior testing."""

from .calibration import ThresholdCalibrator
from .categories import CategorizedBehaviorTest, CategoryReport
from .collusion import (
    CollusionResilientMultiTest,
    CollusionResilientTest,
    reorder_by_issuer,
    reordered_outcomes,
)
from .config import DEFAULT_CONFIG, AssessorConfig, BehaviorTestConfig
from .incremental import IncrementalBehaviorState
from .model import FittedWindowModel, HonestPlayerModel, generate_honest_outcomes
from .multi_testing import MultiBehaviorTest
from .multinomial_testing import MultinomialBehaviorTest, MultinomialReport
from .registry import (
    available_behavior_tests,
    make_behavior_test,
    register_behavior_test,
)
from .segmented import SegmentedBehaviorTest, SegmentedReport
from .temporal import (
    TemporalBehaviorTest,
    TemporalReport,
    hour_of_day_bucket,
    weekday_weekend_bucket,
)
from .testing import SingleBehaviorTest
from .two_phase import Assessor, BehaviorTestProtocol, TwoPhaseAssessor
from .verdict import (
    Assessment,
    AssessmentStatus,
    BehaviorVerdict,
    MultiTestReport,
    ReorderTrace,
)

__all__ = [
    "ThresholdCalibrator",
    "CategorizedBehaviorTest",
    "CategoryReport",
    "CollusionResilientMultiTest",
    "CollusionResilientTest",
    "reorder_by_issuer",
    "reordered_outcomes",
    "DEFAULT_CONFIG",
    "AssessorConfig",
    "BehaviorTestConfig",
    "available_behavior_tests",
    "make_behavior_test",
    "register_behavior_test",
    "IncrementalBehaviorState",
    "FittedWindowModel",
    "HonestPlayerModel",
    "generate_honest_outcomes",
    "MultiBehaviorTest",
    "MultinomialBehaviorTest",
    "MultinomialReport",
    "SegmentedBehaviorTest",
    "SegmentedReport",
    "TemporalBehaviorTest",
    "TemporalReport",
    "hour_of_day_bucket",
    "weekday_weekend_bucket",
    "SingleBehaviorTest",
    "BehaviorTestProtocol",
    "TwoPhaseAssessor",
    "Assessor",
    "Assessment",
    "AssessmentStatus",
    "BehaviorVerdict",
    "MultiTestReport",
    "ReorderTrace",
]
