"""Registry of behavior tests, keyed by short name, with aliases.

The trust side has had a name registry since the baselines landed
(:mod:`repro.trust.registry`); this is its phase-1 counterpart, so an
assessor is fully described by two names plus a config — the contract
:meth:`repro.core.two_phase.TwoPhaseAssessor.from_config` builds on.

Canonical names are each tester's ``name`` attribute; aliases cover the
paper's scheme numbering (``scheme1``/``scheme2``) and the CLI's
historical shorthands (``collusion`` for the multi-testing variant).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from .calibration import ThresholdCalibrator
from .categories import CategorizedBehaviorTest
from .collusion import CollusionResilientMultiTest, CollusionResilientTest
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .multi_testing import MultiBehaviorTest
from .multinomial_testing import MultinomialBehaviorTest
from .segmented import SegmentedBehaviorTest
from .temporal import TemporalBehaviorTest
from .testing import SingleBehaviorTest

__all__ = [
    "make_behavior_test",
    "register_behavior_test",
    "available_behavior_tests",
    "resolve_behavior_test_name",
]

_FACTORIES: Dict[str, Callable[..., object]] = {
    SingleBehaviorTest.name: SingleBehaviorTest,
    MultiBehaviorTest.name: MultiBehaviorTest,
    CollusionResilientTest.name: CollusionResilientTest,
    CollusionResilientMultiTest.name: CollusionResilientMultiTest,
    CategorizedBehaviorTest.name: CategorizedBehaviorTest,
    MultinomialBehaviorTest.name: MultinomialBehaviorTest,
    SegmentedBehaviorTest.name: SegmentedBehaviorTest,
    TemporalBehaviorTest.name: TemporalBehaviorTest,
}

_ALIASES: Dict[str, str] = {
    "scheme1": "single",
    "scheme2": "multi",
    "collusion": "collusion-multi",
    "category": "categorized",
}

#: Names that disable phase 1 entirely.
_NONE_NAMES = ("none", "off", "disabled")


def resolve_behavior_test_name(name: str) -> str:
    """Canonical registered name for ``name`` (aliases resolved)."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        raise KeyError(
            f"unknown behavior test {name!r}; available: "
            f"{available_behavior_tests()} (aliases: {sorted(_ALIASES)})"
        )
    return canonical


def make_behavior_test(
    name: Optional[str],
    *,
    config: BehaviorTestConfig = DEFAULT_CONFIG,
    calibrator: Optional[ThresholdCalibrator] = None,
    **kwargs,
):
    """Instantiate a registered behavior test.

    ``None`` (or the names ``"none"`` / ``"off"`` / ``"disabled"``)
    returns ``None``, the assessor's "no phase-1 screening" marker.
    Extra keyword arguments are forwarded to the tester's constructor,
    e.g. ``make_behavior_test("multinomial", n_categories=3)``.
    """
    if name is None or name in _NONE_NAMES:
        return None
    factory = _FACTORIES[resolve_behavior_test_name(name)]
    return factory(config=config, calibrator=calibrator, **kwargs)


def register_behavior_test(
    name: str,
    factory: Callable[..., object],
    *,
    aliases: Sequence[str] = (),
) -> None:
    """Register a custom behavior test under ``name`` (plus ``aliases``).

    Re-registering an existing name or alias is an error — shadowing a
    scheme silently would corrupt experiment comparisons.
    """
    for candidate in (name, *aliases):
        if candidate in _FACTORIES or candidate in _ALIASES:
            raise ValueError(f"behavior test {candidate!r} is already registered")
    _FACTORIES[name] = factory
    for alias in aliases:
        _ALIASES[alias] = name


def available_behavior_tests() -> list:
    """Sorted list of canonical registered names (aliases excluded)."""
    return sorted(_FACTORIES)
