"""Single behavior testing — Scheme 1 (Sec. 3.2, Fig. 2).

Break the history into ``k = floor(n/m)`` windows, count the good
transactions ``G_i`` per window, estimate ``p_hat = sum(G_i) / n`` and
check whether the empirical distribution of the ``G_i`` is within L1
distance ε of ``B(m, p_hat)``, with ε calibrated empirically at the
configured confidence level.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..feedback.history import TransactionHistory
from ..obs import runtime as _obs
from ..stats.distances import get_distance
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .model import HonestPlayerModel
from .verdict import BehaviorVerdict

__all__ = ["SingleBehaviorTest"]

HistoryInput = Union[TransactionHistory, np.ndarray, list, tuple]


def _extract_outcomes(history: HistoryInput) -> np.ndarray:
    if isinstance(history, TransactionHistory):
        return history.outcomes()
    arr = np.asarray(history)
    if arr.ndim != 1:
        raise ValueError("history must be a TransactionHistory or 1-D outcomes")
    return arr


class SingleBehaviorTest:
    """The paper's single distribution-distance behavior test.

    A shared :class:`ThresholdCalibrator` may be supplied so several
    tests (e.g. single and multi in the same experiment) reuse one
    threshold cache.
    """

    name = "single"

    def __init__(
        self,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
    ):
        self._config = config
        self._model = HonestPlayerModel(config.window_size, align=config.align)
        self._distance = get_distance(config.distance)
        self._calibrator = calibrator or ThresholdCalibrator(
            confidence=config.confidence,
            n_sets=config.calibration_sets,
            distance=config.distance,
            p_quantum=config.p_quantum,
        )

    @property
    def config(self) -> BehaviorTestConfig:
        return self._config

    @property
    def calibrator(self) -> ThresholdCalibrator:
        return self._calibrator

    def test(self, history: HistoryInput) -> BehaviorVerdict:
        """Judge a whole history (most recent behavior included)."""
        return self.test_outcomes(_extract_outcomes(history))

    def test_outcomes(self, outcomes: np.ndarray) -> BehaviorVerdict:
        """Judge a bare 0/1 outcome vector."""
        cfg = self._config
        n = int(np.asarray(outcomes).size)
        if n < cfg.min_transactions:
            if _obs.enabled:
                _obs.registry.inc("core.testing.tests", test=self.name, result="insufficient")
            return BehaviorVerdict.insufficient_history(
                passed=(cfg.on_insufficient == "pass"),
                window_size=cfg.window_size,
                n_considered=n,
            )
        with _obs.timer("core.testing.seconds"):
            fitted = self._model.fit(outcomes)
            threshold = self._calibrator.threshold(
                fitted.window_size, fitted.n_windows, fitted.p_hat
            )
            distance = self._distance(fitted.observed_pmf(), fitted.expected_pmf())
        passed = bool(distance <= threshold)
        if _obs.enabled:
            _obs.registry.inc(
                "core.testing.tests",
                test=self.name,
                result="pass" if passed else "fail",
            )
        return BehaviorVerdict(
            passed=passed,
            distance=float(distance),
            threshold=float(threshold),
            p_hat=fitted.p_hat,
            n_windows=fitted.n_windows,
            window_size=fitted.window_size,
            n_considered=fitted.n_considered,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SingleBehaviorTest(m={self._config.window_size})"
