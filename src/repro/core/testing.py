"""Single behavior testing — Scheme 1 (Sec. 3.2, Fig. 2).

Break the history into ``k = floor(n/m)`` windows, count the good
transactions ``G_i`` per window, estimate ``p_hat = sum(G_i) / n`` and
check whether the empirical distribution of the ``G_i`` is within L1
distance ε of ``B(m, p_hat)``, with ε calibrated empirically at the
configured confidence level.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..feedback.history import TransactionHistory
from ..obs import audit as _audit
from ..obs import runtime as _obs
from ..stats.distances import get_distance
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .model import HonestPlayerModel
from .verdict import BehaviorVerdict

__all__ = ["SingleBehaviorTest"]

HistoryInput = Union[TransactionHistory, np.ndarray, list, tuple]


def _extract_outcomes(history: HistoryInput) -> np.ndarray:
    if isinstance(history, TransactionHistory):
        return history.outcomes()
    arr = np.asarray(history)
    if arr.ndim != 1:
        raise ValueError("history must be a TransactionHistory or 1-D outcomes")
    return arr


class SingleBehaviorTest:
    """The paper's single distribution-distance behavior test.

    A shared :class:`ThresholdCalibrator` may be supplied so several
    tests (e.g. single and multi in the same experiment) reuse one
    threshold cache.
    """

    name = "single"

    def __init__(
        self,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
        *,
        emit_audit: bool = True,
    ):
        self._config = config
        self._model = HonestPlayerModel(config.window_size, align=config.align)
        self._distance = get_distance(config.distance)
        # Composite tests (multi, collusion-resilient) run this test as an
        # internal round and emit their own, richer audit record instead.
        self._emit_audit = emit_audit
        self._calibrator = calibrator or ThresholdCalibrator(
            confidence=config.confidence,
            n_sets=config.calibration_sets,
            distance=config.distance,
            p_quantum=config.p_quantum,
        )

    @property
    def config(self) -> BehaviorTestConfig:
        return self._config

    @property
    def calibrator(self) -> ThresholdCalibrator:
        return self._calibrator

    def test(self, history: HistoryInput) -> BehaviorVerdict:
        """Judge a whole history (most recent behavior included)."""
        if _audit.enabled and self._emit_audit:
            server = getattr(history, "server", None)
            with _audit.trail.decision_scope(server=server):
                return self.test_outcomes(_extract_outcomes(history))
        return self.test_outcomes(_extract_outcomes(history))

    def test_outcomes(self, outcomes: np.ndarray) -> BehaviorVerdict:
        """Judge a bare 0/1 outcome vector."""
        cfg = self._config
        n = int(np.asarray(outcomes).size)
        if n < cfg.min_transactions:
            if _obs.enabled:
                _obs.registry.inc("core.testing.tests", test=self.name, result="insufficient")
            verdict = BehaviorVerdict.insufficient_history(
                passed=(cfg.on_insufficient == "pass"),
                window_size=cfg.window_size,
                n_considered=n,
            )
            self._audit(outcomes, verdict)
            return verdict
        with _obs.timer("core.testing.seconds"):
            fitted = self._model.fit(outcomes)
            threshold = self._calibrator.threshold(
                fitted.window_size, fitted.n_windows, fitted.p_hat
            )
            distance = self._distance(fitted.observed_pmf(), fitted.expected_pmf())
        passed = bool(distance <= threshold)
        if _obs.enabled:
            _obs.registry.inc(
                "core.testing.tests",
                test=self.name,
                result="pass" if passed else "fail",
            )
        verdict = BehaviorVerdict(
            passed=passed,
            distance=float(distance),
            threshold=float(threshold),
            p_hat=fitted.p_hat,
            n_windows=fitted.n_windows,
            window_size=fitted.window_size,
            n_considered=fitted.n_considered,
        )
        self._audit(outcomes, verdict)
        return verdict

    def _audit(self, outcomes: np.ndarray, verdict: BehaviorVerdict) -> None:
        if not (_audit.enabled and self._emit_audit):
            return
        trail = _audit.trail
        if not trail.want_record():
            return
        trail.emit(
            _audit.single_test_record(
                self.name,
                config=self._config,
                outcomes=outcomes,
                verdict=verdict,
                include_pmfs=trail.include_pmfs,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SingleBehaviorTest(m={self._config.window_size})"
