"""Collusion-resilient behavior testing (Sec. 4).

Colluders can fabricate the positive feedback an attacker needs to stay
inside the honest-player model, so the plain tests are evadable at almost
no cost.  The paper's counter-measure uses *feedback issuer patterns*
instead of trying to identify specific colluders:

1. group a server's feedbacks by issuing client;
2. reorder the sequence so larger groups come first (frequent clients,
   then occasional ones), keeping time order within each group;
3. run the ordinary distribution test on the reordered outcomes.

For an honest server the feedback distribution of frequent clients
matches that of occasional clients, so the reordered sequence still looks
binomial.  An attacker who cheats non-colluders while recycling a small
colluder set produces a reordered sequence whose tail (the many
small groups of one-off victims) is visibly worse than its head — the
test fails, forcing the attacker to deliver real service to a growing
supporter base.

Multi-testing composes the same way (Sec. 4): choose the most recent
``l - i*k`` transactions *by time*, then reorder and test that subset.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..feedback.history import TransactionHistory
from ..feedback.records import EntityId, Feedback
from ..obs import audit as _audit
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .testing import SingleBehaviorTest
from .verdict import BehaviorVerdict, MultiTestReport, ReorderTrace

__all__ = [
    "reorder_by_issuer",
    "reordered_outcomes",
    "CollusionResilientTest",
    "CollusionResilientMultiTest",
]


def reorder_by_issuer(feedbacks: Sequence[Feedback]) -> List[Feedback]:
    """The paper's issuer-grouped reordering Q -> Q'.

    Groups with more feedbacks appear before groups with fewer; inside a
    group, feedbacks keep time order.  Ties between equal-sized groups
    are broken by the time of the group's first feedback (deterministic,
    so repeated assessments agree).
    """
    groups: Dict[EntityId, List[Feedback]] = {}
    for fb in feedbacks:
        groups.setdefault(fb.client, []).append(fb)
    for fbs in groups.values():
        fbs.sort(key=lambda f: f.time)
    ordered_groups = sorted(
        groups.values(), key=lambda fbs: (-len(fbs), fbs[0].time, fbs[0].client)
    )
    return [fb for fbs in ordered_groups for fb in fbs]


def reordered_outcomes(feedbacks: Sequence[Feedback]) -> np.ndarray:
    """Binary outcome vector of the issuer-grouped reordering."""
    return np.asarray([fb.outcome for fb in reorder_by_issuer(feedbacks)], dtype=np.int8)


def _feedbacks_of(history) -> List[Feedback]:
    if isinstance(history, TransactionHistory):
        return history.feedbacks()
    return list(history)


class CollusionResilientTest:
    """Single behavior test on the issuer-grouped reordering."""

    name = "collusion-single"

    def __init__(
        self,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
    ):
        # this test's audit record carries the reorder trace; the inner
        # single test must not emit a duplicate, reorder-blind record
        self._single = SingleBehaviorTest(config, calibrator, emit_audit=False)

    @property
    def config(self) -> BehaviorTestConfig:
        return self._single.config

    @property
    def calibrator(self) -> ThresholdCalibrator:
        return self._single.calibrator

    def test(self, history) -> BehaviorVerdict:
        """``history`` must carry feedback metadata (issuer identities)."""
        feedbacks = _feedbacks_of(history)
        reordered = reordered_outcomes(feedbacks)
        trace = ReorderTrace.from_feedbacks(feedbacks)
        if not _audit.enabled:
            return replace(self._single.test_outcomes(reordered), reorder=trace)
        with _audit.trail.decision_scope(server=getattr(history, "server", None)):
            verdict = replace(self._single.test_outcomes(reordered), reorder=trace)
            trail = _audit.trail
            if trail.want_record():
                trail.emit(
                    _audit.single_test_record(
                        self.name,
                        config=self.config,
                        outcomes=reordered,
                        verdict=verdict,
                        reorder=_audit.reorder_trace(feedbacks),
                        include_pmfs=trail.include_pmfs,
                    )
                )
        return verdict


class CollusionResilientMultiTest:
    """Multi-testing over time-recent subsets, each reordered before testing.

    Unlike plain multi-testing, the reordering scrambles window
    boundaries differently for every suffix, so the O(n) shared-window
    optimization does not apply; each round re-tests from scratch.  The
    suffix schedule (step ``k``, significance floor) matches Scheme 2.
    """

    name = "collusion-multi"

    def __init__(
        self,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
        collect_all: bool = False,
    ):
        self._config = config
        self._collect_all = collect_all
        self._single = SingleBehaviorTest(config, calibrator, emit_audit=False)

    @property
    def config(self) -> BehaviorTestConfig:
        return self._config

    @property
    def calibrator(self) -> ThresholdCalibrator:
        return self._single.calibrator

    def suffix_lengths(self, n: int) -> List[int]:
        """The multi-testing suffix schedule for an ``n``-feedback history."""
        floor = self._config.min_transactions
        lengths = []
        length = n
        while length >= floor:
            lengths.append(length)
            length -= self._config.multi_step
        return lengths

    def test(self, history) -> MultiTestReport:
        """Judge every time-recent suffix after issuer-grouped reordering."""
        feedbacks = _feedbacks_of(history)
        if _audit.enabled:
            with _audit.trail.decision_scope(
                server=getattr(history, "server", None)
            ) as sampled:
                return self._test(feedbacks, audited=sampled)
        return self._test(feedbacks, audited=False)

    def _test(self, feedbacks: List[Feedback], *, audited: bool) -> MultiTestReport:
        lengths = self.suffix_lengths(len(feedbacks))
        if not lengths:
            verdict = BehaviorVerdict.insufficient_history(
                passed=(self._config.on_insufficient == "pass"),
                window_size=self._config.window_size,
                n_considered=len(feedbacks),
            )
            report = MultiTestReport(
                passed=verdict.passed,
                rounds=((len(feedbacks), verdict),),
                reorder=ReorderTrace.from_feedbacks(feedbacks),
            )
            if audited:
                self._emit_audit(feedbacks, report, [None])
            return report
        rounds = []
        round_outcomes = []  # per-round reordered vectors, for the audit record
        for length in lengths:  # longest (full history) first, as in Sec. 4
            recent = feedbacks[len(feedbacks) - length :]
            reordered = reordered_outcomes(recent)
            verdict = self._single.test_outcomes(reordered)
            rounds.append((length, verdict))
            if audited:
                round_outcomes.append(reordered)
            if not verdict.passed and not self._collect_all:
                break
        passed = all(v.passed for _, v in rounds)
        report = MultiTestReport(
            passed=passed,
            rounds=tuple(rounds),
            reorder=ReorderTrace.from_feedbacks(feedbacks),
        )
        if audited:
            self._emit_audit(feedbacks, report, round_outcomes)
        return report

    def _emit_audit(self, feedbacks, report, round_outcomes) -> None:
        trail = _audit.trail
        trail.emit(
            _audit.multi_test_record(
                self.name,
                config=self._config,
                outcomes=[fb.outcome for fb in feedbacks],
                report=report,
                round_outcomes=round_outcomes,
                reorder=_audit.reorder_trace(feedbacks),
                include_pmfs=trail.include_pmfs,
            )
        )
