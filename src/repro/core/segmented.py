"""Segmented behavior testing — the "dynamic cases" extension (Sec. 3.1).

An honest player's uncontrollable quality factor may *shift* (a changed
ISP, a datacenter migration): the outcome sequence is then piecewise-
stationary Bernoulli, which the static test misreads as inconsistency.
:class:`SegmentedBehaviorTest`:

1. locates rate change points with likelihood-based binary segmentation
   (:mod:`repro.stats.changepoint`);
2. runs the ordinary single behavior test *inside each stationary
   segment*, where the constant-`p` assumption holds again.

An honest drifting server passes (each regime is binomial at its own
rate).  A manipulator does not get a free pass: the attacks the paper
studies are non-binomial *within* a regime (bursts, regular periodicity),
so the per-segment tests still catch them — and segmentation cannot
"explain away" a bad burst as a regime of its own unless the burst is
long enough to be, in effect, an openly bad server, which the trust
phase then rejects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..stats.changepoint import Segment, segment_sequence
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .testing import HistoryInput, SingleBehaviorTest, _extract_outcomes
from .verdict import BehaviorVerdict

__all__ = ["SegmentedReport", "SegmentedBehaviorTest"]


@dataclass(frozen=True)
class SegmentedReport(BehaviorVerdict):
    """Per-segment verdicts plus the aggregate decision.

    As a :class:`BehaviorVerdict`, the per-segment verdicts are mirrored
    into ``rounds`` (keyed by segment start index) and the aggregate
    numeric fields describe the decisive segment.
    """

    segments: Tuple[Segment, ...] = ()
    verdicts: Tuple[BehaviorVerdict, ...] = ()

    def __post_init__(self) -> None:
        if self.verdicts and not self.rounds:
            object.__setattr__(
                self,
                "rounds",
                tuple(
                    (seg.start, v) for seg, v in zip(self.segments, self.verdicts)
                ),
            )
        self._fill_aggregates_from_rounds()

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def change_points(self) -> Tuple[int, ...]:
        return tuple(seg.start for seg in self.segments[1:])

    @property
    def failing_segments(self) -> Tuple[Segment, ...]:
        return tuple(
            seg for seg, v in zip(self.segments, self.verdicts) if not v.passed
        )


class SegmentedBehaviorTest:
    """Change-point segmentation composed with per-segment single testing."""

    name = "segmented"

    def __init__(
        self,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
        min_segment: int = 50,
        penalty_scale: float = 3.0,
    ):
        if min_segment < config.min_transactions:
            raise ValueError(
                f"min_segment ({min_segment}) must be at least the test's "
                f"minimum history ({config.min_transactions}); shorter "
                "segments could never be judged"
            )
        self._single = SingleBehaviorTest(config, calibrator)
        self._min_segment = min_segment
        self._penalty_scale = penalty_scale

    @property
    def config(self) -> BehaviorTestConfig:
        return self._single.config

    def segments(self, history: HistoryInput) -> Tuple[Segment, ...]:
        """Just the detected stationary segments (diagnostics)."""
        outcomes = _extract_outcomes(history)
        return tuple(
            segment_sequence(
                outcomes,
                min_segment=self._min_segment,
                penalty_scale=self._penalty_scale,
            )
        )

    def test(self, history: HistoryInput) -> SegmentedReport:
        """Segment the history at detected rate changes and judge each segment."""
        outcomes = np.asarray(_extract_outcomes(history))
        segments = self.segments(outcomes)
        verdicts = tuple(
            self._single.test_outcomes(outcomes[seg.start : seg.end])
            for seg in segments
        )
        passed = all(v.passed for v in verdicts) if verdicts else (
            self._single.config.on_insufficient == "pass"
        )
        return SegmentedReport(passed=passed, segments=segments, verdicts=verdicts)
