"""Empirical calibration of the distribution-distance threshold ε.

Sec. 3.2: deriving the exact distribution of the L1 distance between an
empirical window-count distribution and its generating binomial is
complex, so the paper takes an empirical approach — generate many sample
sets under ``B(m, p_hat)``, measure their distances, and pick ε as the
value under which the configured fraction (95%) of null distances fall.

The calibrator is the hot path of every experiment: the strategic
attacker consults the behavior test before *each* transaction, and every
consultation needs a threshold for the current ``(m, k, p_hat)``.  Two
measures keep this cheap:

* thresholds are cached keyed on ``(m, k, quantized p_hat)`` — ``p_hat``
  moves slowly during an attack, so the hit rate is high; and
* the Monte-Carlo itself draws whole sample sets as single multinomial
  vectors (see :func:`repro.stats.bootstrap.null_l1_distances`), so one
  calibration is a single vectorized numpy pass.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs import runtime as _obs
from ..resilience import runtime as _res
from ..resilience.retry import RetryExhausted, RetryPolicy
from ..stats.binomial import binomial_pmf
from ..stats.bootstrap import percentile_threshold
from ..stats.distances import get_distance
from ..stats.rng import SeedLike, make_rng

__all__ = ["ThresholdCalibrator"]

_log = logging.getLogger(__name__)

_CacheKey = Tuple[int, int, float]


class ThresholdCalibrator:
    """Monte-Carlo estimator of the ε threshold with memoization."""

    def __init__(
        self,
        confidence: float = 0.95,
        n_sets: int = 400,
        distance: str = "l1",
        p_quantum: float = 0.01,
        seed: SeedLike = 12345,
        retry_policy: Optional[RetryPolicy] = None,
        stale_fallback: bool = True,
    ):
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
        if n_sets <= 0:
            raise ValueError(f"n_sets must be positive, got {n_sets}")
        if p_quantum < 0:
            raise ValueError(f"p_quantum must be non-negative, got {p_quantum}")
        self._confidence = confidence
        self._n_sets = n_sets
        self._distance_name = distance
        self._distance = get_distance(distance)
        self._p_quantum = p_quantum
        self._rng = make_rng(seed)
        self._cache: Dict[_CacheKey, float] = {}
        self._hits = 0
        self._misses = 0
        self._store = None
        # Recovery path for a failing Monte-Carlo pass: bounded retry
        # (an injected or transient fault on attempt 1 leaves the rng
        # untouched, so the retry reproduces the fault-free threshold
        # bit-for-bit), then — retries exhausted — the nearest already-
        # calibrated threshold for the same (m, k) as a *stale* answer,
        # counted in ``degraded_calibrations`` so callers can flag the
        # verdict instead of raising mid-assessment.
        self._retry = retry_policy or RetryPolicy(
            max_attempts=2, base_delay=0.0, name="core.calibration"
        )
        self._stale_fallback = stale_fallback
        self.degraded_calibrations = 0

    # ------------------------------------------------------------------ #

    @property
    def confidence(self) -> float:
        return self._confidence

    @property
    def distance_name(self) -> str:
        return self._distance_name

    @property
    def cache_stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` of the threshold cache."""
        return (self._hits, self._misses)

    def attach_store(self, store) -> None:
        """Back the in-process memo with a shared threshold store.

        ``store`` needs ``get(key) -> Optional[float]`` and
        ``put(key, value)``; keys are the *full* calibration identity
        ``(m, k, p_key, confidence, n_sets, distance)``, so one store
        (e.g. :class:`repro.serve.CalibrationCache`) can safely serve
        calibrators with different settings.  Pass ``None`` to detach.
        """
        self._store = store

    def _store_key(self, m: int, k: int, p_key: float) -> Tuple:
        return (m, k, p_key, self._confidence, self._n_sets, self._distance_name)

    def quantize_p(self, p: float) -> float:
        """``p`` snapped to the caching grid.

        The grid never rounds a *non-degenerate* rate onto 0 or 1: the
        null at p in {0, 1} is a point mass with ε = 0, which any history
        that is merely *close* to all-good (p_hat = 0.996, say) would fail
        forever — and an attacker or honest player adding good
        transactions only gets closer to 1 without reaching it, a
        permanent false flag.  Such rates snap to the innermost grid
        point instead; exact 0/1 rates still calibrate degenerately.
        """
        if self._p_quantum == 0:
            return float(p)
        snapped = round(round(p / self._p_quantum) * self._p_quantum, 12)
        if snapped >= 1.0 and p < 1.0:
            return round(1.0 - self._p_quantum, 12)
        if snapped <= 0.0 and p > 0.0:
            return round(self._p_quantum, 12)
        return snapped

    def threshold(self, m: int, k: int, p_hat: float) -> float:
        """ε for a test of ``k`` windows of size ``m`` at rate ``p_hat``."""
        if m <= 0:
            raise ValueError(f"window size m must be positive, got {m}")
        if k <= 0:
            raise ValueError(f"number of windows k must be positive, got {k}")
        if not 0.0 <= p_hat <= 1.0:
            raise ValueError(f"p_hat must lie in [0, 1], got {p_hat}")
        p_key = self.quantize_p(p_hat)
        key = (m, k, p_key)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            if _obs.enabled:
                _obs.registry.inc("core.calibration.cache_hits")
            return cached
        if self._store is not None:
            stored = self._store.get(self._store_key(m, k, p_key))
            if stored is not None:
                self._hits += 1
                self._cache[key] = stored
                if _obs.enabled:
                    _obs.registry.inc("core.calibration.store_hits")
                return stored
        self._misses += 1
        if _obs.enabled:
            _obs.registry.inc("core.calibration.cache_misses")
        try:
            with _obs.timer("core.calibration.seconds"):
                value = self._retry.call(self._calibrate_once, m, k, p_key)
        except RetryExhausted as exc:
            stale = self._stale_threshold(m, k, p_key) if self._stale_fallback else None
            if stale is None:
                raise exc.last_error
            stale_p, value = stale
            self.degraded_calibrations += 1
            _log.warning(
                "calibration failed for (m=%d, k=%d, p=%.4f); serving stale "
                "threshold from p=%.4f (%s)", m, k, p_key, stale_p, exc.last_error,
            )
            _res.emit(
                "calibration_degraded",
                site="core.calibration",
                m=m,
                k=k,
                p_key=p_key,
                stale_p=stale_p,
                error=repr(exc.last_error),
            )
            if _obs.enabled:
                _obs.registry.inc("core.calibration.degraded")
            # deliberately NOT cached: the next consultation re-attempts
            # a fresh calibration rather than pinning the stale value
            return value
        self._cache[key] = value
        if self._store is not None:
            self._store.put(self._store_key(m, k, p_key), value)
        return value

    def _calibrate_once(self, m: int, k: int, p_key: float) -> float:
        """One (possibly fault-injected) calibration attempt."""
        if _res.armed:
            _res.inject("core.calibration")
        return self._calibrate(m, k, p_key)

    def _stale_threshold(
        self, m: int, k: int, p_key: float
    ) -> Optional[Tuple[float, float]]:
        """The cached threshold for the nearest rate at the same (m, k).

        Returns ``(stale_p, threshold)`` or ``None`` when nothing under
        this (m, k) was ever calibrated — then there is no safe answer
        and the failure must propagate.
        """
        candidates = [
            (abs(cached_p - p_key), cached_p, value)
            for (cm, ck, cached_p), value in self._cache.items()
            if cm == m and ck == k
        ]
        if not candidates:
            return None
        _, stale_p, value = min(candidates)
        return (stale_p, value)

    def null_distances(
        self, m: int, k: int, p: float, *, seed: Optional[SeedLike] = None
    ) -> np.ndarray:
        """The raw Monte-Carlo null distances (for diagnostics/plots)."""
        pmf = binomial_pmf(m, p)
        rng = self._rng if seed is None else make_rng(seed)
        counts = rng.multinomial(k, pmf, size=self._n_sets).astype(np.float64)
        empirical = counts / k
        if self._distance_name == "l1":
            # fast path: vectorized row-wise L1
            return np.abs(empirical - pmf[None, :]).sum(axis=1)
        return np.array([self._distance(row, pmf) for row in empirical])

    # ------------------------------------------------------------------ #

    def _calibrate(self, m: int, k: int, p: float) -> float:
        distances = self.null_distances(m, k, p)
        return percentile_threshold(distances, self._confidence)
