"""Per-category behavior testing (Sec. 4's extension).

A server may legitimately deliver different quality to different
transaction categories — the paper's example is a US movie server that is
good for North-American customers and poor for African ones because of
network capacity, with neither group colluding.  Pooling such categories
makes an honest server look dishonest (a mixture of two binomials is not
a binomial).  The extension groups transactions by a category label and
applies the behavior test within each category, where the
constant-`p` assumption is plausible again.

A category that fails may indicate either a manipulated category or an
unmodeled quality factor — the paper points out that false alerts of this
kind are themselves useful, surfacing factors worth modeling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..feedback.history import TransactionHistory
from ..feedback.records import Feedback
from .calibration import ThresholdCalibrator
from .config import DEFAULT_CONFIG, BehaviorTestConfig
from .testing import SingleBehaviorTest
from .verdict import BehaviorVerdict

__all__ = ["CategoryReport", "CategorizedBehaviorTest"]

_UNCATEGORIZED = "<uncategorized>"


@dataclass(frozen=True)
class CategoryReport(BehaviorVerdict):
    """Per-category verdicts plus the aggregate decision.

    ``passed`` is True iff every *judged* category passed (categories too
    small to test follow the ``on_insufficient`` policy, like everywhere
    else).  As a :class:`BehaviorVerdict`, the per-category verdicts are
    mirrored into ``rounds`` (keyed by category name) and the aggregate
    numeric fields describe the decisive category.
    """

    by_category: Tuple[Tuple[str, BehaviorVerdict], ...] = ()

    def __post_init__(self) -> None:
        if self.by_category and not self.rounds:
            object.__setattr__(self, "rounds", tuple(self.by_category))
        self._fill_aggregates_from_rounds()

    def verdict(self, category: str) -> BehaviorVerdict:
        """The verdict of one category (KeyError if absent)."""
        for name, verdict in self.by_category:
            if name == category:
                return verdict
        raise KeyError(f"no verdict for category {category!r}")

    @property
    def categories(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.by_category)

    @property
    def failing_categories(self) -> Tuple[str, ...]:
        return tuple(name for name, v in self.by_category if not v.passed)


class CategorizedBehaviorTest:
    """Apply the single behavior test independently inside each category.

    ``categories`` restricts testing to the categories a client cares
    about (the paper's "if a user is in North Carolina, knowing the
    server's service quality to customers in North America would
    suffice"); ``None`` tests all categories present.
    """

    name = "categorized"

    def __init__(
        self,
        config: BehaviorTestConfig = DEFAULT_CONFIG,
        calibrator: Optional[ThresholdCalibrator] = None,
        categories: Optional[Sequence[str]] = None,
    ):
        self._single = SingleBehaviorTest(config, calibrator)
        self._categories = tuple(categories) if categories is not None else None

    @property
    def config(self) -> BehaviorTestConfig:
        return self._single.config

    def test(self, history: TransactionHistory) -> CategoryReport:
        """Judge each category of ``history`` independently."""
        groups = self._group(history.feedbacks())
        selected = (
            {c: groups.get(c, []) for c in self._categories}
            if self._categories is not None
            else groups
        )
        by_category = []
        for name in sorted(selected):
            outcomes = np.asarray([fb.outcome for fb in selected[name]], dtype=np.int8)
            by_category.append((name, self._single.test_outcomes(outcomes)))
        passed = all(v.passed for _, v in by_category) if by_category else (
            self._single.config.on_insufficient == "pass"
        )
        return CategoryReport(passed=passed, by_category=tuple(by_category))

    @staticmethod
    def _group(feedbacks: Sequence[Feedback]) -> Dict[str, list]:
        groups: Dict[str, list] = {}
        for fb in feedbacks:
            groups.setdefault(fb.category or _UNCATEGORIZED, []).append(fb)
        return groups
