"""ROC analysis of behavior tests.

The paper reports detection rate at one operating point (95%
confidence).  A deployment has to *choose* that point, trading missed
attacks against false alarms on honest players.  This module sweeps the
confidence knob and produces the standard receiver-operating-
characteristic summary:

* :func:`measure_operating_point` — (false-positive rate, detection
  rate) of a test configuration against paired honest/attack workload
  generators;
* :func:`roc_curve` — the full curve over a confidence grid;
* :func:`auc` — area under the curve (trapezoidal, with the (0,0)/(1,1)
  anchors), a single-number comparison between schemes, window sizes or
  distance functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.calibration import ThresholdCalibrator
from ..core.config import BehaviorTestConfig
from ..core.testing import SingleBehaviorTest
from ..stats.rng import SeedLike, make_rng

__all__ = ["OperatingPoint", "measure_operating_point", "roc_curve", "auc"]

WorkloadGen = Callable[[np.random.Generator], np.ndarray]
TestFactory = Callable[[BehaviorTestConfig], object]


@dataclass(frozen=True)
class OperatingPoint:
    """One point of the ROC curve."""

    confidence: float
    false_positive_rate: float
    detection_rate: float

    @property
    def youden_j(self) -> float:
        """Youden's J = TPR - FPR; the usual scalar for picking a point."""
        return self.detection_rate - self.false_positive_rate


def measure_operating_point(
    test,
    honest_gen: WorkloadGen,
    attack_gen: WorkloadGen,
    *,
    trials: int = 100,
    confidence: float = float("nan"),
    seed: SeedLike = None,
) -> OperatingPoint:
    """FPR/TPR of ``test`` against paired workload generators.

    ``test`` is anything with ``.test(outcomes) -> verdict-with-.passed``;
    the generators receive a shared RNG and return outcome sequences.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = make_rng(seed)
    false_positives = 0
    detections = 0
    for _ in range(trials):
        if not test.test(honest_gen(rng)).passed:
            false_positives += 1
        if not test.test(attack_gen(rng)).passed:
            detections += 1
    return OperatingPoint(
        confidence=confidence,
        false_positive_rate=false_positives / trials,
        detection_rate=detections / trials,
    )


def roc_curve(
    honest_gen: WorkloadGen,
    attack_gen: WorkloadGen,
    *,
    config: BehaviorTestConfig = BehaviorTestConfig(),
    test_factory: Optional[TestFactory] = None,
    confidences: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 0.999),
    trials: int = 100,
    seed: SeedLike = 0,
) -> List[OperatingPoint]:
    """Sweep the confidence level; returns points ordered by confidence.

    ``test_factory`` builds the behavior test from a config (default:
    :class:`SingleBehaviorTest`), so the same sweep runs over multi or
    collusion-resilient variants.
    """
    if not confidences:
        raise ValueError("need at least one confidence level")
    if any(not 0.0 < c < 1.0 for c in confidences):
        raise ValueError(f"confidences must lie in (0, 1), got {confidences}")
    factory = test_factory or (lambda cfg: SingleBehaviorTest(cfg))
    rng = make_rng(seed)
    points = []
    for confidence in sorted(confidences):
        test = factory(config.with_(confidence=confidence))
        points.append(
            measure_operating_point(
                test,
                honest_gen,
                attack_gen,
                trials=trials,
                confidence=confidence,
                seed=rng,
            )
        )
    return points


def auc(points: Sequence[OperatingPoint]) -> float:
    """Trapezoidal area under the ROC curve, anchored at (0,0) and (1,1).

    Duplicate FPR values are averaged (ROC staircases produce them).
    """
    if not points:
        raise ValueError("need at least one operating point")
    xs = np.asarray([p.false_positive_rate for p in points] + [0.0, 1.0])
    ys = np.asarray([p.detection_rate for p in points] + [0.0, 1.0])
    # lexicographic (x, then y) order so ties at the same FPR are traversed
    # bottom-up — equal-x segments then contribute zero area, as they must
    order = np.lexsort((ys, xs))
    return float(np.trapezoid(ys[order], xs[order]))
