"""Analysis toolkit: ROC sweeps and sustainable-cheat-rate measurement."""

from .cheat_rate import (
    CamouflageAttacker,
    SustainablePoint,
    max_sustainable_cheat_rate,
    sustainable_profile,
)
from .roc import OperatingPoint, auc, measure_operating_point, roc_curve
from .sampling import CoveragePoint, detection_vs_coverage, subsample_outcomes

__all__ = [
    "CamouflageAttacker",
    "SustainablePoint",
    "max_sustainable_cheat_rate",
    "sustainable_profile",
    "OperatingPoint",
    "auc",
    "measure_operating_point",
    "roc_curve",
    "CoveragePoint",
    "detection_vs_coverage",
    "subsample_outcomes",
]
