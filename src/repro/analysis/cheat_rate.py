"""Maximum sustainable cheat rate — quantifying the paper's closing point.

Fig. 7's tail and the paper's conclusion make the same argument: an
attacker that spreads its bad transactions thinly enough to keep passing
the behavior test "can be regarded as an honest player".  The natural
quantitative question a deployment asks is: **how much cheating can a
camouflaged attacker sustain without being flagged?**

:class:`CamouflageAttacker` is the strongest pattern-level adversary
against the windowed test: it places bad transactions iid at rate ``r``,
so its window counts are *genuinely* ``B(m, 1-r)``-distributed — there
is no pattern left to detect, only the rate itself.  The defense's grip
on it comes from phase 2: the trust threshold bounds ``r`` from above.

:func:`max_sustainable_cheat_rate` bisects ``r`` to the largest value a
given test still passes with at least ``target_pass_rate`` probability,
and :func:`sustainable_profile` tabulates it across history lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..stats.rng import SeedLike, make_rng

__all__ = [
    "CamouflageAttacker",
    "max_sustainable_cheat_rate",
    "sustainable_profile",
    "SustainablePoint",
]


class CamouflageAttacker:
    """Cheats iid at rate ``r`` — statistically an honest player of p = 1-r."""

    def __init__(self, cheat_rate: float):
        if not 0.0 <= cheat_rate <= 1.0:
            raise ValueError(f"cheat_rate must lie in [0, 1], got {cheat_rate}")
        self._rate = cheat_rate

    @property
    def cheat_rate(self) -> float:
        return self._rate

    def history(self, n: int, *, seed: SeedLike = None) -> np.ndarray:
        """An ``n``-transaction history with iid bads at the cheat rate."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = make_rng(seed)
        return (rng.random(n) >= self._rate).astype(np.int8)

    def expected_bads(self, n: int) -> float:
        """Expected number of bad transactions in an ``n``-transaction history."""
        return self._rate * n


def _pass_rate(test, rate: float, n: int, trials: int, rng) -> float:
    attacker = CamouflageAttacker(rate)
    passes = sum(test.test(attacker.history(n, seed=rng)).passed for _ in range(trials))
    return passes / trials


def max_sustainable_cheat_rate(
    test,
    *,
    history_length: int = 800,
    target_pass_rate: float = 0.9,
    trust_threshold: float = 0.9,
    trials: int = 40,
    precision: float = 0.01,
    seed: SeedLike = 0,
) -> float:
    """Largest iid cheat rate ``test`` tolerates (bisection).

    The search is capped at ``1 - trust_threshold``: above that, phase 2
    rejects the attacker regardless of the behavior test, so higher rates
    are not "sustainable" in the paper's sense even if the pattern test
    passes.  A camouflaged attacker is *expected* to saturate this cap —
    that is the paper's point, and the interesting output is when a test
    pins the rate *below* it.
    """
    if history_length <= 0:
        raise ValueError(f"history_length must be positive, got {history_length}")
    if not 0.0 < target_pass_rate <= 1.0:
        raise ValueError(f"target_pass_rate must lie in (0, 1], got {target_pass_rate}")
    if precision <= 0:
        raise ValueError(f"precision must be positive, got {precision}")
    rng = make_rng(seed)
    cap = 1.0 - trust_threshold
    if _pass_rate(test, cap, history_length, trials, rng) >= target_pass_rate:
        return cap
    lo, hi = 0.0, cap  # pass rate is (statistically) decreasing in the rate
    while hi - lo > precision:
        mid = 0.5 * (lo + hi)
        if _pass_rate(test, mid, history_length, trials, rng) >= target_pass_rate:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class SustainablePoint:
    history_length: int
    max_cheat_rate: float

    @property
    def bads_per_hundred(self) -> float:
        return 100.0 * self.max_cheat_rate


def sustainable_profile(
    test,
    *,
    history_lengths: Sequence[int] = (200, 400, 800, 1600),
    **kwargs,
) -> List[SustainablePoint]:
    """``max_sustainable_cheat_rate`` across history lengths."""
    return [
        SustainablePoint(
            history_length=n,
            max_cheat_rate=max_sustainable_cheat_rate(
                test, history_length=n, **kwargs
            ),
        )
        for n in history_lengths
    ]
