"""Behavior testing under partial feedback visibility.

Sec. 2 of the paper asserts the scheme "can be equally applied to
systems where only portions of feedbacks can be retrieved" — e.g. an
unstructured P2P network where a query reaches a random subset of the
feedback holders.  This module makes the claim checkable:

* :func:`subsample_outcomes` — the visibility model: each transaction's
  feedback is independently retrieved with probability ``coverage``
  (order preserved — the assessor still knows *when* the retrieved
  transactions happened relative to each other);
* :func:`detection_vs_coverage` — detection and false-alarm rates of a
  behavior test as coverage shrinks.

Why the claim holds: an iid-thinned Bernoulli(p) sequence is still an
iid Bernoulli(p) sequence, so honest players keep passing at any
coverage; an attack pattern keeps its *local* structure under thinning
(a burst stays a contiguous run, only shorter), so detection degrades
with the effective sample size rather than collapsing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..stats.rng import SeedLike, make_rng

__all__ = ["subsample_outcomes", "CoveragePoint", "detection_vs_coverage"]


def subsample_outcomes(
    outcomes: np.ndarray, coverage: float, *, seed: SeedLike = None
) -> np.ndarray:
    """Keep each outcome independently with probability ``coverage``.

    Models a partial feedback query; relative order is preserved.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must lie in (0, 1], got {coverage}")
    arr = np.asarray(outcomes)
    if arr.ndim != 1:
        raise ValueError("outcomes must be 1-D")
    if coverage == 1.0:
        return arr.copy()
    rng = make_rng(seed)
    mask = rng.random(arr.size) < coverage
    return arr[mask]


@dataclass(frozen=True)
class CoveragePoint:
    """Test performance at one feedback-visibility level."""

    coverage: float
    detection_rate: float
    false_positive_rate: float


def detection_vs_coverage(
    test,
    honest_gen: Callable[[np.random.Generator], np.ndarray],
    attack_gen: Callable[[np.random.Generator], np.ndarray],
    *,
    coverages: Sequence[float] = (1.0, 0.8, 0.6, 0.4, 0.2),
    trials: int = 60,
    seed: SeedLike = 0,
) -> List[CoveragePoint]:
    """Detection/false-alarm rates of ``test`` as feedback visibility shrinks.

    Each trial generates a fresh honest and attack history, retrieves the
    configured fraction of each, and judges the *retrieved* sequences.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = make_rng(seed)
    points = []
    for coverage in coverages:
        detections = 0
        false_positives = 0
        for _ in range(trials):
            honest = subsample_outcomes(honest_gen(rng), coverage, seed=rng)
            attack = subsample_outcomes(attack_gen(rng), coverage, seed=rng)
            if not test.test(honest).passed:
                false_positives += 1
            if not test.test(attack).passed:
                detections += 1
        points.append(
            CoveragePoint(
                coverage=float(coverage),
                detection_rate=detections / trials,
                false_positive_rate=false_positives / trials,
            )
        )
    return points
