"""The ecosystem simulation engine.

Drives a population of servers (honest players, drifting players,
scripted attackers) and clients through discrete time steps under the
paper's interaction model:

1. each step, every client decides per server whether to request service
   (the Sec. 5.2 arrival model, driven by the server's current public
   reputation and the client's last experience with that server);
2. a requesting client assesses the server with the configured two-phase
   assessor (Fig. 2); it transacts only on a ``TRUSTED`` verdict and
   records why it refused otherwise;
3. a transaction's outcome comes from the server's behavior model and the
   resulting feedback is appended to the feedback store — by default a
   central :class:`~repro.feedback.ledger.FeedbackLedger`, optionally a
   :class:`~repro.p2p.store.DistributedFeedbackStore` so the whole
   ecosystem runs over the DHT substrate.

The engine is deliberately policy-free: which behavior test and trust
function the clients use is entirely captured by the assessor, so the
same scenario can be replayed under different defenses — exactly what the
integration tests and the ecosystem examples need.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.two_phase import TwoPhaseAssessor
from ..core.verdict import AssessmentStatus
from ..feedback.ledger import FeedbackLedger
from ..feedback.records import EntityId, Feedback, Rating
from ..obs import audit as _audit
from ..obs import runtime as _obs
from ..stats.rng import SeedLike, make_rng
from ..trust.base import LedgerTrustFunction
from .arrival import ArrivalModel, ClientStateTable
from .metrics import SimulationMetrics
from .server import ServerBehavior

__all__ = ["ReputationSimulation"]

_ENGINES = ("direct", "incremental")


class ReputationSimulation:
    """A closed ecosystem of servers, clients and one shared ledger."""

    def __init__(
        self,
        servers: Dict[EntityId, ServerBehavior],
        clients: Sequence[EntityId],
        assessor: TwoPhaseAssessor,
        arrival: ArrivalModel = ArrivalModel(),
        bootstrap_transactions: int = 0,
        exploration: float = 0.0,
        prior_histories: Optional[Dict[EntityId, "Sequence[int]"]] = None,
        feedback_store=None,
        seed: SeedLike = None,
        engine: str = "direct",
    ):
        """``bootstrap_transactions`` seeds each server with that many
        transactions from unconditional clients (round-robin) before
        assessment starts — new servers have no history, and the paper
        notes short histories must be handled by other mechanisms.

        ``exploration`` is the probability that a client transacts despite
        a refusing assessment (the paper's "relax behavior testing so we
        can choose service from new servers" for low-risk transactions).
        Without it a false-positive flag is an absorbing state: the
        server's history freezes and the flag can never clear.

        ``prior_histories`` maps a server id to an outcome sequence that
        is written into the ledger before the simulation starts — how an
        attacker *enters* with an already-established reputation (the
        paper's preparation phase) instead of having to build it live.

        ``feedback_store`` is any object with ``record`` / ``servers`` /
        ``history`` (a fresh central ledger by default; pass a
        ``DistributedFeedbackStore`` for a decentralized deployment).
        Ledger-based trust functions (PeerTrust, EigenTrust, HTrust) need
        the full per-client query surface and therefore require the
        default central ledger.

        ``engine`` selects how the hot loop assesses: ``"direct"`` calls
        the assessor per decision (the historical behavior, required for
        per-decision audit records); ``"incremental"`` routes through an
        :class:`~repro.serve.AssessmentService` whose per-server state
        memoizes phase-1 verdicts between feedback events — identical
        decisions, much cheaper on workloads where assessments outnumber
        transactions.  The incremental engine needs the central ledger's
        subscription hook."""
        if not servers:
            raise ValueError("need at least one server")
        if not clients:
            raise ValueError("need at least one client")
        overlap = set(servers) & set(clients)
        if overlap:
            raise ValueError(f"ids used as both server and client: {sorted(overlap)}")
        self._servers = dict(servers)
        self._clients = list(clients)
        self._assessor = assessor
        self._arrival = arrival
        self._rng = make_rng(seed)
        self._ledger = feedback_store if feedback_store is not None else FeedbackLedger()
        if isinstance(assessor.trust_function, LedgerTrustFunction) and not isinstance(
            self._ledger, FeedbackLedger
        ):
            raise ValueError(
                "ledger-based trust functions need the full FeedbackLedger "
                "query surface; use the default central store with "
                f"{type(assessor.trust_function).__name__}"
            )
        self._states: Dict[EntityId, ClientStateTable] = {
            s: ClientStateTable(self._clients, arrival) for s in self._servers
        }
        self._metrics = SimulationMetrics()
        self._time = 0.0
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self._engine = engine
        self._service = None
        if engine == "incremental":
            if not isinstance(self._ledger, FeedbackLedger):
                raise ValueError(
                    "engine='incremental' needs the central FeedbackLedger's "
                    "subscription hook; use the default feedback store"
                )
            from ..serve import AssessmentService

            self._service = AssessmentService(assessor, ledger=self._ledger)
        if not 0.0 <= exploration <= 1.0:
            raise ValueError(f"exploration must lie in [0, 1], got {exploration}")
        self._exploration = exploration
        if bootstrap_transactions < 0:
            raise ValueError("bootstrap_transactions must be non-negative")
        self._seed_prior_histories(prior_histories or {})
        self._bootstrap(bootstrap_transactions)

    # ------------------------------------------------------------------ #

    @property
    def ledger(self):
        """The feedback store (central ledger unless one was injected)."""
        return self._ledger

    @property
    def metrics(self) -> SimulationMetrics:
        return self._metrics

    @property
    def time(self) -> float:
        return self._time

    @property
    def engine(self) -> str:
        """The assessment engine mode (``"direct"`` or ``"incremental"``)."""
        return self._engine

    def reputation_of(self, server: EntityId) -> float:
        """The public (phase 2) reputation clients currently see."""
        trust_fn = self._assessor.trust_function
        if server not in self._ledger.servers():
            return 0.0
        if isinstance(trust_fn, LedgerTrustFunction):
            return trust_fn.score_server(server, self._ledger)
        return trust_fn.score(self._ledger.history(server))

    def assess(self, server: EntityId):
        """Run the configured two-phase assessment on a server."""
        if self._service is not None and server in self._service.servers():
            return self._service.assess(server)
        ledger = self._ledger if isinstance(self._ledger, FeedbackLedger) else None
        return self._assessor.assess(self._ledger.history(server), ledger=ledger)

    # ------------------------------------------------------------------ #

    def run(self, steps: int, *, monitor=None) -> SimulationMetrics:
        """Advance the simulation ``steps`` steps; returns the metrics.

        ``monitor`` is an optional :class:`repro.obs.ProgressMonitor`:
        each step ticks it with the step's transaction / assessment /
        request deltas, so a long run streams heartbeats (``repro obs
        top``) without the engine knowing about event logs.
        """
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if monitor is None:
            for _ in range(steps):
                self.step()
            return self._metrics
        for _ in range(steps):
            before = (
                self._metrics.total_transactions,
                self._metrics.total_assessments,
                self._metrics.total_requests,
            )
            self.step()
            monitor.tick(
                1,
                transactions=self._metrics.total_transactions - before[0],
                assessments=self._metrics.total_assessments - before[1],
                requests=self._metrics.total_requests - before[2],
            )
        return self._metrics

    def step(self) -> None:
        """One simulation step: arrivals, assessments, transactions."""
        with _obs.timer("simulation.step_seconds"):
            self._time += 1.0
            self._metrics.steps += 1
            if _obs.enabled:
                _obs.registry.inc("simulation.steps")
            for server_id, behavior in self._servers.items():
                self._step_server(server_id, behavior)

    # ------------------------------------------------------------------ #

    def _step_server(self, server_id: EntityId, behavior: ServerBehavior) -> None:
        reputation = self._clamp(self.reputation_of(server_id))
        requesters = self._states[server_id].sample_requesters(
            reputation, seed=self._rng
        )
        stats = self._metrics.server(server_id)
        for client in requesters:
            stats.requests += 1
            if _obs.enabled:
                _obs.registry.inc("simulation.requests")
            if not self._client_accepts(server_id, client, stats):
                continue
            outcome = behavior.next_outcome(self._rng)
            feedback = Feedback(
                time=self._time,
                server=server_id,
                client=client,
                rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
            )
            self._ledger.record(feedback)
            self._states[server_id].record_service(client, outcome)
            stats.transactions += 1
            stats.good_transactions += outcome
            if _obs.enabled:
                _obs.registry.inc("simulation.transactions")
                _obs.registry.inc("simulation.good_transactions", int(outcome))

    def _client_accepts(self, server_id: EntityId, client: EntityId, stats) -> bool:
        if server_id not in self._ledger.servers():
            # no history at all: the paper's position is that fresh
            # servers are a high-risk group needing other mechanisms; we
            # let the first transactions through so histories can form.
            return True
        ledger = self._ledger if isinstance(self._ledger, FeedbackLedger) else None
        stats.assessments += 1
        if _obs.enabled:
            _obs.registry.inc("simulation.assessments")
        if self._service is not None and not _audit.enabled:
            # the serving fast path: memoized phase-1 verdicts, identical
            # decisions; audit runs fall through to the direct assessor so
            # per-decision provenance records keep flowing
            assessment = self._service.assess(server_id)
        elif _audit.enabled:
            # Outermost decision scope: the assessor's nested scope joins
            # this one, so the per-tick routing context (who asked, when)
            # lands on every record and sampling counts one decision per
            # routed request — the knob that keeps long runs bounded.
            with _audit.trail.decision_scope(
                step=int(self._time), client=str(client), server=str(server_id)
            ):
                assessment = self._assessor.assess(
                    self._ledger.history(server_id), ledger=ledger
                )
        else:
            assessment = self._assessor.assess(
                self._ledger.history(server_id), ledger=ledger
            )
        if assessment.status is AssessmentStatus.TRUSTED:
            return True
        if self._exploration and self._rng.random() < self._exploration:
            return True  # a risk-tolerant client transacts anyway
        if assessment.status is AssessmentStatus.SUSPICIOUS:
            stats.refusals_suspicious += 1
            if _obs.enabled:
                _obs.registry.inc("simulation.refusals", reason="suspicious")
        else:
            stats.refusals_trust += 1
            if _obs.enabled:
                _obs.registry.inc("simulation.refusals", reason="trust")
        return False

    def _seed_prior_histories(self, prior_histories) -> None:
        """Write pre-existing reputations into the ledger (round-robin clients)."""
        for server_id, outcomes in prior_histories.items():
            if server_id not in self._servers:
                raise ValueError(f"prior history for unknown server {server_id!r}")
            for i, outcome in enumerate(outcomes):
                outcome = int(outcome)
                if outcome not in (0, 1):
                    raise ValueError(
                        f"prior outcomes must be binary, got {outcome!r}"
                    )
                self._time += 1.0
                client = self._clients[i % len(self._clients)]
                self._ledger.record(
                    Feedback(
                        time=self._time,
                        server=server_id,
                        client=client,
                        rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
                    )
                )
                self._states[server_id].record_service(client, outcome)

    def _bootstrap(self, per_server: int) -> None:
        """Seed histories before assessment-gated interaction starts."""
        for _ in range(per_server):
            self._time += 1.0
            for server_id, behavior in self._servers.items():
                client = self._clients[
                    int(self._rng.integers(0, len(self._clients)))
                ]
                outcome = behavior.next_outcome(self._rng)
                self._ledger.record(
                    Feedback(
                        time=self._time,
                        server=server_id,
                        client=client,
                        rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
                    )
                )
                self._states[server_id].record_service(client, outcome)

    @staticmethod
    def _clamp(value: float) -> float:
        return min(max(value, 0.0), 1.0)
