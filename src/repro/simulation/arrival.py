"""Probabilistic client-arrival model (Sec. 5.2).

Whether a client requests service from a server in a given step depends
on the server's current reputation ``p`` and the client's own last
experience with that server:

* never served before:   requests with probability ``a1 * p``
* last service was good: requests with probability ``a2 * p``
* last service was bad:  requests with probability ``a3 * p``

The paper's experiments use ``a1 = 0.5``, ``a2 = 0.9``, ``a3 = 0.2``:
satisfied customers return eagerly, cheated ones mostly do not, and the
stream of first-time customers scales with reputation — which is exactly
why an honest server's supporter base keeps growing while a colluder-fed
attacker's does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence

import numpy as np

from ..feedback.records import EntityId
from ..stats.rng import SeedLike, make_rng

__all__ = ["ClientExperience", "ArrivalModel", "ClientStateTable"]


class ClientExperience(Enum):
    """A client's most recent experience with a particular server."""

    NEVER_SERVED = "never"
    RECENT_GOOD = "good"
    RECENT_BAD = "bad"


@dataclass(frozen=True)
class ArrivalModel:
    """The three-coefficient request-probability model."""

    a1: float = 0.5  # never served
    a2: float = 0.9  # recently received a good service
    a3: float = 0.2  # recently received a bad service

    def __post_init__(self) -> None:
        for name, value in (("a1", self.a1), ("a2", self.a2), ("a3", self.a3)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")

    def coefficient(self, experience: ClientExperience) -> float:
        """The arrival coefficient (a1/a2/a3) for a client experience state."""
        if experience is ClientExperience.NEVER_SERVED:
            return self.a1
        if experience is ClientExperience.RECENT_GOOD:
            return self.a2
        return self.a3

    def request_probability(
        self, experience: ClientExperience, reputation: float
    ) -> float:
        """Probability the client requests service this step."""
        if not 0.0 <= reputation <= 1.0:
            raise ValueError(f"reputation must lie in [0, 1], got {reputation}")
        return self.coefficient(experience) * reputation


class ClientStateTable:
    """Tracks every client's last experience with one server.

    Also answers the per-step arrival sample: which clients request
    service given the server's current reputation.
    """

    def __init__(self, clients: Sequence[EntityId], model: ArrivalModel):
        if not clients:
            raise ValueError("need at least one client")
        if len(set(clients)) != len(clients):
            raise ValueError("client ids must be unique")
        self._model = model
        self._clients: List[EntityId] = list(clients)
        self._experience: Dict[EntityId, ClientExperience] = {
            c: ClientExperience.NEVER_SERVED for c in clients
        }

    @property
    def clients(self) -> List[EntityId]:
        return list(self._clients)

    def experience(self, client: EntityId) -> ClientExperience:
        """The client's most recent experience with this server."""
        try:
            return self._experience[client]
        except KeyError:
            raise KeyError(f"unknown client {client!r}") from None

    def record_service(self, client: EntityId, outcome: int) -> None:
        """Update a client's state after it received a service."""
        if client not in self._experience:
            raise KeyError(f"unknown client {client!r}")
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        self._experience[client] = (
            ClientExperience.RECENT_GOOD if outcome else ClientExperience.RECENT_BAD
        )

    def sample_requesters(
        self, reputation: float, *, seed: SeedLike = None
    ) -> List[EntityId]:
        """Clients requesting service this step (independent Bernoullis)."""
        rng = make_rng(seed)
        reputation = min(max(reputation, 0.0), 1.0)
        probs = np.array(
            [
                self._model.request_probability(self._experience[c], reputation)
                for c in self._clients
            ]
        )
        draws = rng.random(len(self._clients))
        return [c for c, p, u in zip(self._clients, probs, draws) if u < p]

    def counts_by_experience(self) -> Dict[ClientExperience, int]:
        """How many clients sit in each state (diagnostics/metrics)."""
        counts = {e: 0 for e in ClientExperience}
        for experience in self._experience.values():
            counts[experience] += 1
        return counts
