"""P2P reputation-ecosystem simulation substrate."""

from .arrival import ArrivalModel, ClientExperience, ClientStateTable
from .engine import ReputationSimulation
from .metrics import ServerMetrics, SimulationMetrics
from .scenario import ScenarioConfig, build_simulation
from .server import (
    DriftingHonestBehavior,
    HonestBehavior,
    ScriptedBehavior,
    ServerBehavior,
)
from .workloads import (
    diurnal_feedback_history,
    diurnal_quality,
    zipf_client_weights,
    zipf_feedback_history,
)

__all__ = [
    "ArrivalModel",
    "ClientExperience",
    "ClientStateTable",
    "ReputationSimulation",
    "ServerMetrics",
    "SimulationMetrics",
    "ScenarioConfig",
    "build_simulation",
    "DriftingHonestBehavior",
    "HonestBehavior",
    "ScriptedBehavior",
    "ServerBehavior",
    "diurnal_feedback_history",
    "diurnal_quality",
    "zipf_client_weights",
    "zipf_feedback_history",
]
