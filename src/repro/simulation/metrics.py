"""Metrics collected by the ecosystem simulation."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ServerMetrics", "SimulationMetrics"]


@dataclass
class ServerMetrics:
    """Per-server counters over a simulation run."""

    transactions: int = 0
    good_transactions: int = 0
    requests: int = 0
    assessments: int = 0  # two-phase assessments run against this server
    refusals_trust: int = 0  # client refused: trust below threshold
    refusals_suspicious: int = 0  # client refused: behavior test failed

    @property
    def bad_transactions(self) -> int:
        return self.transactions - self.good_transactions

    @property
    def satisfaction_rate(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.good_transactions / self.transactions

    @property
    def acceptance_rate(self) -> float:
        """Fraction of client requests that led to a transaction."""
        if self.requests == 0:
            return 0.0
        return self.transactions / self.requests


@dataclass
class SimulationMetrics:
    """Whole-run counters plus the per-server breakdown."""

    steps: int = 0
    per_server: Dict[str, ServerMetrics] = field(
        default_factory=lambda: defaultdict(ServerMetrics)
    )

    def server(self, server_id: str) -> ServerMetrics:
        """The (auto-created) per-server counters for ``server_id``."""
        return self.per_server[server_id]

    @property
    def total_transactions(self) -> int:
        return sum(m.transactions for m in self.per_server.values())

    @property
    def total_good(self) -> int:
        return sum(m.good_transactions for m in self.per_server.values())

    @property
    def total_requests(self) -> int:
        return sum(m.requests for m in self.per_server.values())

    @property
    def total_assessments(self) -> int:
        return sum(m.assessments for m in self.per_server.values())

    @property
    def overall_satisfaction(self) -> float:
        total = self.total_transactions
        if total == 0:
            return 0.0
        return self.total_good / total

    def summary(self) -> Dict[str, float]:
        """Flat summary dict (handy for experiment tables and tests)."""
        return {
            "steps": float(self.steps),
            "transactions": float(self.total_transactions),
            "requests": float(self.total_requests),
            "assessments": float(self.total_assessments),
            "satisfaction": self.overall_satisfaction,
            "refusals_suspicious": float(
                sum(m.refusals_suspicious for m in self.per_server.values())
            ),
            "refusals_trust": float(
                sum(m.refusals_trust for m in self.per_server.values())
            ),
        }

    def publish(self, registry=None, prefix: str = "simulation.totals") -> None:
        """Bridge these counters into a :mod:`repro.obs` registry as gauges.

        The engine already streams live counters into the active registry
        while observability is enabled; this publishes the authoritative
        end-of-run totals (e.g. for a run that collected with obs off, or
        before an export), under ``<prefix>.<field>``.
        """
        if registry is None:
            from ..obs import runtime as _obs

            registry = _obs.registry
        summary = self.summary()
        for field_name, value in summary.items():
            registry.set(f"{prefix}.{field_name}", value)
        registry.set(f"{prefix}.servers", float(len(self.per_server)))
