"""Synthetic workload generators for realistic ecosystem scenarios.

The paper's experiments use uniform client populations; real marketplaces
are skewed.  These generators produce the two skews that matter for
behavior testing and feed the examples/tests:

* **Zipf client activity** — a few heavy buyers, a long tail of one-time
  clients.  This is the regime where the collusion-resilient reordering
  earns its keep: group sizes are heterogeneous even without collusion,
  and an honest server must still look binomial under the reorder.
* **Diurnal service quality** — an honest server whose success rate
  follows a daily load curve (Sec. 3.1's "network condition ... may vary
  during different time periods"), the workload for temporal testing.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..feedback.records import Feedback, Rating
from ..stats.rng import SeedLike, make_rng

__all__ = [
    "zipf_client_weights",
    "zipf_feedback_history",
    "diurnal_quality",
    "diurnal_feedback_history",
]


def zipf_client_weights(n_clients: int, exponent: float = 1.1) -> np.ndarray:
    """Normalized Zipf activity weights: client `i` ∝ ``1 / (i+1)^s``."""
    if n_clients <= 0:
        raise ValueError(f"n_clients must be positive, got {n_clients}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    weights = 1.0 / np.power(np.arange(1, n_clients + 1, dtype=np.float64), exponent)
    return weights / weights.sum()


def zipf_feedback_history(
    n: int,
    server: str,
    *,
    p: float = 0.95,
    n_clients: int = 100,
    exponent: float = 1.1,
    seed: SeedLike = None,
) -> List[Feedback]:
    """An honest server's feedback from a Zipf-skewed client population."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    rng = make_rng(seed)
    weights = zipf_client_weights(n_clients, exponent)
    clients = rng.choice(n_clients, size=n, p=weights)
    outcomes = rng.random(n) < p
    return [
        Feedback(
            time=float(t),
            server=server,
            client=f"client-{int(clients[t])}",
            rating=Rating.POSITIVE if outcomes[t] else Rating.NEGATIVE,
        )
        for t in range(n)
    ]


def diurnal_quality(
    base: float = 0.97,
    dip: float = 0.25,
    peak_hour: float = 20.0,
    width: float = 3.0,
) -> Callable[[float], float]:
    """A daily load curve: quality dips around the evening peak.

    Returns ``p(t)`` for ``t`` in hours: a Gaussian-shaped dip of depth
    ``dip`` centered at ``peak_hour`` (circularly), floored at 0.
    """
    if not 0.0 <= base <= 1.0:
        raise ValueError(f"base must lie in [0, 1], got {base}")
    if not 0.0 <= dip <= base:
        raise ValueError(f"dip must lie in [0, base], got {dip}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")

    def p_of_t(time_hours: float) -> float:
        hour = time_hours % 24.0
        delta = min(abs(hour - peak_hour), 24.0 - abs(hour - peak_hour))
        return max(base - dip * float(np.exp(-0.5 * (delta / width) ** 2)), 0.0)

    return p_of_t


def diurnal_feedback_history(
    n: int,
    server: str,
    *,
    quality: Optional[Callable[[float], float]] = None,
    transactions_per_hour: float = 1.0,
    n_clients: int = 50,
    seed: SeedLike = None,
) -> List[Feedback]:
    """An honest server under a daily quality curve (time in hours)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if transactions_per_hour <= 0:
        raise ValueError(
            f"transactions_per_hour must be positive, got {transactions_per_hour}"
        )
    rng = make_rng(seed)
    p_of_t = quality or diurnal_quality()
    feedbacks = []
    for t in range(n):
        time_hours = t / transactions_per_hour
        p = p_of_t(time_hours)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quality({time_hours}) = {p} outside [0, 1]")
        feedbacks.append(
            Feedback(
                time=time_hours,
                server=server,
                client=f"client-{int(rng.integers(0, n_clients))}",
                rating=Rating.POSITIVE if rng.random() < p else Rating.NEGATIVE,
            )
        )
    return feedbacks
