"""Server behavior models for the ecosystem simulation.

Behaviors generate transaction outcomes; they know nothing about
reputations or clients.  The honest model is the paper's iid Bernoulli
player; the drifting variant exercises the "dynamic p" extension of
Sec. 3.1; the scripted behavior replays a pre-generated attack trace
(hibernating / periodic) inside the ecosystem.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

__all__ = [
    "ServerBehavior",
    "HonestBehavior",
    "DriftingHonestBehavior",
    "ScriptedBehavior",
]


class ServerBehavior(Protocol):
    """Source of transaction outcomes for one server."""

    def next_outcome(self, rng: np.random.Generator) -> int:
        """The outcome (1 good / 0 bad) of the server's next transaction."""
        ...  # pragma: no cover - structural type only


class HonestBehavior:
    """Iid Bernoulli(p) outcomes — the honest player of Sec. 3.1."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must lie in [0, 1], got {p}")
        self._p = p

    @property
    def p(self) -> float:
        return self._p

    def next_outcome(self, rng: np.random.Generator) -> int:
        """Draw one Bernoulli(p) outcome."""
        return int(rng.random() < self._p)


class DriftingHonestBehavior:
    """Honest player whose uncontrollable quality factor drifts over time.

    ``p_of_t`` maps the transaction index to the success probability —
    e.g. workload-dependent network conditions in a file-sharing system
    (the paper's own example of a factor that varies across periods).
    """

    def __init__(self, p_of_t: Callable[[int], float]):
        self._p_of_t = p_of_t
        self._t = 0

    def next_outcome(self, rng: np.random.Generator) -> int:
        """Draw one Bernoulli(p_of_t(t)) outcome and advance the clock."""
        p = self._p_of_t(self._t)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p_of_t({self._t}) = {p} outside [0, 1]")
        self._t += 1
        return int(rng.random() < p)


class ScriptedBehavior:
    """Replays a fixed outcome sequence (attack traces, regression cases).

    Once the script is exhausted the behavior keeps emitting the
    ``tail`` outcome (default: good), so long simulations do not crash.
    """

    def __init__(self, outcomes: Sequence[int], tail: int = 1):
        arr = np.asarray(outcomes, dtype=np.int8)
        if arr.ndim != 1:
            raise ValueError("outcomes must be 1-D")
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError("outcomes must be binary (0/1)")
        if tail not in (0, 1):
            raise ValueError(f"tail must be 0 or 1, got {tail}")
        self._script = arr
        self._tail = tail
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= self._script.size

    def next_outcome(self, rng: np.random.Generator) -> int:
        """Replay the next scripted outcome (the tail once exhausted)."""
        if self._cursor < self._script.size:
            outcome = int(self._script[self._cursor])
            self._cursor += 1
            return outcome
        return self._tail
