"""Reproducible ecosystem scenarios.

A :class:`ScenarioConfig` is a declarative description of a mixed
population — honest players with a range of trustworthiness values plus
scripted attackers — from which :func:`build_simulation` assembles a
ready-to-run :class:`~repro.simulation.engine.ReputationSimulation`.
Examples and integration tests share these builders so the populations
they discuss are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..adversary.hibernating import hibernating_attack_history
from ..adversary.periodic import periodic_attack_history
from ..core.two_phase import TwoPhaseAssessor
from ..stats.rng import SeedLike, derive_seed, make_rng
from .arrival import ArrivalModel
from .engine import ReputationSimulation
from .server import HonestBehavior, ScriptedBehavior, ServerBehavior

__all__ = ["ScenarioConfig", "build_simulation"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Declarative population mix for an ecosystem run.

    ``honest_p_range`` draws each honest server's trustworthiness
    uniformly from the interval; attackers get scripted traces generated
    from the paper's attack models.
    """

    n_honest_servers: int = 8
    honest_p_range: Tuple[float, float] = (0.85, 0.99)
    n_hibernating: int = 0
    n_periodic: int = 0
    n_clients: int = 50
    attack_prep: int = 400
    attack_bads: int = 40
    periodic_window: int = 20
    periodic_length: int = 800
    prior_history_size: int = 300
    bootstrap_transactions: int = 100
    exploration: float = 0.02
    arrival: ArrivalModel = field(default_factory=ArrivalModel)

    def __post_init__(self) -> None:
        if self.n_honest_servers < 0 or self.n_hibernating < 0 or self.n_periodic < 0:
            raise ValueError("population counts must be non-negative")
        if self.n_honest_servers + self.n_hibernating + self.n_periodic == 0:
            raise ValueError("scenario needs at least one server")
        low, high = self.honest_p_range
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"honest_p_range must be ordered within [0,1], got {self.honest_p_range}")
        if self.n_clients <= 0:
            raise ValueError("need at least one client")
        if not 0.0 <= self.exploration <= 1.0:
            raise ValueError(f"exploration must lie in [0, 1], got {self.exploration}")


def build_simulation(
    config: ScenarioConfig,
    assessor: TwoPhaseAssessor,
    *,
    seed: SeedLike = None,
) -> ReputationSimulation:
    """Assemble the simulation described by ``config``."""
    rng = make_rng(seed)
    servers: Dict[str, ServerBehavior] = {}
    priors: Dict[str, np.ndarray] = {}
    low, high = config.honest_p_range
    for i in range(config.n_honest_servers):
        p = float(rng.uniform(low, high))
        name = f"honest-{i}"
        servers[name] = HonestBehavior(p)
        if config.prior_history_size:
            priors[name] = (
                rng.random(config.prior_history_size) < p
            ).astype(np.int8)
    for i in range(config.n_hibernating):
        # The attacker *enters* with an established honest-looking
        # reputation (the paper's preparation phase) and its live
        # behavior is the attack burst, then permanent good service.
        name = f"hibernating-{i}"
        priors[name] = (rng.random(config.attack_prep) < 0.95).astype(np.int8)
        servers[name] = ScriptedBehavior(np.zeros(config.attack_bads, dtype=np.int8))
    for i in range(config.n_periodic):
        name = f"periodic-{i}"
        priors[name] = (rng.random(config.attack_prep) < 0.95).astype(np.int8)
        trace = periodic_attack_history(
            config.periodic_length,
            config.periodic_window,
            seed=derive_seed(rng),
        )
        servers[name] = ScriptedBehavior(trace)
    clients: List[str] = [f"client-{i}" for i in range(config.n_clients)]
    return ReputationSimulation(
        servers=servers,
        clients=clients,
        assessor=assessor,
        arrival=config.arrival,
        bootstrap_transactions=config.bootstrap_transactions,
        exploration=config.exploration,
        prior_histories=priors,
        seed=derive_seed(rng),
    )
